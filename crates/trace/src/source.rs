//! Streaming branch-event sources.
//!
//! The paper's runs cover up to 63 billion instructions; materializing such a
//! trace is out of the question. [`BranchSource`] is the pull-based stream
//! interface every simulator component consumes: workload generators
//! implement it directly, and in-memory traces adapt to it via
//! [`SliceSource`].

use crate::event::BranchEvent;
use crate::trace::Trace;

/// A pull-based stream of branch events.
///
/// Implementors produce events until the underlying workload is exhausted.
/// Unlike `Iterator`, the trait is object-safe with a tiny surface so
/// predicate simulators can hold `&mut dyn BranchSource`.
///
/// # Examples
///
/// ```
/// use sdbp_trace::{BranchAddr, BranchEvent, BranchSource, SliceSource};
///
/// let events = [BranchEvent::new(BranchAddr(0x10), true, 1)];
/// let mut src = SliceSource::new(&events);
/// assert!(src.next_event().is_some());
/// assert!(src.next_event().is_none());
/// ```
pub trait BranchSource {
    /// Produces the next branch event, or `None` when the stream ends.
    fn next_event(&mut self) -> Option<BranchEvent>;

    /// Appends up to `max` events to `buf`, returning how many were added.
    ///
    /// Returns 0 only when `max` is 0 or the stream is exhausted. The
    /// concatenation of the appended chunks is exactly the sequence repeated
    /// [`next_event`](BranchSource::next_event) calls would produce; the
    /// default implementation literally loops `next_event`, so existing
    /// sources inherit the chunked API for free. Sources with cheap bulk
    /// access (slices, the synthetic workload generators) override it so
    /// the simulator's hot loop amortizes per-event call overhead.
    ///
    /// Callers reuse one buffer across pulls (`clear()` between them) so
    /// the steady state allocates nothing.
    fn fill_events(&mut self, buf: &mut Vec<BranchEvent>, max: usize) -> usize {
        let mut filled = 0;
        while filled < max {
            match self.next_event() {
                Some(e) => {
                    buf.push(e);
                    filled += 1;
                }
                None => break,
            }
        }
        filled
    }

    /// Consumes the whole remaining stream, returning it as one borrowed
    /// slice — or `None` when the source is not slice-backed.
    ///
    /// The returned slice is exactly the sequence repeated
    /// [`next_event`](BranchSource::next_event) calls would have produced;
    /// afterwards the source is exhausted. Consumers with a per-event loop
    /// (the simulator) use this to skip chunked buffering entirely for
    /// in-memory traces. The default returns `None`, which is always
    /// correct: callers must fall back to
    /// [`fill_events`](BranchSource::fill_events).
    fn drain_as_slice(&mut self) -> Option<&[BranchEvent]> {
        None
    }

    /// A human-readable label for reports. Defaults to `"<anonymous>"`.
    fn label(&self) -> &str {
        "<anonymous>"
    }

    /// Caps this source at roughly `max_instructions` retired instructions.
    ///
    /// The stream ends at the first event that would push the running
    /// instruction total past the cap (that event is not emitted).
    fn take_instructions(self, max_instructions: u64) -> TakeSource<Self>
    where
        Self: Sized,
    {
        TakeSource {
            inner: self,
            remaining: max_instructions,
        }
    }

    /// Mirrors every emitted event into `observer` while passing it through
    /// unchanged — the way to bolt a side consumer (an incremental stats or
    /// profile collector) onto a stream another component is already
    /// driving, instead of generating the stream a second time.
    fn tee<F>(self, observer: F) -> TeeSource<Self, F>
    where
        Self: Sized,
        F: FnMut(&BranchEvent),
    {
        TeeSource {
            inner: self,
            observer,
        }
    }

    /// Drops the stream's first `instructions` — the mirror image of
    /// [`take_instructions`](BranchSource::take_instructions), used to cut
    /// cold-start out of a profiling stream.
    ///
    /// Boundary rule (matching the simulator's warm-up attribution): an
    /// event is skipped iff the running instruction total *including it*
    /// stays ≤ the budget; the first event to cross the budget is emitted.
    /// Every event therefore lands in exactly one of the skipped and
    /// emitted windows.
    fn skip_instructions(self, instructions: u64) -> SkipSource<Self>
    where
        Self: Sized,
    {
        SkipSource {
            inner: self,
            remaining: instructions,
        }
    }

    /// Systematic 1-in-`period` sampling: emits the first event of every
    /// `period`-event window (a `period` of 0 or 1 is the identity).
    ///
    /// Sampling preserves per-branch *rates* (bias, taken-rate) in
    /// expectation but scales down every absolute count — use it to cheapen
    /// estimates, never for instruction-budget accounting.
    fn sample(self, period: u64) -> SampleSource<Self>
    where
        Self: Sized,
    {
        SampleSource {
            inner: self,
            period: period.max(1),
            pos: 0,
        }
    }

    /// Collects the whole stream into an in-memory [`Trace`].
    ///
    /// Intended for tests and small experiments; the instruction total of the
    /// result is recomputed from the collected events.
    fn collect_trace(mut self) -> Trace
    where
        Self: Sized,
    {
        let mut builder = crate::trace::TraceBuilder::named(self.label());
        while let Some(e) = self.next_event() {
            builder.push(e);
        }
        builder.finish()
    }
}

impl<S: BranchSource + ?Sized> BranchSource for &mut S {
    fn next_event(&mut self) -> Option<BranchEvent> {
        (**self).next_event()
    }

    fn fill_events(&mut self, buf: &mut Vec<BranchEvent>, max: usize) -> usize {
        (**self).fill_events(buf, max)
    }

    fn drain_as_slice(&mut self) -> Option<&[BranchEvent]> {
        (**self).drain_as_slice()
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

/// Adapts a slice of events (or an in-memory [`Trace`]) to [`BranchSource`].
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    events: &'a [BranchEvent],
    pos: usize,
    label: &'a str,
}

impl<'a> SliceSource<'a> {
    /// Streams over a borrowed slice of events.
    pub fn new(events: &'a [BranchEvent]) -> Self {
        Self {
            events,
            pos: 0,
            label: "<slice>",
        }
    }

    /// Streams over the events of a borrowed trace, inheriting its name.
    pub fn from_trace(trace: &'a Trace) -> Self {
        Self {
            events: trace.events(),
            pos: 0,
            label: &trace.meta().name,
        }
    }

    /// Events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.pos
    }
}

impl BranchSource for SliceSource<'_> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        let e = self.events.get(self.pos)?;
        self.pos += 1;
        Some(*e)
    }

    fn fill_events(&mut self, buf: &mut Vec<BranchEvent>, max: usize) -> usize {
        let n = max.min(self.events.len() - self.pos);
        buf.extend_from_slice(&self.events[self.pos..self.pos + n]);
        self.pos += n;
        n
    }

    fn drain_as_slice(&mut self) -> Option<&[BranchEvent]> {
        let rest = &self.events[self.pos..];
        self.pos = self.events.len();
        Some(rest)
    }

    fn label(&self) -> &str {
        self.label
    }
}

/// A source capped at an instruction budget; see
/// [`BranchSource::take_instructions`].
#[derive(Debug, Clone)]
pub struct TakeSource<S> {
    inner: S,
    remaining: u64,
}

impl<S: BranchSource> BranchSource for TakeSource<S> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        let e = self.inner.next_event()?;
        let cost = e.instructions();
        if cost > self.remaining {
            self.remaining = 0;
            return None;
        }
        self.remaining -= cost;
        Some(e)
    }

    fn fill_events(&mut self, buf: &mut Vec<BranchEvent>, max: usize) -> usize {
        if self.remaining == 0 {
            return 0;
        }
        let start = buf.len();
        let pulled = self.inner.fill_events(buf, max);
        for k in 0..pulled {
            let cost = buf[start + k].instructions();
            if cost > self.remaining {
                // The straddling event is consumed but not emitted — the
                // one-at-a-time contract. On a chunked pull the rest of the
                // chunk is likewise discarded; the *emitted* sequence is
                // identical either way.
                self.remaining = 0;
                buf.truncate(start + k);
                return k;
            }
            self.remaining -= cost;
        }
        pulled
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// A source mirroring every emitted event into a side observer; see
/// [`BranchSource::tee`].
#[derive(Debug, Clone)]
pub struct TeeSource<S, F> {
    inner: S,
    observer: F,
}

impl<S: BranchSource, F: FnMut(&BranchEvent)> BranchSource for TeeSource<S, F> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        let e = self.inner.next_event()?;
        (self.observer)(&e);
        Some(e)
    }

    fn fill_events(&mut self, buf: &mut Vec<BranchEvent>, max: usize) -> usize {
        let start = buf.len();
        let filled = self.inner.fill_events(buf, max);
        for e in &buf[start..start + filled] {
            (self.observer)(e);
        }
        filled
    }

    fn drain_as_slice(&mut self) -> Option<&[BranchEvent]> {
        let events = self.inner.drain_as_slice()?;
        for e in events {
            (self.observer)(e);
        }
        Some(events)
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// A source dropping an instruction-budget prefix; see
/// [`BranchSource::skip_instructions`].
#[derive(Debug, Clone)]
pub struct SkipSource<S> {
    inner: S,
    remaining: u64,
}

impl<S: BranchSource> BranchSource for SkipSource<S> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        loop {
            let e = self.inner.next_event()?;
            if self.remaining == 0 {
                return Some(e);
            }
            let cost = e.instructions();
            if cost > self.remaining {
                // The straddling event crosses the skip budget and is the
                // first emitted one — the simulator's warm-up rule.
                self.remaining = 0;
                return Some(e);
            }
            self.remaining -= cost;
        }
    }

    fn fill_events(&mut self, buf: &mut Vec<BranchEvent>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        if self.remaining > 0 {
            // Fast-forward event by event until the first emitted one, then
            // hand the rest of the pull to the inner bulk path.
            let Some(first) = self.next_event() else {
                return 0;
            };
            buf.push(first);
            return 1 + self.inner.fill_events(buf, max - 1);
        }
        self.inner.fill_events(buf, max)
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// A source emitting one event per `period`-event window; see
/// [`BranchSource::sample`].
#[derive(Debug, Clone)]
pub struct SampleSource<S> {
    inner: S,
    period: u64,
    pos: u64,
}

impl<S: BranchSource> BranchSource for SampleSource<S> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        loop {
            let e = self.inner.next_event()?;
            let emit = self.pos.is_multiple_of(self.period);
            self.pos += 1;
            if emit {
                return Some(e);
            }
        }
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// Round-robin context-switch interleaving of several sources; the
/// building block of the server workload family.
///
/// Each constituent source models one process; the interleave emits a
/// `quantum`-instruction burst from each in turn, the way a scheduler
/// timeslices processes onto one core — which is exactly what makes server
/// workloads alias-hostile: predictor state trained in one quantum is
/// clobbered during the next. Exhausted sources drop out of the rotation;
/// the stream ends when all are exhausted.
#[derive(Debug, Clone)]
pub struct InterleaveSource<S> {
    subs: Vec<S>,
    quantum: u64,
    current: usize,
    used: u64,
    label: String,
}

impl<S: BranchSource> InterleaveSource<S> {
    /// Interleaves `subs` with a scheduling quantum of `quantum`
    /// instructions (clamped to ≥ 1).
    pub fn new(subs: Vec<S>, quantum: u64) -> Self {
        let label = subs
            .first()
            .map(|s| s.label().to_string())
            .unwrap_or_else(|| "<interleave>".to_string());
        Self {
            subs,
            quantum: quantum.max(1),
            current: 0,
            used: 0,
            label,
        }
    }

    /// Overrides the report label (defaults to the first source's).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sources still in the rotation.
    pub fn live_sources(&self) -> usize {
        self.subs.len()
    }
}

impl<S: BranchSource> BranchSource for InterleaveSource<S> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        loop {
            if self.subs.is_empty() {
                return None;
            }
            if self.current >= self.subs.len() {
                self.current = 0;
            }
            match self.subs[self.current].next_event() {
                Some(e) => {
                    self.used += e.instructions();
                    if self.used >= self.quantum {
                        // Quantum expired: context-switch to the next
                        // process after this event.
                        self.used = 0;
                        self.current += 1;
                        if self.current >= self.subs.len() {
                            self.current = 0;
                        }
                    }
                    return Some(e);
                }
                None => {
                    // Process exited; remove it and keep the rotation order.
                    self.subs.remove(self.current);
                    self.used = 0;
                }
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Adapts any iterator of events to [`BranchSource`].
#[derive(Debug, Clone)]
pub struct IterSource<I> {
    iter: I,
    label: String,
}

impl<I> IterSource<I> {
    /// Wraps `iter` with a report label.
    pub fn new(iter: I, label: impl Into<String>) -> Self {
        Self {
            iter,
            label: label.into(),
        }
    }
}

impl<I: Iterator<Item = BranchEvent>> BranchSource for IterSource<I> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        self.iter.next()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BranchAddr;
    use crate::trace::TraceBuilder;

    fn ev(pc: u64, gap: u32) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), true, gap)
    }

    #[test]
    fn slice_source_streams_in_order() {
        let events = [ev(0, 0), ev(4, 1), ev(8, 2)];
        let mut s = SliceSource::new(&events);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_event(), Some(events[0]));
        assert_eq!(s.next_event(), Some(events[1]));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_event(), Some(events[2]));
        assert_eq!(s.next_event(), None);
        assert_eq!(s.next_event(), None, "stays exhausted");
    }

    #[test]
    fn from_trace_inherits_label() {
        let mut b = TraceBuilder::named("go.train");
        b.push(ev(0, 0));
        let t = b.finish();
        let s = SliceSource::from_trace(&t);
        assert_eq!(s.label(), "go.train");
    }

    #[test]
    fn take_instructions_caps_the_stream() {
        // Each event costs gap+1 = 5 instructions.
        let events: Vec<BranchEvent> = (0..10).map(|i| ev(i * 4, 4)).collect();
        let src = SliceSource::new(&events);
        let mut capped = src.take_instructions(12);
        // 5 + 5 = 10 fits, the third event would reach 15 > 12.
        assert!(capped.next_event().is_some());
        assert!(capped.next_event().is_some());
        assert!(capped.next_event().is_none());
    }

    #[test]
    fn take_instructions_zero_is_empty() {
        let events = [ev(0, 0)];
        let mut capped = SliceSource::new(&events).take_instructions(0);
        assert!(capped.next_event().is_none());
    }

    #[test]
    fn collect_trace_rebuilds_accounting() {
        let events = [ev(0, 3), ev(4, 5)];
        let t = SliceSource::new(&events).collect_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t.meta().total_instructions, 4 + 6);
        assert_eq!(t.meta().name, "<slice>");
    }

    #[test]
    fn iter_source_adapts_iterators() {
        let mut s = IterSource::new((0..3).map(|i| ev(i * 4, 0)), "synthetic");
        assert_eq!(s.label(), "synthetic");
        assert_eq!(s.next_event().unwrap().pc, BranchAddr(0));
        assert_eq!(s.next_event().unwrap().pc, BranchAddr(4));
        assert_eq!(s.next_event().unwrap().pc, BranchAddr(8));
        assert!(s.next_event().is_none());
    }

    #[test]
    fn fill_events_matches_next_event_on_slices() {
        let events: Vec<BranchEvent> = (0..10).map(|i| ev(i * 4, i as u32)).collect();
        let mut chunked = SliceSource::new(&events);
        let mut single = SliceSource::new(&events);
        let mut buf = Vec::new();
        // Uneven chunk sizes cross the end of the stream.
        for chunk in [3usize, 1, 4, 9] {
            buf.clear();
            let n = chunked.fill_events(&mut buf, chunk);
            assert_eq!(n, buf.len());
            for e in &buf {
                assert_eq!(single.next_event().as_ref(), Some(e));
            }
        }
        assert!(single.next_event().is_none());
        assert_eq!(chunked.fill_events(&mut buf, 5), 0, "exhausted");
    }

    #[test]
    fn fill_events_appends_without_clearing() {
        let events = [ev(0, 0), ev(4, 0)];
        let mut s = SliceSource::new(&events);
        let mut buf = vec![ev(0xdead, 7)];
        assert_eq!(s.fill_events(&mut buf, 10), 2);
        assert_eq!(buf.len(), 3, "existing contents preserved");
        assert_eq!(buf[0], ev(0xdead, 7));
        assert_eq!(s.fill_events(&mut buf, 0), 0, "max 0 is a no-op");
    }

    #[test]
    fn take_source_chunked_matches_single_event_cap() {
        // Each event costs gap+1 = 5 instructions; the cap cuts mid-chunk.
        let events: Vec<BranchEvent> = (0..10).map(|i| ev(i * 4, 4)).collect();
        let mut chunked = SliceSource::new(&events).take_instructions(23);
        let mut buf = Vec::new();
        while chunked.fill_events(&mut buf, 3) > 0 {}
        let mut single = SliceSource::new(&events).take_instructions(23);
        let mut expect = Vec::new();
        while let Some(e) = single.next_event() {
            expect.push(e);
        }
        assert_eq!(buf, expect);
        assert_eq!(buf.len(), 4, "4 × 5 = 20 fits, a fifth would reach 25");
    }

    #[test]
    fn take_source_chunked_exact_budget() {
        let events: Vec<BranchEvent> = (0..4).map(|i| ev(i * 4, 4)).collect();
        let mut capped = SliceSource::new(&events).take_instructions(20);
        let mut buf = Vec::new();
        assert_eq!(capped.fill_events(&mut buf, 64), 4, "exact fit emits all");
        assert_eq!(capped.fill_events(&mut buf, 64), 0);
    }

    #[test]
    fn default_fill_events_drives_next_event() {
        let mut s = IterSource::new((0..5).map(|i| ev(i * 4, 0)), "it");
        let mut buf = Vec::new();
        assert_eq!(s.fill_events(&mut buf, 3), 3);
        assert_eq!(s.fill_events(&mut buf, 3), 2);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf[4].pc, BranchAddr(16));
    }

    #[test]
    fn drain_as_slice_returns_exactly_the_remainder() {
        let events: Vec<BranchEvent> = (0..6).map(|i| ev(i * 4, 0)).collect();
        let mut s = SliceSource::new(&events);
        let _ = s.next_event();
        let _ = s.next_event();
        assert_eq!(s.drain_as_slice(), Some(&events[2..]));
        assert_eq!(s.next_event(), None, "drained source is exhausted");
        assert_eq!(s.drain_as_slice(), Some(&events[6..]), "empty thereafter");
        // Non-slice-backed sources opt out.
        let mut it = IterSource::new(events.iter().copied(), "it");
        assert_eq!(it.drain_as_slice(), None);
        assert!(it.next_event().is_some(), "declining must not consume");
    }

    #[test]
    fn tee_observes_every_event_on_every_path() {
        let events: Vec<BranchEvent> = (0..6).map(|i| ev(i * 4, 1)).collect();
        // Per-event path.
        let mut seen = Vec::new();
        let mut t = SliceSource::new(&events).tee(|e| seen.push(*e));
        while t.next_event().is_some() {}
        assert_eq!(seen, events);
        // Chunked path.
        let mut seen = Vec::new();
        let mut t = SliceSource::new(&events).tee(|e| seen.push(*e));
        let mut buf = Vec::new();
        while t.fill_events(&mut buf, 4) > 0 {}
        assert_eq!(seen, events);
        assert_eq!(buf, events, "tee passes events through unchanged");
        // Zero-copy drain path.
        let mut seen = Vec::new();
        let mut t = SliceSource::new(&events).tee(|e| seen.push(*e));
        assert_eq!(t.drain_as_slice(), Some(&events[..]));
        assert_eq!(seen, events);
    }

    #[test]
    fn tee_inherits_the_label() {
        let events = [ev(0, 0)];
        let t = SliceSource::new(&events).tee(|_| {});
        assert_eq!(t.label(), "<slice>");
    }

    #[test]
    fn skip_instructions_complements_take() {
        // Each event costs 5 instructions. A skip budget of 12 drops the
        // first two (5, 10 ≤ 12) and emits the straddler (15 > 12) onward —
        // exactly the events a warm-up budget of 12 would measure.
        let events: Vec<BranchEvent> = (0..6).map(|i| ev(i * 4, 4)).collect();
        let mut s = SliceSource::new(&events).skip_instructions(12);
        let emitted: Vec<BranchEvent> = std::iter::from_fn(|| s.next_event()).collect();
        assert_eq!(emitted, events[2..]);
        // A budget ending exactly on an event boundary skips that event too.
        let mut s = SliceSource::new(&events).skip_instructions(10);
        assert_eq!(s.next_event(), Some(events[2]));
        // Zero skips nothing; a budget past the stream emits nothing.
        let mut s = SliceSource::new(&events).skip_instructions(0);
        assert_eq!(s.next_event(), Some(events[0]));
        let mut s = SliceSource::new(&events).skip_instructions(1_000);
        assert_eq!(s.next_event(), None);
    }

    #[test]
    fn skip_chunked_matches_single_event() {
        let events: Vec<BranchEvent> = (0..20).map(|i| ev(i * 4, (i % 4) as u32)).collect();
        for budget in [0u64, 3, 7, 10, 33, 200] {
            let mut single = SliceSource::new(&events).skip_instructions(budget);
            let mut expect = Vec::new();
            while let Some(e) = single.next_event() {
                expect.push(e);
            }
            let mut chunked = SliceSource::new(&events).skip_instructions(budget);
            let mut buf = Vec::new();
            while chunked.fill_events(&mut buf, 3) > 0 {}
            assert_eq!(buf, expect, "budget {budget}");
            assert_eq!(chunked.fill_events(&mut buf, 0), 0, "max 0 is a no-op");
        }
    }

    #[test]
    fn skip_then_take_windows_the_stream() {
        // Events cost 5 each; skip 10 then take 10 yields exactly two.
        let events: Vec<BranchEvent> = (0..8).map(|i| ev(i * 4, 4)).collect();
        let mut s = SliceSource::new(&events)
            .skip_instructions(10)
            .take_instructions(10);
        assert_eq!(s.next_event(), Some(events[2]));
        assert_eq!(s.next_event(), Some(events[3]));
        assert_eq!(s.next_event(), None);
    }

    #[test]
    fn sample_emits_one_event_per_period() {
        let events: Vec<BranchEvent> = (0..10).map(|i| ev(i * 4, 0)).collect();
        let mut s = SliceSource::new(&events).sample(3);
        let emitted: Vec<BranchEvent> = std::iter::from_fn(|| s.next_event()).collect();
        assert_eq!(emitted, vec![events[0], events[3], events[6], events[9]]);
        // Period 1 (and the clamped 0) is the identity.
        for period in [0u64, 1] {
            let mut s = SliceSource::new(&events).sample(period);
            let all: Vec<BranchEvent> = std::iter::from_fn(|| s.next_event()).collect();
            assert_eq!(all, events, "period {period}");
        }
    }

    #[test]
    fn sample_approximates_rates_not_counts() {
        // 1-in-2 sampling of an alternating branch keeps the taken-rate
        // visible while halving the event count.
        let events: Vec<BranchEvent> = (0..100).map(|i| ev(0x40, (i % 4) as u32)).collect();
        let mut s = SliceSource::new(&events).sample(2);
        let kept = std::iter::from_fn(|| s.next_event()).count();
        assert_eq!(kept, 50);
    }

    #[test]
    // The borrow is the point: it routes the call through the `&mut S`
    // blanket impl rather than `SliceSource`'s own.
    #[allow(clippy::needless_borrow)]
    fn mut_ref_forwards_fill_events() {
        let events = [ev(0, 0), ev(4, 0), ev(8, 0)];
        let mut s = SliceSource::new(&events);
        let mut buf = Vec::new();
        assert_eq!((&mut s).fill_events(&mut buf, 2), 2);
        assert_eq!(s.remaining(), 1, "the underlying source advanced");
    }

    #[test]
    fn interleave_round_robins_by_quantum() {
        // Two "processes" at distinct pcs, 1 instruction per event, quantum
        // of 2: the schedule is a a | b b | a a | b b | ...
        let a: Vec<BranchEvent> = (0..6).map(|i| ev(0x1000 + i * 4, 0)).collect();
        let b: Vec<BranchEvent> = (0..6).map(|i| ev(0x2000 + i * 4, 0)).collect();
        let mut s = InterleaveSource::new(vec![SliceSource::new(&a), SliceSource::new(&b)], 2);
        let emitted: Vec<BranchEvent> = std::iter::from_fn(|| s.next_event()).collect();
        assert_eq!(emitted.len(), 12, "nothing lost");
        let schedule: Vec<u64> = emitted.iter().map(|e| e.pc.0 >> 12).collect();
        assert_eq!(schedule, [1, 1, 2, 2, 1, 1, 2, 2, 1, 1, 2, 2]);
        // Within each process, program order is preserved.
        let from_a: Vec<BranchEvent> = emitted
            .iter()
            .filter(|e| e.pc.0 < 0x2000)
            .copied()
            .collect();
        assert_eq!(from_a, a);
    }

    #[test]
    fn interleave_drops_exhausted_sources() {
        let a: Vec<BranchEvent> = (0..2).map(|i| ev(0x1000 + i * 4, 0)).collect();
        let b: Vec<BranchEvent> = (0..6).map(|i| ev(0x2000 + i * 4, 0)).collect();
        let mut s = InterleaveSource::new(vec![SliceSource::new(&a), SliceSource::new(&b)], 2);
        let emitted: Vec<BranchEvent> = std::iter::from_fn(|| s.next_event()).collect();
        assert_eq!(emitted.len(), 8);
        // Once a is exhausted the rest is b alone, in order.
        assert_eq!(emitted[4..].iter().filter(|e| e.pc.0 >= 0x2000).count(), 4);
        assert_eq!(s.live_sources(), 0);
        assert_eq!(s.next_event(), None, "stays exhausted");
    }

    #[test]
    fn interleave_labels_and_degenerate_cases() {
        let a = [ev(0, 0)];
        let s = InterleaveSource::new(vec![SliceSource::new(&a)], 0);
        assert_eq!(s.label(), "<slice>", "inherits the first source's label");
        let s = s.with_label("server_web.ref");
        assert_eq!(s.label(), "server_web.ref");
        let mut empty: InterleaveSource<SliceSource<'_>> = InterleaveSource::new(vec![], 8);
        assert_eq!(empty.label(), "<interleave>");
        assert_eq!(empty.next_event(), None);
        // A single source with quantum 1 is the identity stream.
        let events: Vec<BranchEvent> = (0..5).map(|i| ev(i * 4, 1)).collect();
        let mut s = InterleaveSource::new(vec![SliceSource::new(&events)], 1);
        let emitted: Vec<BranchEvent> = std::iter::from_fn(|| s.next_event()).collect();
        assert_eq!(emitted, events);
    }

    #[test]
    fn mut_ref_is_a_source() {
        fn drain(src: &mut dyn BranchSource) -> usize {
            let mut n = 0;
            while src.next_event().is_some() {
                n += 1;
            }
            n
        }
        let events = [ev(0, 0), ev(4, 0)];
        let mut s = SliceSource::new(&events);
        assert_eq!(drain(&mut s), 2);
    }
}
