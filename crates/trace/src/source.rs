//! Streaming branch-event sources.
//!
//! The paper's runs cover up to 63 billion instructions; materializing such a
//! trace is out of the question. [`BranchSource`] is the pull-based stream
//! interface every simulator component consumes: workload generators
//! implement it directly, and in-memory traces adapt to it via
//! [`SliceSource`].

use crate::event::BranchEvent;
use crate::trace::Trace;

/// A pull-based stream of branch events.
///
/// Implementors produce events until the underlying workload is exhausted.
/// Unlike `Iterator`, the trait is object-safe with a tiny surface so
/// predicate simulators can hold `&mut dyn BranchSource`.
///
/// # Examples
///
/// ```
/// use sdbp_trace::{BranchAddr, BranchEvent, BranchSource, SliceSource};
///
/// let events = [BranchEvent::new(BranchAddr(0x10), true, 1)];
/// let mut src = SliceSource::new(&events);
/// assert!(src.next_event().is_some());
/// assert!(src.next_event().is_none());
/// ```
pub trait BranchSource {
    /// Produces the next branch event, or `None` when the stream ends.
    fn next_event(&mut self) -> Option<BranchEvent>;

    /// A human-readable label for reports. Defaults to `"<anonymous>"`.
    fn label(&self) -> &str {
        "<anonymous>"
    }

    /// Caps this source at roughly `max_instructions` retired instructions.
    ///
    /// The stream ends at the first event that would push the running
    /// instruction total past the cap (that event is not emitted).
    fn take_instructions(self, max_instructions: u64) -> TakeSource<Self>
    where
        Self: Sized,
    {
        TakeSource {
            inner: self,
            remaining: max_instructions,
        }
    }

    /// Collects the whole stream into an in-memory [`Trace`].
    ///
    /// Intended for tests and small experiments; the instruction total of the
    /// result is recomputed from the collected events.
    fn collect_trace(mut self) -> Trace
    where
        Self: Sized,
    {
        let mut builder = crate::trace::TraceBuilder::named(self.label());
        while let Some(e) = self.next_event() {
            builder.push(e);
        }
        builder.finish()
    }
}

impl<S: BranchSource + ?Sized> BranchSource for &mut S {
    fn next_event(&mut self) -> Option<BranchEvent> {
        (**self).next_event()
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

/// Adapts a slice of events (or an in-memory [`Trace`]) to [`BranchSource`].
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    events: &'a [BranchEvent],
    pos: usize,
    label: &'a str,
}

impl<'a> SliceSource<'a> {
    /// Streams over a borrowed slice of events.
    pub fn new(events: &'a [BranchEvent]) -> Self {
        Self {
            events,
            pos: 0,
            label: "<slice>",
        }
    }

    /// Streams over the events of a borrowed trace, inheriting its name.
    pub fn from_trace(trace: &'a Trace) -> Self {
        Self {
            events: trace.events(),
            pos: 0,
            label: &trace.meta().name,
        }
    }

    /// Events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.pos
    }
}

impl BranchSource for SliceSource<'_> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        let e = self.events.get(self.pos)?;
        self.pos += 1;
        Some(*e)
    }

    fn label(&self) -> &str {
        self.label
    }
}

/// A source capped at an instruction budget; see
/// [`BranchSource::take_instructions`].
#[derive(Debug, Clone)]
pub struct TakeSource<S> {
    inner: S,
    remaining: u64,
}

impl<S: BranchSource> BranchSource for TakeSource<S> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        let e = self.inner.next_event()?;
        let cost = e.instructions();
        if cost > self.remaining {
            self.remaining = 0;
            return None;
        }
        self.remaining -= cost;
        Some(e)
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// Adapts any iterator of events to [`BranchSource`].
#[derive(Debug, Clone)]
pub struct IterSource<I> {
    iter: I,
    label: String,
}

impl<I> IterSource<I> {
    /// Wraps `iter` with a report label.
    pub fn new(iter: I, label: impl Into<String>) -> Self {
        Self {
            iter,
            label: label.into(),
        }
    }
}

impl<I: Iterator<Item = BranchEvent>> BranchSource for IterSource<I> {
    fn next_event(&mut self) -> Option<BranchEvent> {
        self.iter.next()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BranchAddr;
    use crate::trace::TraceBuilder;

    fn ev(pc: u64, gap: u32) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), true, gap)
    }

    #[test]
    fn slice_source_streams_in_order() {
        let events = [ev(0, 0), ev(4, 1), ev(8, 2)];
        let mut s = SliceSource::new(&events);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_event(), Some(events[0]));
        assert_eq!(s.next_event(), Some(events[1]));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_event(), Some(events[2]));
        assert_eq!(s.next_event(), None);
        assert_eq!(s.next_event(), None, "stays exhausted");
    }

    #[test]
    fn from_trace_inherits_label() {
        let mut b = TraceBuilder::named("go.train");
        b.push(ev(0, 0));
        let t = b.finish();
        let s = SliceSource::from_trace(&t);
        assert_eq!(s.label(), "go.train");
    }

    #[test]
    fn take_instructions_caps_the_stream() {
        // Each event costs gap+1 = 5 instructions.
        let events: Vec<BranchEvent> = (0..10).map(|i| ev(i * 4, 4)).collect();
        let src = SliceSource::new(&events);
        let mut capped = src.take_instructions(12);
        // 5 + 5 = 10 fits, the third event would reach 15 > 12.
        assert!(capped.next_event().is_some());
        assert!(capped.next_event().is_some());
        assert!(capped.next_event().is_none());
    }

    #[test]
    fn take_instructions_zero_is_empty() {
        let events = [ev(0, 0)];
        let mut capped = SliceSource::new(&events).take_instructions(0);
        assert!(capped.next_event().is_none());
    }

    #[test]
    fn collect_trace_rebuilds_accounting() {
        let events = [ev(0, 3), ev(4, 5)];
        let t = SliceSource::new(&events).collect_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t.meta().total_instructions, 4 + 6);
        assert_eq!(t.meta().name, "<slice>");
    }

    #[test]
    fn iter_source_adapts_iterators() {
        let mut s = IterSource::new((0..3).map(|i| ev(i * 4, 0)), "synthetic");
        assert_eq!(s.label(), "synthetic");
        assert_eq!(s.next_event().unwrap().pc, BranchAddr(0));
        assert_eq!(s.next_event().unwrap().pc, BranchAddr(4));
        assert_eq!(s.next_event().unwrap().pc, BranchAddr(8));
        assert!(s.next_event().is_none());
    }

    #[test]
    fn mut_ref_is_a_source() {
        fn drain(src: &mut dyn BranchSource) -> usize {
            let mut n = 0;
            while src.next_event().is_some() {
                n += 1;
            }
            n
        }
        let events = [ev(0, 0), ev(4, 0)];
        let mut s = SliceSource::new(&events);
        assert_eq!(drain(&mut s), 2);
    }
}
