//! The branch event observed by every predictor in the stack.

use std::fmt;

/// The address (program counter) of a static conditional branch instruction.
///
/// A newtype rather than a bare `u64` so that branch addresses cannot be
/// confused with table indices, history values, or instruction counts, all of
/// which also travel as 64-bit integers through the simulator.
///
/// # Examples
///
/// ```
/// use sdbp_trace::BranchAddr;
///
/// let pc = BranchAddr(0x0001_2000);
/// assert_eq!(pc.word_index(), 0x0000_4800, "Alpha instructions are 4 bytes");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BranchAddr(pub u64);

impl BranchAddr {
    /// The address divided by the 4-byte instruction width.
    ///
    /// Branch predictor tables are indexed with instruction-granular address
    /// bits; the two always-zero byte-offset bits would otherwise waste index
    /// entropy (the paper's predictors all discard them).
    pub fn word_index(self) -> u64 {
        self.0 >> 2
    }
}

impl fmt::Display for BranchAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for BranchAddr {
    fn from(v: u64) -> Self {
        BranchAddr(v)
    }
}

impl From<BranchAddr> for u64 {
    fn from(a: BranchAddr) -> Self {
        a.0
    }
}

/// The resolved direction of a conditional branch.
///
/// A two-variant enum rather than a bare `bool` at API boundaries where the
/// meaning of `true` would be ambiguous.
///
/// # Examples
///
/// ```
/// use sdbp_trace::Outcome;
///
/// let o = Outcome::from_taken(true);
/// assert_eq!(o, Outcome::Taken);
/// assert!(o.is_taken());
/// assert_eq!(!o, Outcome::NotTaken);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The branch was taken (control transferred to the target).
    Taken,
    /// The branch fell through.
    NotTaken,
}

impl Outcome {
    /// Converts from the `taken` flag representation.
    pub fn from_taken(taken: bool) -> Self {
        if taken {
            Outcome::Taken
        } else {
            Outcome::NotTaken
        }
    }

    /// Whether this outcome is [`Outcome::Taken`].
    pub fn is_taken(self) -> bool {
        matches!(self, Outcome::Taken)
    }
}

impl std::ops::Not for Outcome {
    type Output = Outcome;

    fn not(self) -> Outcome {
        match self {
            Outcome::Taken => Outcome::NotTaken,
            Outcome::NotTaken => Outcome::Taken,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Taken => f.write_str("T"),
            Outcome::NotTaken => f.write_str("N"),
        }
    }
}

/// One executed conditional branch.
///
/// `gap` records the number of non-branch instructions retired since the
/// previous conditional branch (or since program start for the first event),
/// which is what lets the simulator compute the paper's MISPs/KI metric —
/// mispredictions per thousand *instructions* — without carrying a separate
/// instruction stream.
///
/// # Examples
///
/// ```
/// use sdbp_trace::{BranchAddr, BranchEvent, Outcome};
///
/// let e = BranchEvent::new(BranchAddr(0x400), true, 6);
/// assert_eq!(e.outcome(), Outcome::Taken);
/// assert_eq!(e.instructions(), 7, "gap plus the branch itself");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchEvent {
    /// Address of the branch instruction.
    pub pc: BranchAddr,
    /// Whether the branch was taken.
    pub taken: bool,
    /// Non-branch instructions retired since the previous conditional branch.
    pub gap: u32,
}

impl BranchEvent {
    /// Creates an event.
    pub fn new(pc: BranchAddr, taken: bool, gap: u32) -> Self {
        Self { pc, taken, gap }
    }

    /// The direction as an [`Outcome`].
    pub fn outcome(&self) -> Outcome {
        Outcome::from_taken(self.taken)
    }

    /// Instructions this event accounts for: the preceding gap plus the
    /// branch instruction itself.
    pub fn instructions(&self) -> u64 {
        self.gap as u64 + 1
    }
}

impl fmt::Display for BranchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} gap={}", self.pc, self.outcome(), self.gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_index_strips_byte_offset() {
        assert_eq!(BranchAddr(0).word_index(), 0);
        assert_eq!(BranchAddr(4).word_index(), 1);
        assert_eq!(BranchAddr(0x1000).word_index(), 0x400);
    }

    #[test]
    fn addr_conversions_roundtrip() {
        let a = BranchAddr::from(0xdead_beefu64);
        let v: u64 = a.into();
        assert_eq!(v, 0xdead_beef);
        assert_eq!(a.to_string(), "0xdeadbeef");
    }

    #[test]
    fn outcome_negation_and_flags() {
        assert!(Outcome::Taken.is_taken());
        assert!(!Outcome::NotTaken.is_taken());
        assert_eq!(!Outcome::Taken, Outcome::NotTaken);
        assert_eq!(!!Outcome::Taken, Outcome::Taken);
        assert_eq!(Outcome::from_taken(false), Outcome::NotTaken);
    }

    #[test]
    fn outcome_display_is_single_letter() {
        assert_eq!(Outcome::Taken.to_string(), "T");
        assert_eq!(Outcome::NotTaken.to_string(), "N");
    }

    #[test]
    fn event_accounting() {
        let e = BranchEvent::new(BranchAddr(0x8), false, 0);
        assert_eq!(e.instructions(), 1);
        let e = BranchEvent::new(BranchAddr(0x8), true, 9);
        assert_eq!(e.instructions(), 10);
    }

    #[test]
    fn event_display_mentions_all_fields() {
        let e = BranchEvent::new(BranchAddr(0x10), true, 3);
        let s = e.to_string();
        assert!(s.contains("0x10"));
        assert!(s.contains('T'));
        assert!(s.contains("gap=3"));
    }
}
