//! External trace ingestion: format autodetection and streaming importers.
//!
//! The simulator's front door is [`crate::BranchSource`]; this module makes
//! that literal for *files*. A [`TraceImporter`] turns an on-disk trace in
//! any supported [`TraceFormat`] into an [`ImportStream`] — a bounded-memory
//! `BranchSource` that decodes one event at a time, so a multi-gigabyte
//! ChampSim-style capture streams through the pass framework exactly like a
//! synthetic generator.
//!
//! Three formats are supported:
//!
//! * [`TraceFormat::SdbtBinary`] — the native varint-delta binary codec
//!   (`codec/binary.rs`), recognized by its `SDBT` magic,
//! * [`TraceFormat::SdbpText`] — the line-oriented interchange format
//!   (`codec/text.rs`),
//! * [`TraceFormat::PerfText`] — `perf script`-style branch records: each
//!   line may carry prefix tokens (comm, pid, cpu, timestamp — the last one
//!   ends with `:`), followed by `pc direction [gap]`.
//!
//! [`autodetect`] picks the format from the first bytes of the input;
//! [`open_path`] is the one-call entry point. Because `BranchSource` has no
//! error channel, a decode error mid-stream ends the stream and is parked on
//! [`ImportStream::error`]; [`scan_path`] (used by `sdbp ingest` and the
//! `sdbp check` admission lints) surfaces it up front.

use crate::codec::binary::{read_header, EventDecoder};
use crate::codec::text::{parse_record_fields, parse_text_line, ParsedLine};
use crate::error::TraceError;
use crate::event::BranchEvent;
use crate::source::BranchSource;
use crate::trace::{Trace, TraceBuilder};
use std::collections::HashSet;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::str::FromStr;

/// How many bytes of the input [`autodetect`] inspects.
const SNIFF_LEN: usize = 4096;

/// The on-disk trace formats the importer seam understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFormat {
    /// Native varint-delta binary format (`SDBT` magic).
    SdbtBinary,
    /// Line-oriented sdbp text format (`<hex pc> T|N [gap]`).
    SdbpText,
    /// `perf script` branch-record text (prefix tokens ending in `:`).
    PerfText,
}

impl TraceFormat {
    /// All supported formats, in autodetection order.
    pub const ALL: [TraceFormat; 3] = [
        TraceFormat::SdbtBinary,
        TraceFormat::SdbpText,
        TraceFormat::PerfText,
    ];

    /// Stable lowercase name, used by CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::SdbtBinary => "sdbt-binary",
            TraceFormat::SdbpText => "sdbp-text",
            TraceFormat::PerfText => "perf-text",
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TraceFormat::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown trace format '{s}', expected one of sdbt-binary, sdbp-text, perf-text"
                )
            })
    }
}

/// A format adapter: recognizes its format in raw bytes and opens files of
/// that format as streaming branch sources.
///
/// Implementations are stateless unit structs; [`importers`] is the
/// registry [`autodetect`] walks in order.
pub trait TraceImporter: Sync {
    /// The format this importer handles.
    fn format(&self) -> TraceFormat;

    /// Whether `prefix` (the first bytes of an input, trimmed to whole lines
    /// for text formats) looks like this importer's format.
    fn sniff(&self, prefix: &[u8]) -> bool;

    /// Opens `path` as a bounded-memory streaming source.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be opened, plus header
    /// validation errors for framed formats (bad magic, unsupported
    /// version, oversized name).
    fn open(&self, path: &Path) -> Result<ImportStream, TraceError> {
        let file = File::open(path)?;
        let label = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "<import>".to_string());
        ImportStream::open(self.format(), Box::new(BufReader::new(file)), label)
    }
}

/// Importer for the native binary format.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryImporter;

impl TraceImporter for BinaryImporter {
    fn format(&self) -> TraceFormat {
        TraceFormat::SdbtBinary
    }

    fn sniff(&self, prefix: &[u8]) -> bool {
        prefix.len() >= 4 && prefix[..4] == *b"SDBT"
    }
}

/// Importer for the sdbp text format.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextImporter;

impl TraceImporter for TextImporter {
    fn format(&self) -> TraceFormat {
        TraceFormat::SdbpText
    }

    fn sniff(&self, prefix: &[u8]) -> bool {
        match first_significant_line(prefix) {
            Some(line) => {
                line.starts_with('!') || parse_record_fields(line.split_whitespace(), 1).is_ok()
            }
            None => false,
        }
    }
}

/// Importer for `perf script` branch-record text.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfImporter;

impl TraceImporter for PerfImporter {
    fn format(&self) -> TraceFormat {
        TraceFormat::PerfText
    }

    fn sniff(&self, prefix: &[u8]) -> bool {
        match first_significant_line(prefix) {
            Some(line) => parse_perf_line(&line, 1)
                .map(|e| e.is_some())
                .unwrap_or(false),
            None => false,
        }
    }
}

static BINARY_IMPORTER: BinaryImporter = BinaryImporter;
static TEXT_IMPORTER: TextImporter = TextImporter;
static PERF_IMPORTER: PerfImporter = PerfImporter;

/// The importer registry, in autodetection order: framed binary first, then
/// the stricter text grammar, then the perf adapter.
pub fn importers() -> [&'static dyn TraceImporter; 3] {
    [&BINARY_IMPORTER, &TEXT_IMPORTER, &PERF_IMPORTER]
}

/// The importer for a specific format.
pub fn importer_for(format: TraceFormat) -> &'static dyn TraceImporter {
    match format {
        TraceFormat::SdbtBinary => &BINARY_IMPORTER,
        TraceFormat::SdbpText => &TEXT_IMPORTER,
        TraceFormat::PerfText => &PERF_IMPORTER,
    }
}

/// First non-blank, non-comment line of a byte prefix, for sniffing.
fn first_significant_line(prefix: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(prefix);
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
}

/// Picks the format of an input from its first bytes.
///
/// Binary is recognized by magic on the raw bytes; text formats by parsing
/// the first significant line. Returns `None` when nothing matches — the
/// caller turns that into [`TraceError::UnknownFormat`].
pub fn autodetect(prefix: &[u8]) -> Option<TraceFormat> {
    // A prefix cut mid-line must not make the last (partial) line vote.
    let trimmed: &[u8] = if prefix.len() >= SNIFF_LEN {
        match prefix.iter().rposition(|&b| b == b'\n') {
            Some(i) => &prefix[..i],
            None => &[],
        }
    } else {
        prefix
    };
    for imp in importers() {
        let probe = if imp.format() == TraceFormat::SdbtBinary {
            prefix
        } else {
            trimmed
        };
        if imp.sniff(probe) {
            return Some(imp.format());
        }
    }
    None
}

/// Opens `path` as a streaming branch source, autodetecting its format.
///
/// # Errors
///
/// [`TraceError::UnknownFormat`] when no importer recognizes the input;
/// otherwise whatever the matching importer's `open` reports.
pub fn open_path(path: &Path) -> Result<ImportStream, TraceError> {
    let mut f = File::open(path)?;
    let mut prefix = vec![0u8; SNIFF_LEN];
    let mut n = 0;
    // File reads may return short counts; fill the sniff window.
    loop {
        let got = f.read(&mut prefix[n..])?;
        if got == 0 {
            break;
        }
        n += got;
        if n == SNIFF_LEN {
            break;
        }
    }
    prefix.truncate(n);
    let format = autodetect(&prefix).ok_or_else(|| TraceError::UnknownFormat {
        prefix: prefix[..n.min(8)].to_vec(),
    })?;
    importer_for(format).open(path)
}

/// Reads a whole trace file into memory, autodetecting its format.
///
/// The strict counterpart of [`open_path`]: any decode error anywhere in the
/// file is returned instead of truncating the stream.
///
/// # Errors
///
/// Everything [`open_path`] reports, plus any mid-stream decode error.
pub fn import_trace(path: &Path) -> Result<Trace, TraceError> {
    let mut stream = open_path(path)?;
    let mut builder = TraceBuilder::new();
    while let Some(e) = stream.next_event() {
        builder.push(e);
    }
    if let Some(e) = stream.take_error() {
        return Err(e);
    }
    let name = stream.label().to_string();
    let mut trace = builder.finish();
    if !name.is_empty() {
        trace = Trace::from_parts(
            crate::trace::TraceMeta {
                total_instructions: trace.meta().total_instructions,
                name,
            },
            trace.into_iter().collect(),
        );
    }
    Ok(trace)
}

enum StreamKind {
    Binary {
        decoder: EventDecoder,
        expected: u64,
    },
    Text,
    Perf,
}

/// A bounded-memory streaming [`BranchSource`] over an imported trace file.
///
/// Decodes one event per [`next_event`](BranchSource::next_event) call and
/// never materializes the file. Because `BranchSource` has no error channel,
/// a decode failure ends the stream; the failure is retained and exposed via
/// [`error`](ImportStream::error) so admission tooling (`sdbp ingest`, the
/// SDBP07x lints) can distinguish clean EOF from truncation.
pub struct ImportStream {
    reader: Box<dyn BufRead + Send>,
    kind: StreamKind,
    label: String,
    /// Declared instruction total from a binary header, if any.
    declared_instructions: Option<u64>,
    lineno: usize,
    pending: Option<BranchEvent>,
    error: Option<TraceError>,
    emitted: u64,
    instructions: u64,
    line_buf: String,
}

impl fmt::Debug for ImportStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImportStream")
            .field("format", &self.format().name())
            .field("label", &self.label)
            .field("emitted", &self.emitted)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl ImportStream {
    /// Opens a stream of `format` over `reader`, with `label` as the
    /// fallback report label (a text `!name` directive overrides it).
    ///
    /// # Errors
    ///
    /// For the binary format, header validation errors; text formats never
    /// fail at open (their errors surface on the first pull).
    pub fn open(
        format: TraceFormat,
        mut reader: Box<dyn BufRead + Send>,
        label: String,
    ) -> Result<ImportStream, TraceError> {
        let mut stream = match format {
            TraceFormat::SdbtBinary => {
                let header = read_header(&mut reader)?;
                let label = if header.name.is_empty() {
                    label
                } else {
                    header.name.clone()
                };
                ImportStream {
                    reader,
                    kind: StreamKind::Binary {
                        decoder: EventDecoder::default(),
                        expected: header.events,
                    },
                    label,
                    declared_instructions: Some(header.total_instructions),
                    lineno: 0,
                    pending: None,
                    error: None,
                    emitted: 0,
                    instructions: 0,
                    line_buf: String::new(),
                }
            }
            TraceFormat::SdbpText | TraceFormat::PerfText => ImportStream {
                reader,
                kind: if format == TraceFormat::SdbpText {
                    StreamKind::Text
                } else {
                    StreamKind::Perf
                },
                label,
                declared_instructions: None,
                lineno: 0,
                pending: None,
                error: None,
                emitted: 0,
                instructions: 0,
                line_buf: String::new(),
            },
        };
        // Resolve a leading `!name` directive before the first pull so the
        // label is right from the start; the first event (if reached) is
        // parked in `pending`.
        if matches!(stream.kind, StreamKind::Text) {
            let first = stream.pull();
            stream.pending = first;
        }
        Ok(stream)
    }

    /// Replaces the stream's report label (builder-style), overriding both
    /// the fallback label and any embedded trace name.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The stream's format.
    pub fn format(&self) -> TraceFormat {
        match self.kind {
            StreamKind::Binary { .. } => TraceFormat::SdbtBinary,
            StreamKind::Text => TraceFormat::SdbpText,
            StreamKind::Perf => TraceFormat::PerfText,
        }
    }

    /// The decode error that ended the stream, if any.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// Takes ownership of the decode error that ended the stream, if any.
    pub fn take_error(&mut self) -> Option<TraceError> {
        self.error.take()
    }

    /// Events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Instructions accounted to the events emitted so far.
    pub fn instructions_emitted(&self) -> u64 {
        self.instructions
    }

    /// The instruction total declared by a binary header, when present.
    pub fn declared_instructions(&self) -> Option<u64> {
        self.declared_instructions
    }

    /// Pulls the next event from the underlying decoder, recording errors.
    fn pull(&mut self) -> Option<BranchEvent> {
        if self.error.is_some() {
            return None;
        }
        match &mut self.kind {
            StreamKind::Binary { decoder, expected } => {
                if decoder.decoded() >= *expected {
                    return None;
                }
                match decoder.next(&mut self.reader, *expected) {
                    Ok(e) => Some(e),
                    Err(e) => {
                        self.error = Some(e);
                        None
                    }
                }
            }
            StreamKind::Text | StreamKind::Perf => {
                let perf = matches!(self.kind, StreamKind::Perf);
                loop {
                    self.line_buf.clear();
                    match self.reader.read_line(&mut self.line_buf) {
                        Ok(0) => return None,
                        Ok(_) => {}
                        Err(e) => {
                            self.error = Some(TraceError::Io(e));
                            return None;
                        }
                    }
                    self.lineno += 1;
                    let parsed = if perf {
                        parse_perf_line(&self.line_buf, self.lineno).map(|o| match o {
                            Some(e) => ParsedLine::Event(e),
                            None => ParsedLine::Nothing,
                        })
                    } else {
                        parse_text_line(&self.line_buf, self.lineno)
                    };
                    match parsed {
                        Ok(ParsedLine::Event(e)) => return Some(e),
                        Ok(ParsedLine::Name(n)) => {
                            self.label = n;
                        }
                        Ok(ParsedLine::Nothing) => {}
                        Err(e) => {
                            self.error = Some(e);
                            return None;
                        }
                    }
                }
            }
        }
    }
}

impl BranchSource for ImportStream {
    fn next_event(&mut self) -> Option<BranchEvent> {
        let e = match self.pending.take() {
            Some(e) => e,
            None => self.pull()?,
        };
        self.emitted += 1;
        self.instructions += e.instructions();
        Some(e)
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Parses one `perf script` branch-record line.
///
/// Grammar: optional prefix tokens (comm, pid/tid, cpu, timestamp, event
/// name) of which the last ends with `:`, then `pc direction [gap]`.
/// Direction tokens accept `T|t|1|taken` and `N|n|0|not-taken`. Lines with
/// no `:`-terminated prefix are parsed as bare records, so post-processed
/// captures work too. Returns `Ok(None)` for blank and `#`-comment lines.
///
/// # Errors
///
/// [`TraceError::BadRecord`] with the failing line number and a typed
/// [`crate::RecordError`].
pub fn parse_perf_line(line: &str, lineno: usize) -> Result<Option<BranchEvent>, TraceError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let start = tokens
        .iter()
        .rposition(|t| t.ends_with(':'))
        .map(|i| i + 1)
        .unwrap_or(0);
    parse_record_fields(tokens[start..].iter().copied(), lineno).map(Some)
}

/// Writes `trace` as `perf script`-style branch-record text.
///
/// The synthetic prefix carries the trace name as the comm field and a fake
/// monotonically increasing timestamp derived from the retired-instruction
/// total, so the output round-trips through [`PerfImporter`] event-for-event
/// (perf text has no name channel, so the name itself does not survive).
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_perf_text<W: Write>(w: &mut W, trace: &Trace) -> Result<(), TraceError> {
    let name = &trace.meta().name;
    let comm: String = if name.is_empty() {
        "sdbp".to_string()
    } else {
        name.split_whitespace().collect::<Vec<_>>().join("_")
    };
    writeln!(w, "# synthetic perf script branch records: {comm}")?;
    let mut cycles = 0u64;
    for e in trace.iter() {
        cycles += e.instructions();
        writeln!(
            w,
            "{comm} 0 [000] {}.{:06}: branches: {:x} {} {}",
            cycles / 1_000_000,
            cycles % 1_000_000,
            e.pc.0,
            if e.taken { 'T' } else { 'N' },
            e.gap
        )?;
    }
    Ok(())
}

/// Aggregate statistics from one full streaming pass over a trace file,
/// produced by [`scan_path`] — the substrate for `sdbp ingest` and the
/// SDBP07x admission lints.
#[derive(Debug, Clone)]
pub struct TraceScan {
    /// The detected format.
    pub format: TraceFormat,
    /// The stream label (embedded name, or the file stem).
    pub name: String,
    /// Events successfully decoded.
    pub events: u64,
    /// Instructions accounted to the decoded events.
    pub total_instructions: u64,
    /// Decoded events with a taken outcome.
    pub taken: u64,
    /// Distinct branch pcs seen.
    pub distinct_sites: u64,
    /// FNV-1a content digest over the decoded event stream.
    pub digest: u64,
    /// The decode error that cut the scan short, rendered, if any.
    pub error: Option<String>,
}

impl TraceScan {
    /// Conditional branches per thousand instructions.
    pub fn cbrs_per_ki(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.events as f64 * 1000.0 / self.total_instructions as f64
        }
    }

    /// Fraction of decoded events that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.taken as f64 / self.events as f64
        }
    }
}

/// Streams the whole file once, collecting [`TraceScan`] statistics.
///
/// Decode errors mid-file do not fail the scan — they are recorded on
/// [`TraceScan::error`] with the statistics of the valid prefix, which is
/// exactly what admission lints need to report.
///
/// # Errors
///
/// Only open-time failures: I/O, unknown format, or a bad binary header.
pub fn scan_path(path: &Path) -> Result<TraceScan, TraceError> {
    let mut stream = open_path(path)?;
    let format = stream.format();
    let mut taken = 0u64;
    let mut sites = HashSet::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    while let Some(e) = stream.next_event() {
        taken += u64::from(e.taken);
        sites.insert(e.pc.0);
        fold(&e.pc.0.to_le_bytes());
        fold(&[u8::from(e.taken)]);
        fold(&e.gap.to_le_bytes());
    }
    Ok(TraceScan {
        format,
        name: stream.label().to_string(),
        events: stream.emitted(),
        total_instructions: stream.instructions_emitted(),
        taken,
        distinct_sites: sites.len() as u64,
        digest,
        error: stream.error().map(|e| e.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{write_binary, write_text};
    use crate::event::BranchAddr;
    use crate::source::BranchSource;
    use crate::trace::TraceBuilder;
    use std::io::Cursor;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::named("go.train");
        b.push(BranchEvent::new(BranchAddr(0x12000), true, 6));
        b.push(BranchEvent::new(BranchAddr(0x12010), false, 2));
        b.push(BranchEvent::new(BranchAddr(0x11ff0), true, 0));
        b.finish()
    }

    fn stream_of(format: TraceFormat, bytes: Vec<u8>) -> ImportStream {
        ImportStream::open(format, Box::new(Cursor::new(bytes)), "fallback".into()).unwrap()
    }

    fn drain(stream: &mut ImportStream) -> Vec<BranchEvent> {
        std::iter::from_fn(|| stream.next_event()).collect()
    }

    #[test]
    fn binary_stream_matches_materializing_reader() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        let mut s = stream_of(TraceFormat::SdbtBinary, buf);
        assert_eq!(s.label(), "go.train", "header name wins over fallback");
        assert_eq!(
            s.declared_instructions(),
            Some(trace.meta().total_instructions)
        );
        assert_eq!(drain(&mut s), trace.events());
        assert!(s.error().is_none());
        assert_eq!(s.emitted(), 3);
    }

    #[test]
    fn text_stream_resolves_name_before_first_pull() {
        let text = "# c\n!name perl.ref\nabc T 3\nac0 N 0\n";
        let s = stream_of(TraceFormat::SdbpText, text.into());
        assert_eq!(s.label(), "perl.ref");
        let mut s = s;
        let events = drain(&mut s);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].pc, BranchAddr(0xabc));
    }

    #[test]
    fn perf_lines_parse_with_and_without_prefixes() {
        let e = parse_perf_line("nginx 4242 [003] 17.654321: branches: 401234 T 5", 1)
            .unwrap()
            .unwrap();
        assert_eq!(e.pc, BranchAddr(0x401234));
        assert!(e.taken);
        assert_eq!(e.gap, 5);
        let e = parse_perf_line("401238 not-taken", 2).unwrap().unwrap();
        assert!(!e.taken);
        assert_eq!(e.gap, 0);
        assert!(parse_perf_line("# comment", 3).unwrap().is_none());
        assert!(parse_perf_line("", 4).unwrap().is_none());
        assert!(matches!(
            parse_perf_line("nginx 4242 17.0: branches: zz T", 5),
            Err(TraceError::BadRecord { line: 5, .. })
        ));
    }

    #[test]
    fn perf_roundtrip_preserves_events() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_perf_text(&mut buf, &trace).unwrap();
        let mut s = stream_of(TraceFormat::PerfText, buf);
        assert_eq!(drain(&mut s), trace.events());
        assert!(s.error().is_none());
    }

    #[test]
    fn autodetect_recognizes_all_three_formats() {
        let trace = sample_trace();
        let mut binary = Vec::new();
        write_binary(&mut binary, &trace).unwrap();
        assert_eq!(autodetect(&binary), Some(TraceFormat::SdbtBinary));
        let mut text = Vec::new();
        write_text(&mut text, &trace).unwrap();
        assert_eq!(autodetect(&text), Some(TraceFormat::SdbpText));
        let mut perf = Vec::new();
        write_perf_text(&mut perf, &trace).unwrap();
        assert_eq!(autodetect(&perf), Some(TraceFormat::PerfText));
        assert_eq!(autodetect(b"\x7fELF garbage"), None);
        assert_eq!(autodetect(b""), None);
    }

    #[test]
    fn truncated_binary_ends_stream_with_typed_error() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 3);
        let mut s = stream_of(TraceFormat::SdbtBinary, buf);
        let events = drain(&mut s);
        assert!(events.len() < 3, "stream stops at the cut");
        assert!(matches!(
            s.error(),
            Some(TraceError::TruncatedEvents { expected: 3, .. })
        ));
        // The valid prefix matches the original stream.
        assert_eq!(events[..], trace.events()[..events.len()]);
    }

    #[test]
    fn corrupt_text_line_ends_stream_after_valid_prefix() {
        let text = "10 T 1\n14 N 2\nZZZ T 1\n18 T 0\n";
        let mut s = stream_of(TraceFormat::SdbpText, text.into());
        let events = drain(&mut s);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            s.take_error(),
            Some(TraceError::BadRecord { line: 3, .. })
        ));
    }

    #[test]
    fn open_path_autodetects_and_import_trace_is_strict() {
        let dir = std::env::temp_dir().join("sdbp-import-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = sample_trace();

        let bin_path = dir.join("roundtrip.sdbt");
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        std::fs::write(&bin_path, &buf).unwrap();
        let mut s = open_path(&bin_path).unwrap();
        assert_eq!(s.format(), TraceFormat::SdbtBinary);
        assert_eq!(drain(&mut s), trace.events());
        let back = import_trace(&bin_path).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.meta().name, "go.train");

        // A truncated file streams a prefix via open_path but fails
        // import_trace outright.
        let cut_path = dir.join("truncated.sdbt");
        std::fs::write(&cut_path, &buf[..buf.len() - 2]).unwrap();
        assert!(matches!(
            import_trace(&cut_path),
            Err(TraceError::TruncatedEvents { .. })
        ));

        let junk_path = dir.join("junk.bin");
        std::fs::write(&junk_path, b"\x00\x01\x02\x03 nothing here").unwrap();
        assert!(matches!(
            open_path(&junk_path),
            Err(TraceError::UnknownFormat { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_reports_stats_and_survives_corruption() {
        let dir = std::env::temp_dir().join("sdbp-scan-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.txt");
        std::fs::write(&path, "!name scanme\n10 T 4\n10 N 0\n20 T 1\n").unwrap();
        let scan = scan_path(&path).unwrap();
        assert_eq!(scan.format, TraceFormat::SdbpText);
        assert_eq!(scan.name, "scanme");
        assert_eq!(scan.events, 3);
        assert_eq!(scan.total_instructions, 5 + 1 + 2);
        assert_eq!(scan.taken, 2);
        assert_eq!(scan.distinct_sites, 2);
        assert!(scan.error.is_none());
        let clean_digest = scan.digest;

        std::fs::write(&path, "!name scanme\n10 T 4\n10 N 0\n20 T 1\nbroken!\n").unwrap();
        let scan = scan_path(&path).unwrap();
        assert_eq!(scan.events, 3, "valid prefix still counted");
        assert_eq!(scan.digest, clean_digest, "digest covers the same prefix");
        assert!(scan.error.unwrap().contains("line 5"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_names_roundtrip_through_fromstr() {
        for f in TraceFormat::ALL {
            assert_eq!(f.name().parse::<TraceFormat>().unwrap(), f);
        }
        assert!("bt9".parse::<TraceFormat>().is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::codec::write_binary;
    use crate::event::BranchAddr;
    use crate::source::BranchSource;
    use crate::trace::TraceBuilder;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn arb_trace() -> impl Strategy<Value = Trace> {
        (
            proptest::collection::vec(
                (any::<u64>(), any::<bool>(), 0u32..100_000)
                    .prop_map(|(pc, taken, gap)| BranchEvent::new(BranchAddr(pc), taken, gap)),
                0..200,
            ),
            "[a-z.0-9]{0,16}",
        )
            .prop_map(|(events, name)| {
                let mut b = TraceBuilder::named(name);
                b.extend(events);
                b.finish()
            })
    }

    fn drain_stream(format: TraceFormat, bytes: Vec<u8>) -> (Vec<BranchEvent>, Option<String>) {
        let mut s = ImportStream::open(format, Box::new(Cursor::new(bytes)), "x".into()).unwrap();
        let events = std::iter::from_fn(|| s.next_event()).collect();
        (events, s.error().map(|e| e.to_string()))
    }

    proptest! {
        // The tentpole invariant: export -> import produces a bit-identical
        // BranchSource stream, for both importers.
        #[test]
        fn binary_import_roundtrip(trace in arb_trace()) {
            let mut buf = Vec::new();
            write_binary(&mut buf, &trace).unwrap();
            let (events, error) = drain_stream(TraceFormat::SdbtBinary, buf);
            prop_assert!(error.is_none(), "unexpected error: {error:?}");
            prop_assert_eq!(events, trace.events());
        }

        #[test]
        fn perf_import_roundtrip(trace in arb_trace()) {
            let mut buf = Vec::new();
            write_perf_text(&mut buf, &trace).unwrap();
            let (events, error) = drain_stream(TraceFormat::PerfText, buf);
            prop_assert!(error.is_none(), "unexpected error: {error:?}");
            prop_assert_eq!(events, trace.events());
        }

        // Mirrors the SDBA codec corruption tests: any truncation of a
        // binary payload yields a clean prefix of the original stream plus
        // a recorded error (or a shorter valid stream, never garbage).
        #[test]
        fn binary_truncation_never_fabricates_events(
            trace in arb_trace(),
            cut_back in 1usize..32,
        ) {
            let mut buf = Vec::new();
            write_binary(&mut buf, &trace).unwrap();
            let cut = buf.len().saturating_sub(cut_back).max(1);
            // A cut inside the header fails at open — also a clean outcome.
            let opened = ImportStream::open(
                TraceFormat::SdbtBinary,
                Box::new(Cursor::new(buf[..cut].to_vec())),
                "x".into(),
            );
            if let Ok(mut s) = opened {
                let events: Vec<_> = std::iter::from_fn(|| s.next_event()).collect();
                prop_assert!(events.len() <= trace.len());
                prop_assert_eq!(&events[..], &trace.events()[..events.len()]);
            }
        }
    }
}
