//! Error type for trace I/O.

use std::fmt;
use std::io;

/// Errors produced while encoding or decoding traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input did not start with the expected magic bytes.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not supported by this build.
    UnsupportedVersion {
        /// The version actually found.
        found: u16,
    },
    /// A varint ran past the end of the input or exceeded 64 bits.
    TruncatedVarint,
    /// The payload ended before the declared number of events.
    TruncatedEvents {
        /// Events promised by the header.
        expected: u64,
        /// Events actually decoded.
        decoded: u64,
    },
    /// The header declared a trace name longer than the decoder's sanity
    /// cap — corrupt input rather than a plausible name.
    NameTooLong {
        /// The declared length in bytes.
        declared: u64,
        /// The decoder's cap in bytes.
        limit: u64,
    },
    /// A text-format line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "bad trace magic {found:?}, expected \"SDBT\"")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            TraceError::TruncatedVarint => f.write_str("truncated or overlong varint"),
            TraceError::TruncatedEvents { expected, decoded } => write!(
                f,
                "trace payload truncated: expected {expected} events, decoded {decoded}"
            ),
            TraceError::NameTooLong { declared, limit } => write!(
                f,
                "declared trace name length {declared} exceeds the {limit}-byte cap"
            ),
            TraceError::Parse { line, message } => {
                write!(f, "text trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_informative() {
        let e = TraceError::BadMagic { found: *b"XXXX" };
        assert!(e.to_string().contains("SDBT"));
        let e = TraceError::UnsupportedVersion { found: 9 };
        assert!(e.to_string().contains('9'));
        let e = TraceError::TruncatedEvents {
            expected: 10,
            decoded: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
        let e = TraceError::Parse {
            line: 7,
            message: "bad outcome".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error as _;
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e = TraceError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("eof"));
    }
}
