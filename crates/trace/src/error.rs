//! Error type for trace I/O.

use std::fmt;
use std::io;
use std::num::ParseIntError;

/// Errors produced while encoding or decoding traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input did not start with the expected magic bytes.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not supported by this build.
    UnsupportedVersion {
        /// The version actually found.
        found: u16,
    },
    /// A varint ran past the end of the input or exceeded 64 bits.
    TruncatedVarint,
    /// The payload ended before the declared number of events.
    TruncatedEvents {
        /// Events promised by the header.
        expected: u64,
        /// Events actually decoded.
        decoded: u64,
    },
    /// The header declared a trace name longer than the decoder's sanity
    /// cap — corrupt input rather than a plausible name.
    NameTooLong {
        /// The declared length in bytes.
        declared: u64,
        /// The decoder's cap in bytes.
        limit: u64,
    },
    /// A line of a text-format trace is not a well-formed record.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What exactly was malformed.
        kind: RecordError,
    },
    /// No importer recognized the input (see [`crate::import::autodetect`]).
    UnknownFormat {
        /// The first bytes of the input, for the error message.
        prefix: Vec<u8>,
    },
}

/// What was wrong with a single text-format record line.
///
/// Field-level variants carry the offending token, and numeric ones chain
/// the underlying [`ParseIntError`] through
/// [`source()`](std::error::Error::source) — the same taxonomy the
/// artifacts-store errors follow.
#[derive(Debug)]
pub enum RecordError {
    /// The line has no pc field.
    MissingPc,
    /// The pc field is not valid hexadecimal.
    BadPc {
        /// The token as written.
        text: String,
        /// The integer-parse failure.
        source: ParseIntError,
    },
    /// The line has a pc but no outcome field.
    MissingOutcome,
    /// The outcome field is not one of the accepted direction tokens.
    BadOutcome {
        /// The token as written.
        text: String,
    },
    /// The gap field is not a decimal `u32`.
    BadGap {
        /// The token as written.
        text: String,
        /// The integer-parse failure.
        source: ParseIntError,
    },
    /// The line has extra fields after the record.
    TrailingField {
        /// The first unexpected token.
        text: String,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::MissingPc => f.write_str("missing pc field"),
            RecordError::BadPc { text, source } => write!(f, "bad pc '{text}': {source}"),
            RecordError::MissingOutcome => f.write_str("missing outcome field"),
            RecordError::BadOutcome { text } => {
                write!(f, "bad outcome '{text}', expected T or N")
            }
            RecordError::BadGap { text, source } => write!(f, "bad gap '{text}': {source}"),
            RecordError::TrailingField { text } => {
                write!(f, "unexpected trailing field '{text}'")
            }
        }
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordError::BadPc { source, .. } | RecordError::BadGap { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "bad trace magic {found:?}, expected \"SDBT\"")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            TraceError::TruncatedVarint => f.write_str("truncated or overlong varint"),
            TraceError::TruncatedEvents { expected, decoded } => write!(
                f,
                "trace payload truncated: expected {expected} events, decoded {decoded}"
            ),
            TraceError::NameTooLong { declared, limit } => write!(
                f,
                "declared trace name length {declared} exceeds the {limit}-byte cap"
            ),
            TraceError::BadRecord { line, kind } => {
                write!(f, "text trace parse error at line {line}: {kind}")
            }
            TraceError::UnknownFormat { prefix } => {
                write!(
                    f,
                    "unrecognized trace format (input starts with {prefix:?})"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::BadRecord { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_informative() {
        let e = TraceError::BadMagic { found: *b"XXXX" };
        assert!(e.to_string().contains("SDBT"));
        let e = TraceError::UnsupportedVersion { found: 9 };
        assert!(e.to_string().contains('9'));
        let e = TraceError::TruncatedEvents {
            expected: 10,
            decoded: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
        let e = TraceError::BadRecord {
            line: 7,
            kind: RecordError::BadOutcome { text: "X".into() },
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("'X'"));
        let e = TraceError::UnknownFormat {
            prefix: b"\x7fELF".to_vec(),
        };
        assert!(e.to_string().contains("unrecognized"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error as _;
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e = TraceError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("eof"));
    }

    #[test]
    fn record_errors_chain_the_parse_failure() {
        use std::error::Error as _;
        let parse_err = "zz".parse::<u32>().unwrap_err();
        let e = TraceError::BadRecord {
            line: 3,
            kind: RecordError::BadGap {
                text: "zz".into(),
                source: parse_err,
            },
        };
        // BadRecord -> RecordError -> ParseIntError, matching the artifacts
        // error taxonomy where every wrapper exposes its cause.
        let kind = e.source().expect("BadRecord chains its kind");
        assert!(kind.source().is_some(), "kind chains the ParseIntError");
        let e = TraceError::BadRecord {
            line: 1,
            kind: RecordError::MissingOutcome,
        };
        assert!(e.source().expect("kind").source().is_none());
    }
}
