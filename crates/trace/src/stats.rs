//! Per-site and whole-trace statistics.
//!
//! [`TraceStats`] accumulates, per static branch site, execution and taken
//! counts, from which it derives the paper's characterization numbers:
//!
//! * *bias* of a branch — `max(taken, not-taken) / executed` (§4),
//! * dynamic CBRs/KI (Table 1),
//! * the dynamic fraction of highly biased branches (Table 2),
//! * the train-vs-ref behavioral comparison (Table 5) via
//!   [`TraceStats::compare`].

use crate::event::{BranchAddr, BranchEvent};
use crate::source::BranchSource;
use std::collections::HashMap;

/// Execution statistics of one static branch site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteStats {
    /// Times the branch was executed.
    pub executed: u64,
    /// Times it was taken.
    pub taken: u64,
}

impl SiteStats {
    /// Fraction of executions that were taken; `0.0` if never executed.
    pub fn taken_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.taken as f64 / self.executed as f64
        }
    }

    /// The paper's *bias*: `max(taken-bias, not-taken-bias)`.
    ///
    /// Ranges over `[0.5, 1.0]` for executed branches; `0.0` if never
    /// executed.
    pub fn bias(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            let t = self.taken_rate();
            t.max(1.0 - t)
        }
    }

    /// The majority direction: `true` when the branch is taken at least half
    /// the time.
    pub fn majority_taken(&self) -> bool {
        2 * self.taken >= self.executed
    }

    /// Merges another site's counts into this one.
    pub fn merge(&mut self, other: &SiteStats) {
        self.executed += other.executed;
        self.taken += other.taken;
    }
}

/// Aggregate statistics over a branch stream.
///
/// # Examples
///
/// ```
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource, TraceStats};
///
/// let events = [
///     BranchEvent::new(BranchAddr(0x10), true, 9),
///     BranchEvent::new(BranchAddr(0x10), true, 9),
///     BranchEvent::new(BranchAddr(0x20), false, 9),
/// ];
/// let stats = TraceStats::from_source(SliceSource::new(&events));
/// assert_eq!(stats.static_branches(), 2);
/// assert_eq!(stats.dynamic_branches(), 3);
/// assert_eq!(stats.site(BranchAddr(0x10)).unwrap().taken, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    sites: HashMap<BranchAddr, SiteStats>,
    dynamic_branches: u64,
    total_instructions: u64,
}

impl TraceStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one event.
    pub fn record(&mut self, event: &BranchEvent) {
        let site = self.sites.entry(event.pc).or_default();
        site.executed += 1;
        site.taken += u64::from(event.taken);
        self.dynamic_branches += 1;
        self.total_instructions += event.instructions();
    }

    /// Consumes a whole source.
    pub fn from_source<S: BranchSource>(mut source: S) -> Self {
        let mut stats = Self::new();
        while let Some(e) = source.next_event() {
            stats.record(&e);
        }
        stats
    }

    /// Number of distinct static branch sites observed.
    pub fn static_branches(&self) -> usize {
        self.sites.len()
    }

    /// Number of dynamic branch executions observed.
    pub fn dynamic_branches(&self) -> u64 {
        self.dynamic_branches
    }

    /// Total retired instructions observed.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Dynamic conditional branches per thousand instructions.
    pub fn cbrs_per_ki(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.dynamic_branches as f64 * 1000.0 / self.total_instructions as f64
        }
    }

    /// Statistics of one site, if it was observed.
    pub fn site(&self, pc: BranchAddr) -> Option<&SiteStats> {
        self.sites.get(&pc)
    }

    /// Iterates over `(pc, stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchAddr, &SiteStats)> {
        self.sites.iter().map(|(pc, s)| (*pc, s))
    }

    /// Fraction of *dynamic* branch executions attributable to sites whose
    /// bias exceeds `cutoff` (the Table 2 "highly biased" metric).
    pub fn dynamic_fraction_biased(&self, cutoff: f64) -> f64 {
        if self.dynamic_branches == 0 {
            return 0.0;
        }
        let biased: u64 = self
            .sites
            .values()
            .filter(|s| s.bias() > cutoff)
            .map(|s| s.executed)
            .sum();
        biased as f64 / self.dynamic_branches as f64
    }

    /// Fraction of *static* sites whose bias exceeds `cutoff`.
    pub fn static_fraction_biased(&self, cutoff: f64) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let biased = self.sites.values().filter(|s| s.bias() > cutoff).count();
        biased as f64 / self.sites.len() as f64
    }

    /// Compares `self` (the *reference* run) against a *training* run,
    /// producing the paper's Table 5 cross-input statistics.
    pub fn compare(&self, train: &TraceStats) -> BehaviorComparison {
        let mut cmp = BehaviorComparison::default();
        for (pc, ref_site) in self.sites.iter() {
            cmp.ref_static += 1;
            cmp.ref_dynamic += ref_site.executed;
            let Some(train_site) = train.sites.get(pc) else {
                continue;
            };
            cmp.common_static += 1;
            cmp.common_dynamic += ref_site.executed;
            if train_site.majority_taken() != ref_site.majority_taken() {
                cmp.direction_change_static += 1;
                cmp.direction_change_dynamic += ref_site.executed;
            }
            let delta = (train_site.taken_rate() - ref_site.taken_rate()).abs();
            if delta < 0.05 {
                cmp.bias_change_small_static += 1;
                cmp.bias_change_small_dynamic += ref_site.executed;
            }
            if delta > 0.50 {
                cmp.bias_change_large_static += 1;
                cmp.bias_change_large_dynamic += ref_site.executed;
            }
        }
        cmp
    }
}

impl Extend<BranchEvent> for TraceStats {
    fn extend<T: IntoIterator<Item = BranchEvent>>(&mut self, iter: T) {
        for e in iter {
            self.record(&e);
        }
    }
}

/// Train-vs-ref behavioral statistics (the paper's Table 5).
///
/// All `*_static` fields count static sites seen in the reference run; the
/// matching `*_dynamic` fields weight them by reference-run execution counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BehaviorComparison {
    /// Static sites in the reference run.
    pub ref_static: u64,
    /// Dynamic executions in the reference run.
    pub ref_dynamic: u64,
    /// Sites executed under both inputs ("coverage").
    pub common_static: u64,
    /// Reference executions of covered sites.
    pub common_dynamic: u64,
    /// Covered sites whose majority direction flipped.
    pub direction_change_static: u64,
    /// Reference executions of direction-flipped sites.
    pub direction_change_dynamic: u64,
    /// Covered sites whose taken-rate moved by less than 5 percentage points.
    pub bias_change_small_static: u64,
    /// Reference executions of small-change sites.
    pub bias_change_small_dynamic: u64,
    /// Covered sites whose taken-rate moved by more than 50 points.
    pub bias_change_large_static: u64,
    /// Reference executions of large-change sites.
    pub bias_change_large_dynamic: u64,
}

impl BehaviorComparison {
    /// Static coverage: fraction of reference sites also seen in training.
    pub fn coverage_static(&self) -> f64 {
        ratio(self.common_static, self.ref_static)
    }

    /// Dynamic coverage: fraction of reference executions covered.
    pub fn coverage_dynamic(&self) -> f64 {
        ratio(self.common_dynamic, self.ref_dynamic)
    }

    /// Fraction of covered sites that flipped majority direction.
    pub fn direction_change_rate_static(&self) -> f64 {
        ratio(self.direction_change_static, self.common_static)
    }

    /// Execution-weighted fraction that flipped majority direction.
    pub fn direction_change_rate_dynamic(&self) -> f64 {
        ratio(self.direction_change_dynamic, self.common_dynamic)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SliceSource;

    fn ev(pc: u64, taken: bool) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), taken, 9)
    }

    #[test]
    fn site_stats_bias_definition() {
        let s = SiteStats {
            executed: 100,
            taken: 95,
        };
        assert!((s.bias() - 0.95).abs() < 1e-12);
        assert!(s.majority_taken());
        let s = SiteStats {
            executed: 100,
            taken: 5,
        };
        assert!((s.bias() - 0.95).abs() < 1e-12);
        assert!(!s.majority_taken());
        let s = SiteStats::default();
        assert_eq!(s.bias(), 0.0);
    }

    #[test]
    fn site_merge_adds_counts() {
        let mut a = SiteStats {
            executed: 10,
            taken: 4,
        };
        a.merge(&SiteStats {
            executed: 5,
            taken: 5,
        });
        assert_eq!(a.executed, 15);
        assert_eq!(a.taken, 9);
    }

    #[test]
    fn accumulates_per_site() {
        let events = [ev(0x10, true), ev(0x10, false), ev(0x20, true)];
        let stats = TraceStats::from_source(SliceSource::new(&events));
        assert_eq!(stats.static_branches(), 2);
        assert_eq!(stats.dynamic_branches(), 3);
        assert_eq!(stats.total_instructions(), 30);
        let site = stats.site(BranchAddr(0x10)).unwrap();
        assert_eq!(site.executed, 2);
        assert_eq!(site.taken, 1);
        assert!(stats.site(BranchAddr(0x99)).is_none());
    }

    #[test]
    fn cbrs_per_ki_matches_gap() {
        // gap 9 → 10 instructions per branch → 100 CBRs/KI.
        let events: Vec<BranchEvent> = (0..100).map(|i| ev(i * 4, true)).collect();
        let stats = TraceStats::from_source(SliceSource::new(&events));
        assert!((stats.cbrs_per_ki() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn biased_fractions() {
        // Site A: 100% taken, hot (3 execs). Site B: 50/50, cold (2 execs).
        let events = [
            ev(0xa, true),
            ev(0xa, true),
            ev(0xa, true),
            ev(0xb, true),
            ev(0xb, false),
        ];
        let stats = TraceStats::from_source(SliceSource::new(&events));
        assert!((stats.dynamic_fraction_biased(0.95) - 0.6).abs() < 1e-12);
        assert!((stats.static_fraction_biased(0.95) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = TraceStats::new();
        assert_eq!(stats.cbrs_per_ki(), 0.0);
        assert_eq!(stats.dynamic_fraction_biased(0.9), 0.0);
        assert_eq!(stats.static_fraction_biased(0.9), 0.0);
    }

    #[test]
    fn comparison_detects_direction_flips_and_coverage() {
        // Training run: site 0x10 mostly taken; site 0x20 mostly taken.
        let train_events = [
            ev(0x10, true),
            ev(0x10, true),
            ev(0x20, true),
            ev(0x20, true),
        ];
        let train = TraceStats::from_source(SliceSource::new(&train_events));
        // Reference run: 0x10 unchanged, 0x20 flips, 0x30 is new.
        let ref_events = [
            ev(0x10, true),
            ev(0x10, true),
            ev(0x20, false),
            ev(0x20, false),
            ev(0x30, true),
        ];
        let reference = TraceStats::from_source(SliceSource::new(&ref_events));
        let cmp = reference.compare(&train);
        assert_eq!(cmp.ref_static, 3);
        assert_eq!(cmp.common_static, 2);
        assert_eq!(cmp.direction_change_static, 1);
        assert!((cmp.coverage_static() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cmp.coverage_dynamic() - 4.0 / 5.0).abs() < 1e-12);
        assert!((cmp.direction_change_rate_static() - 0.5).abs() < 1e-12);
        // 0x20's taken rate moved from 1.0 to 0.0: a large change.
        assert_eq!(cmp.bias_change_large_static, 1);
        // 0x10 is unchanged: a small change.
        assert_eq!(cmp.bias_change_small_static, 1);
    }

    #[test]
    fn extend_accumulates() {
        let mut stats = TraceStats::new();
        stats.extend([ev(0x1, true), ev(0x1, true)]);
        assert_eq!(stats.dynamic_branches(), 2);
    }
}
