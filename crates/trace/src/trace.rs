//! In-memory branch traces.

use crate::event::BranchEvent;
use std::fmt;

/// Metadata accompanying a [`Trace`].
///
/// `total_instructions` counts every retired instruction — branch and
/// non-branch alike — which is the denominator of the paper's MISPs/KI
/// metric.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Total retired instructions represented by the trace.
    pub total_instructions: u64,
    /// Free-form name of the originating workload (e.g. `"gcc.train"`).
    pub name: String,
}

impl TraceMeta {
    /// Creates metadata with a name and zero instructions.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            total_instructions: 0,
            name: name.into(),
        }
    }
}

/// An in-memory sequence of branch events plus metadata.
///
/// For multi-million-event workloads prefer streaming through
/// [`crate::BranchSource`]; `Trace` exists for tests, codecs, small
/// experiments, and external trace files.
///
/// # Examples
///
/// ```
/// use sdbp_trace::{BranchAddr, BranchEvent, Trace, TraceBuilder};
///
/// let mut b = TraceBuilder::named("demo");
/// for i in 0..4u64 {
///     b.push(BranchEvent::new(BranchAddr(0x100 + 4 * i), i % 2 == 0, 2));
/// }
/// let t: Trace = b.finish();
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.meta().name, "demo");
/// assert_eq!(t.iter().filter(|e| e.taken).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    meta: TraceMeta,
    events: Vec<BranchEvent>,
}

impl Trace {
    /// Creates a trace from parts.
    ///
    /// Most callers should use [`TraceBuilder`], which keeps
    /// `total_instructions` consistent with the events automatically.
    pub fn from_parts(meta: TraceMeta, events: Vec<BranchEvent>) -> Self {
        Self { meta, events }
    }

    /// The metadata block.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Number of branch events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events as a slice.
    pub fn events(&self) -> &[BranchEvent] {
        &self.events
    }

    /// Iterates over events by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchEvent> {
        self.events.iter()
    }

    /// A deterministic content digest over the metadata and every event —
    /// the identity a durable artifact store files this trace (and things
    /// derived from it) under. Two traces digest equal iff they would
    /// replay identically.
    pub fn digest(&self) -> sdbp_artifacts::Digest {
        let mut h = sdbp_artifacts::Hasher::new();
        h.write_str("sdbp-trace");
        h.write_str(&self.meta.name);
        h.write_u64(self.meta.total_instructions);
        h.write_u64(self.events.len() as u64);
        for e in &self.events {
            h.write_u64(e.pc.0);
            h.write_u64(((e.gap as u64) << 1) | e.taken as u64);
        }
        h.finish()
    }

    /// Dynamic conditional branches per thousand instructions (the paper's
    /// CBRs/KI characterization metric). Returns `0.0` for an empty trace.
    pub fn cbrs_per_ki(&self) -> f64 {
        if self.meta.total_instructions == 0 {
            0.0
        } else {
            self.events.len() as f64 * 1000.0 / self.meta.total_instructions as f64
        }
    }
}

impl IntoIterator for Trace {
    type Item = BranchEvent;
    type IntoIter = std::vec::IntoIter<BranchEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchEvent;
    type IntoIter = std::slice::Iter<'a, BranchEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace '{}': {} branches, {} instructions",
            self.meta.name,
            self.events.len(),
            self.meta.total_instructions
        )
    }
}

/// Incrementally builds a [`Trace`], keeping instruction accounting in sync.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    meta: TraceMeta,
    events: Vec<BranchEvent>,
}

impl TraceBuilder {
    /// Creates an empty builder with an empty name.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with a workload name.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            meta: TraceMeta::named(name),
            events: Vec::new(),
        }
    }

    /// Appends one event, accumulating its instruction count.
    pub fn push(&mut self, event: BranchEvent) -> &mut Self {
        self.meta.total_instructions += event.instructions();
        self.events.push(event);
        self
    }

    /// Number of events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been pushed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalizes the trace.
    pub fn finish(self) -> Trace {
        Trace {
            meta: self.meta,
            events: self.events,
        }
    }
}

impl Extend<BranchEvent> for TraceBuilder {
    fn extend<T: IntoIterator<Item = BranchEvent>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

impl FromIterator<BranchEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = BranchEvent>>(iter: T) -> Self {
        let mut b = TraceBuilder::new();
        b.extend(iter);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BranchAddr;

    fn ev(pc: u64, taken: bool, gap: u32) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), taken, gap)
    }

    #[test]
    fn builder_accumulates_instructions() {
        let mut b = TraceBuilder::new();
        b.push(ev(0x100, true, 9)).push(ev(0x104, false, 0));
        let t = b.finish();
        assert_eq!(t.meta().total_instructions, 11);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.cbrs_per_ki(), 0.0);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn cbrs_per_ki_matches_definition() {
        // 10 branches, each preceded by 99 non-branch instructions:
        // 1000 instructions total, so 10 CBRs/KI.
        let t: Trace = (0..10).map(|i| ev(0x200 + 4 * i, true, 99)).collect();
        assert!((t.cbrs_per_ki() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_and_into_iterator_roundtrip() {
        let events = vec![ev(0, true, 1), ev(4, false, 2), ev(8, true, 3)];
        let t: Trace = events.iter().copied().collect();
        let back: Vec<BranchEvent> = t.clone().into_iter().collect();
        assert_eq!(back, events);
        let refs: Vec<&BranchEvent> = (&t).into_iter().collect();
        assert_eq!(refs.len(), 3);
    }

    #[test]
    fn digest_separates_traces_and_is_stable() {
        let a: Trace = vec![ev(0, true, 1), ev(4, false, 2)].into_iter().collect();
        assert_eq!(a.digest(), a.clone().digest());
        // Any change — direction, gap, pc, or name — moves the digest.
        let flipped: Trace = vec![ev(0, false, 1), ev(4, false, 2)].into_iter().collect();
        assert_ne!(a.digest(), flipped.digest());
        let renamed = Trace::from_parts(TraceMeta::named("other"), a.events().to_vec());
        assert_ne!(a.digest(), renamed.digest());
    }

    #[test]
    fn display_mentions_name_and_counts() {
        let mut b = TraceBuilder::named("gcc.train");
        b.push(ev(0, true, 0));
        let t = b.finish();
        let s = t.to_string();
        assert!(s.contains("gcc.train"));
        assert!(s.contains("1 branches"));
    }
}
