//! Branch trace model for the `sdbp` simulation stack.
//!
//! The original study (Patil & Emer, HPCA 2000) instrumented Alpha binaries
//! with Atom and fed every executed conditional branch into a predictor
//! simulator. This crate is the equivalent substrate: it defines the **branch
//! event** observed by predictors — program counter, taken/not-taken outcome,
//! and the number of non-branch instructions retired since the previous
//! conditional branch — along with:
//!
//! * [`Trace`] / [`TraceBuilder`] — an in-memory trace with metadata,
//! * [`BranchSource`] — a streaming abstraction so multi-billion-instruction
//!   workloads never have to be materialized,
//! * [`codec`] — a compact varint binary format and a line-oriented text
//!   format for interchange with external tools,
//! * [`import`] — format autodetection and bounded-memory streaming
//!   importers (native binary, sdbp text, `perf script` branch records), so
//!   externally captured traces flow through the same [`BranchSource`]
//!   front door as the synthetic generators,
//! * [`stats`] — per-site and whole-trace statistics (bias, CBRs/KI, …) that
//!   feed both the profile database and the paper's Table 1 / Table 5.
//!
//! # Examples
//!
//! ```
//! use sdbp_trace::{BranchAddr, BranchEvent, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! b.push(BranchEvent::new(BranchAddr(0x1000), true, 7));
//! b.push(BranchEvent::new(BranchAddr(0x1040), false, 3));
//! let trace = b.finish();
//! assert_eq!(trace.len(), 2);
//! // 2 branches + 10 interleaved non-branch instructions.
//! assert_eq!(trace.meta().total_instructions, 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod import;
pub mod source;
pub mod stats;
pub mod trace;

mod error;

pub use codec::{read_binary, read_text, write_binary, write_text};
pub use error::{RecordError, TraceError};
pub use event::{BranchAddr, BranchEvent, Outcome};
pub use import::{
    autodetect, import_trace, open_path, scan_path, write_perf_text, ImportStream, TraceFormat,
    TraceImporter, TraceScan,
};
pub use source::{
    BranchSource, InterleaveSource, IterSource, SampleSource, SkipSource, SliceSource, TakeSource,
    TeeSource,
};
pub use stats::{SiteStats, TraceStats};
pub use trace::{Trace, TraceBuilder, TraceMeta};
