//! Trace serialization.
//!
//! Two interchange formats:
//!
//! * **binary** ([`write_binary`] / [`read_binary`]) — compact
//!   varint-delta encoding, the native on-disk format,
//! * **text** ([`write_text`] / [`read_text`]) — one branch per line
//!   (`<hex pc> T|N <gap>`), easy to produce from external tracers such as
//!   Pin/DynamoRIO scripts or `perf` post-processing.
//!
//! Both formats round-trip a [`crate::Trace`] exactly, including metadata.

pub(crate) mod binary;
pub(crate) mod text;

pub use binary::{read_binary, write_binary};
pub use text::{read_text, write_text};

pub(crate) mod varint {
    //! LEB128-style unsigned varint primitives shared by the binary codec.

    use crate::error::TraceError;
    use std::io::{Read, Write};

    /// Writes `value` as a little-endian base-128 varint.
    pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> std::io::Result<()> {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                w.write_all(&[byte])?;
                return Ok(());
            }
            w.write_all(&[byte | 0x80])?;
        }
    }

    /// Reads a varint written by [`write_u64`].
    ///
    /// # Errors
    ///
    /// [`TraceError::TruncatedVarint`] if input ends mid-varint or the value
    /// would exceed 64 bits; [`TraceError::Io`] on other read failures.
    pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            match r.read_exact(&mut byte) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    return Err(TraceError::TruncatedVarint)
                }
                Err(e) => return Err(TraceError::Io(e)),
            }
            let b = byte[0];
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(TraceError::TruncatedVarint);
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn roundtrip(v: u64) -> u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            read_u64(&mut &buf[..]).unwrap()
        }

        #[test]
        fn roundtrips_edge_values() {
            for v in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
                assert_eq!(roundtrip(v), v);
            }
        }

        #[test]
        fn small_values_are_one_byte() {
            let mut buf = Vec::new();
            write_u64(&mut buf, 127).unwrap();
            assert_eq!(buf.len(), 1);
        }

        #[test]
        fn truncated_input_is_detected() {
            let buf = [0x80u8, 0x80];
            assert!(matches!(
                read_u64(&mut &buf[..]),
                Err(TraceError::TruncatedVarint)
            ));
        }

        #[test]
        fn overlong_input_is_rejected() {
            // Eleven continuation bytes exceed 64 bits of payload.
            let buf = [0xffu8; 11];
            assert!(matches!(
                read_u64(&mut &buf[..]),
                Err(TraceError::TruncatedVarint)
            ));
        }
    }
}

#[cfg(test)]
mod proptests {
    use crate::event::{BranchAddr, BranchEvent};
    use crate::trace::{Trace, TraceBuilder};
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = BranchEvent> {
        (any::<u64>(), any::<bool>(), 0u32..100_000)
            .prop_map(|(pc, taken, gap)| BranchEvent::new(BranchAddr(pc), taken, gap))
    }

    fn arb_trace() -> impl Strategy<Value = Trace> {
        (
            proptest::collection::vec(arb_event(), 0..200),
            "[a-z.0-9]{0,16}",
        )
            .prop_map(|(events, name)| {
                let mut b = TraceBuilder::named(name);
                b.extend(events);
                b.finish()
            })
    }

    proptest! {
        #[test]
        fn binary_roundtrip(trace in arb_trace()) {
            let mut buf = Vec::new();
            super::write_binary(&mut buf, &trace).unwrap();
            let back = super::read_binary(&mut &buf[..]).unwrap();
            prop_assert_eq!(back, trace);
        }

        #[test]
        fn text_roundtrip(trace in arb_trace()) {
            let mut buf = Vec::new();
            super::write_text(&mut buf, &trace).unwrap();
            let back = super::read_text(&mut &buf[..]).unwrap();
            prop_assert_eq!(back.events(), trace.events());
            prop_assert_eq!(
                back.meta().total_instructions,
                trace.meta().total_instructions
            );
        }

        #[test]
        fn binary_is_compact(trace in arb_trace()) {
            // Sanity bound: header + at most ~20 bytes per event.
            let mut buf = Vec::new();
            super::write_binary(&mut buf, &trace).unwrap();
            prop_assert!(buf.len() <= 64 + trace.meta().name.len() + 20 * trace.len());
        }
    }
}
