//! Compact binary trace format.
//!
//! Layout (all multi-byte integers are varints unless noted):
//!
//! ```text
//! magic    : 4 bytes  "SDBT"
//! version  : u16 little-endian (currently 1)
//! name_len : varint, then that many UTF-8 bytes
//! events   : varint count
//! instrs   : varint total_instructions
//! per event:
//!   pc_zig : varint zig-zag delta of pc from the previous event's pc
//!   packed : varint ((gap << 1) | taken)
//! ```
//!
//! PC deltas are zig-zag encoded because consecutive branches are usually
//! close together in the address space, so deltas are small in magnitude but
//! signed; packing `taken` into the gap word saves one byte per event.
//!
//! The decode path is split into [`read_header`] and [`EventDecoder`] so the
//! streaming importer in [`crate::import`] can drive the same decoder one
//! event at a time in bounded memory; [`read_binary`] is the materializing
//! wrapper.

use super::varint;
use crate::error::TraceError;
use crate::event::{BranchAddr, BranchEvent};
use crate::trace::{Trace, TraceMeta};
use std::io::{Read, Write};

/// The 4-byte magic prefix of the binary format, shared with format
/// autodetection in [`crate::import`].
pub(crate) const MAGIC: [u8; 4] = *b"SDBT";
const VERSION: u16 = 1;
/// Sanity cap on the declared trace-name length, far above any real name.
const MAX_NAME_LEN: u64 = 64 * 1024;

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The decoded fixed header of a binary trace.
#[derive(Debug, Clone)]
pub(crate) struct BinaryHeader {
    /// The embedded trace name (may be empty).
    pub name: String,
    /// Number of events the payload promises.
    pub events: u64,
    /// Total retired instructions recorded at encode time.
    pub total_instructions: u64,
}

/// Reads and validates the magic, version, and metadata fields, leaving the
/// reader positioned at the first event record.
pub(crate) fn read_header<R: Read>(r: &mut R) -> Result<BinaryHeader, TraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic { found: magic });
    }
    let mut version = [0u8; 2];
    r.read_exact(&mut version)?;
    let version = u16::from_le_bytes(version);
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion { found: version });
    }
    let name_len = varint::read_u64(r)?;
    // A corrupt length here would otherwise drive an arbitrarily large
    // allocation before read_exact ever touches the payload.
    if name_len > MAX_NAME_LEN {
        return Err(TraceError::NameTooLong {
            declared: name_len,
            limit: MAX_NAME_LEN,
        });
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    r.read_exact(&mut name_bytes)?;
    let name = String::from_utf8_lossy(&name_bytes).into_owned();
    let events = varint::read_u64(r)?;
    let total_instructions = varint::read_u64(r)?;
    Ok(BinaryHeader {
        name,
        events,
        total_instructions,
    })
}

/// Incremental decoder for the per-event records following the header.
///
/// Holds the pc-delta chain state so events can be pulled one at a time in
/// bounded memory.
#[derive(Debug, Default, Clone)]
pub(crate) struct EventDecoder {
    prev_pc: u64,
    decoded: u64,
}

impl EventDecoder {
    /// Events successfully decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Decodes the next event record, given the header's promised count.
    ///
    /// A varint cut off mid-event is reported as
    /// [`TraceError::TruncatedEvents`] carrying how far the decode got.
    pub fn next<R: Read>(&mut self, r: &mut R, expected: u64) -> Result<BranchEvent, TraceError> {
        let delta = match varint::read_u64(r) {
            Ok(v) => zigzag_decode(v),
            Err(TraceError::TruncatedVarint) => {
                return Err(TraceError::TruncatedEvents {
                    expected,
                    decoded: self.decoded,
                })
            }
            Err(e) => return Err(e),
        };
        let packed = match varint::read_u64(r) {
            Ok(v) => v,
            Err(TraceError::TruncatedVarint) => {
                return Err(TraceError::TruncatedEvents {
                    expected,
                    decoded: self.decoded,
                })
            }
            Err(e) => return Err(e),
        };
        let pc = self.prev_pc.wrapping_add(delta as u64);
        let taken = packed & 1 == 1;
        let gap = (packed >> 1) as u32;
        self.prev_pc = pc;
        self.decoded += 1;
        Ok(BranchEvent::new(BranchAddr(pc), taken, gap))
    }
}

/// Writes `trace` in the binary format.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
///
/// # Examples
///
/// ```
/// use sdbp_trace::{read_binary, write_binary, BranchAddr, BranchEvent, TraceBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TraceBuilder::named("tiny");
/// b.push(BranchEvent::new(BranchAddr(0x1000), true, 5));
/// let trace = b.finish();
///
/// let mut buf = Vec::new();
/// write_binary(&mut buf, &trace)?;
/// let back = read_binary(&mut &buf[..])?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_binary<W: Write>(w: &mut W, trace: &Trace) -> Result<(), TraceError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let name = trace.meta().name.as_bytes();
    varint::write_u64(w, name.len() as u64)?;
    w.write_all(name)?;
    varint::write_u64(w, trace.len() as u64)?;
    varint::write_u64(w, trace.meta().total_instructions)?;
    let mut prev_pc = 0u64;
    for e in trace.iter() {
        let delta = e.pc.0.wrapping_sub(prev_pc) as i64;
        varint::write_u64(w, zigzag_encode(delta))?;
        varint::write_u64(w, (u64::from(e.gap) << 1) | u64::from(e.taken))?;
        prev_pc = e.pc.0;
    }
    Ok(())
}

/// Reads a trace written by [`write_binary`].
///
/// # Errors
///
/// * [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] for
///   foreign input,
/// * [`TraceError::TruncatedVarint`] / [`TraceError::TruncatedEvents`] for
///   cut-off payloads,
/// * [`TraceError::Io`] for underlying reader failures.
pub fn read_binary<R: Read>(r: &mut R) -> Result<Trace, TraceError> {
    let header = read_header(r)?;
    let mut events = Vec::with_capacity(header.events.min(1 << 24) as usize);
    let mut decoder = EventDecoder::default();
    for _ in 0..header.events {
        events.push(decoder.next(r, header.events)?);
    }
    Ok(Trace::from_parts(
        TraceMeta {
            total_instructions: header.total_instructions,
            name: header.name,
        },
        events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::named("sample");
        b.push(BranchEvent::new(BranchAddr(0x12000), true, 6));
        b.push(BranchEvent::new(BranchAddr(0x12010), false, 2));
        b.push(BranchEvent::new(BranchAddr(0x11ff0), true, 0));
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        let back = read_binary(&mut &buf[..]).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::default();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        let back = read_binary(&mut &buf[..]).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn zigzag_is_involutive() {
        for v in [-1i64, 0, 1, i64::MIN, i64::MAX, -123456, 123456] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPE\x01\x00".to_vec();
        assert!(matches!(
            read_binary(&mut &buf[..]),
            Err(TraceError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample_trace()).unwrap();
        buf[4] = 99; // corrupt the version field
        assert!(matches!(
            read_binary(&mut &buf[..]),
            Err(TraceError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn absurd_name_length_is_rejected_without_allocating() {
        // Header with a name length claiming ~4 GB: must error out, not
        // attempt the allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        varint::write_u64(&mut buf, u64::from(u32::MAX)).unwrap();
        assert!(matches!(
            read_binary(&mut &buf[..]),
            Err(TraceError::NameTooLong {
                declared,
                limit: MAX_NAME_LEN,
            }) if declared == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn truncated_payload_is_reported() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample_trace()).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(&mut &buf[..]).unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::TruncatedEvents { .. } | TraceError::TruncatedVarint
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn delta_encoding_is_compact_for_local_branches() {
        // 1000 branches within one 4KB page should encode in ~2-3 bytes each.
        let mut b = TraceBuilder::new();
        for i in 0..1000u64 {
            b.push(BranchEvent::new(
                BranchAddr(0x40_0000 + 4 * (i % 256)),
                i % 3 == 0,
                4,
            ));
        }
        let trace = b.finish();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        assert!(
            buf.len() < 4 * trace.len(),
            "encoded {} bytes for {} events",
            buf.len(),
            trace.len()
        );
    }
}
