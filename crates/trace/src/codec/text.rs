//! Line-oriented text trace format.
//!
//! ```text
//! # comment lines and blank lines are ignored
//! !name gcc.train          (optional metadata directive)
//! 12000 T 6                (hex pc, T/N outcome, decimal gap)
//! 12010 N 2
//! 11ff0 T                  (gap defaults to 0)
//! ```
//!
//! This is the interchange format for feeding externally collected branch
//! traces (from Pin, DynamoRIO, QEMU plugins, …) into the simulator.

use crate::error::{RecordError, TraceError};
use crate::event::{BranchAddr, BranchEvent};
use crate::trace::{Trace, TraceBuilder};
use std::io::{BufRead, BufReader, Read, Write};

/// One meaningful line of a text-format trace.
pub(crate) enum ParsedLine {
    /// A branch record.
    Event(BranchEvent),
    /// A `!name` metadata directive.
    Name(String),
    /// A comment, blank line, or unknown directive.
    Nothing,
}

/// Parses the direction token shared by the sdbp text and perf adapters.
pub(crate) fn parse_direction(token: &str) -> Option<bool> {
    match token {
        "T" | "t" | "1" | "taken" => Some(true),
        "N" | "n" | "0" | "not-taken" => Some(false),
        _ => None,
    }
}

/// Parses `pc outcome [gap]` record fields from a token iterator.
///
/// Shared by the sdbp text codec (which feeds the whole line) and the perf
/// adapter (which feeds the tokens after the perf prefix).
pub(crate) fn parse_record_fields<'a>(
    mut parts: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<BranchEvent, TraceError> {
    let bad = |kind| TraceError::BadRecord { line: lineno, kind };
    let pc_text = parts.next().ok_or_else(|| bad(RecordError::MissingPc))?;
    let pc = u64::from_str_radix(pc_text.trim_start_matches("0x"), 16).map_err(|e| {
        bad(RecordError::BadPc {
            text: pc_text.to_string(),
            source: e,
        })
    })?;
    let outcome = parts
        .next()
        .ok_or_else(|| bad(RecordError::MissingOutcome))?;
    let taken = parse_direction(outcome).ok_or_else(|| {
        bad(RecordError::BadOutcome {
            text: outcome.to_string(),
        })
    })?;
    let gap = match parts.next() {
        Some(g) => g.parse::<u32>().map_err(|e| {
            bad(RecordError::BadGap {
                text: g.to_string(),
                source: e,
            })
        })?,
        None => 0,
    };
    if let Some(extra) = parts.next() {
        return Err(bad(RecordError::TrailingField {
            text: extra.to_string(),
        }));
    }
    Ok(BranchEvent::new(BranchAddr(pc), taken, gap))
}

/// Parses one line of the sdbp text format.
///
/// Unknown `!` directives are ignored so the format can grow.
pub(crate) fn parse_text_line(line: &str, lineno: usize) -> Result<ParsedLine, TraceError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(ParsedLine::Nothing);
    }
    if let Some(directive) = line.strip_prefix('!') {
        if let Some(n) = directive.strip_prefix("name ") {
            return Ok(ParsedLine::Name(n.trim().to_string()));
        }
        return Ok(ParsedLine::Nothing);
    }
    parse_record_fields(line.split_whitespace(), lineno).map(ParsedLine::Event)
}

/// Writes `trace` in the text format.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_text<W: Write>(w: &mut W, trace: &Trace) -> Result<(), TraceError> {
    if !trace.meta().name.is_empty() {
        writeln!(w, "!name {}", trace.meta().name)?;
    }
    for e in trace.iter() {
        writeln!(
            w,
            "{:x} {} {}",
            e.pc.0,
            if e.taken { 'T' } else { 'N' },
            e.gap
        )?;
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// Unknown `!` directives are ignored so the format can grow. The trace's
/// `total_instructions` is recomputed from the events.
///
/// # Errors
///
/// [`TraceError::BadRecord`] (with a line number and a typed
/// [`RecordError`]) for malformed lines and [`TraceError::Io`] for reader
/// failures.
///
/// # Examples
///
/// ```
/// use sdbp_trace::read_text;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "!name demo\n1000 T 4\n1008 N\n";
/// let trace = read_text(&mut text.as_bytes())?;
/// assert_eq!(trace.meta().name, "demo");
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.meta().total_instructions, 6, "gaps 4 and 0, plus two branches");
/// # Ok(())
/// # }
/// ```
pub fn read_text<R: Read>(r: &mut R) -> Result<Trace, TraceError> {
    let reader = BufReader::new(r);
    let mut builder = TraceBuilder::new();
    let mut name = String::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        match parse_text_line(&line, idx + 1)? {
            ParsedLine::Event(e) => {
                builder.push(e);
            }
            ParsedLine::Name(n) => name = n,
            ParsedLine::Nothing => {}
        }
    }
    let mut trace = builder.finish();
    if !name.is_empty() {
        let meta = crate::trace::TraceMeta {
            total_instructions: trace.meta().total_instructions,
            name,
        };
        trace = Trace::from_parts(meta, trace.into_iter().collect());
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn roundtrip_with_name() {
        let mut b = TraceBuilder::named("perl.ref");
        b.push(BranchEvent::new(BranchAddr(0xabc), true, 3));
        b.push(BranchEvent::new(BranchAddr(0xac0), false, 0));
        let trace = b.finish();
        let mut buf = Vec::new();
        write_text(&mut buf, &trace).unwrap();
        let back = read_text(&mut &buf[..]).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn comments_blanks_and_unknown_directives_are_ignored() {
        let text = "# header\n\n!future stuff\n10 T 1\n";
        let trace = read_text(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].pc, BranchAddr(0x10));
    }

    #[test]
    fn gap_defaults_to_zero_and_accepts_aliases() {
        let text = "10 t\n14 1 5\n18 0\n";
        let trace = read_text(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.events()[0].gap, 0);
        assert!(trace.events()[0].taken);
        assert!(trace.events()[1].taken);
        assert_eq!(trace.events()[1].gap, 5);
        assert!(!trace.events()[2].taken);
    }

    #[test]
    fn accepts_0x_prefixed_pcs() {
        let trace = read_text(&mut "0x1000 T 2\n".as_bytes()).unwrap();
        assert_eq!(trace.events()[0].pc, BranchAddr(0x1000));
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "10 T 1\nZZZ T 1\n";
        match read_text(&mut text.as_bytes()) {
            Err(TraceError::BadRecord {
                line: 2,
                kind: RecordError::BadPc { .. },
            }) => {}
            other => panic!("expected a bad-pc error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_outcome_and_trailing_fields() {
        assert!(matches!(
            read_text(&mut "10 X 1\n".as_bytes()),
            Err(TraceError::BadRecord {
                line: 1,
                kind: RecordError::BadOutcome { .. },
            })
        ));
        assert!(matches!(
            read_text(&mut "10 T 1 junk\n".as_bytes()),
            Err(TraceError::BadRecord {
                kind: RecordError::TrailingField { .. },
                ..
            })
        ));
        assert!(matches!(
            read_text(&mut "10\n".as_bytes()),
            Err(TraceError::BadRecord {
                kind: RecordError::MissingOutcome,
                ..
            })
        ));
        assert!(matches!(
            read_text(&mut "10 T 4294967296\n".as_bytes()),
            Err(TraceError::BadRecord {
                kind: RecordError::BadGap { .. },
                ..
            })
        ));
    }

    #[test]
    fn empty_input_is_an_empty_trace() {
        let trace = read_text(&mut "".as_bytes()).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.meta().total_instructions, 0);
    }
}
