//! Line-oriented text trace format.
//!
//! ```text
//! # comment lines and blank lines are ignored
//! !name gcc.train          (optional metadata directive)
//! 12000 T 6                (hex pc, T/N outcome, decimal gap)
//! 12010 N 2
//! 11ff0 T                  (gap defaults to 0)
//! ```
//!
//! This is the interchange format for feeding externally collected branch
//! traces (from Pin, DynamoRIO, QEMU plugins, …) into the simulator.

use crate::error::TraceError;
use crate::event::{BranchAddr, BranchEvent};
use crate::trace::{Trace, TraceBuilder};
use std::io::{BufRead, BufReader, Read, Write};

/// Writes `trace` in the text format.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_text<W: Write>(w: &mut W, trace: &Trace) -> Result<(), TraceError> {
    if !trace.meta().name.is_empty() {
        writeln!(w, "!name {}", trace.meta().name)?;
    }
    for e in trace.iter() {
        writeln!(
            w,
            "{:x} {} {}",
            e.pc.0,
            if e.taken { 'T' } else { 'N' },
            e.gap
        )?;
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// Unknown `!` directives are ignored so the format can grow. The trace's
/// `total_instructions` is recomputed from the events.
///
/// # Errors
///
/// [`TraceError::Parse`] (with a line number) for malformed lines and
/// [`TraceError::Io`] for reader failures.
///
/// # Examples
///
/// ```
/// use sdbp_trace::read_text;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "!name demo\n1000 T 4\n1008 N\n";
/// let trace = read_text(&mut text.as_bytes())?;
/// assert_eq!(trace.meta().name, "demo");
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.meta().total_instructions, 6, "gaps 4 and 0, plus two branches");
/// # Ok(())
/// # }
/// ```
pub fn read_text<R: Read>(r: &mut R) -> Result<Trace, TraceError> {
    let reader = BufReader::new(r);
    let mut builder = TraceBuilder::new();
    let mut name = String::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(directive) = line.strip_prefix('!') {
            if let Some(n) = directive.strip_prefix("name ") {
                name = n.trim().to_string();
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let pc_text = parts.next().ok_or_else(|| TraceError::Parse {
            line: lineno,
            message: "missing pc field".into(),
        })?;
        let pc = u64::from_str_radix(pc_text.trim_start_matches("0x"), 16).map_err(|e| {
            TraceError::Parse {
                line: lineno,
                message: format!("bad pc '{pc_text}': {e}"),
            }
        })?;
        let outcome = parts.next().ok_or_else(|| TraceError::Parse {
            line: lineno,
            message: "missing outcome field".into(),
        })?;
        let taken = match outcome {
            "T" | "t" | "1" => true,
            "N" | "n" | "0" => false,
            other => {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("bad outcome '{other}', expected T or N"),
                })
            }
        };
        let gap = match parts.next() {
            Some(g) => g.parse::<u32>().map_err(|e| TraceError::Parse {
                line: lineno,
                message: format!("bad gap '{g}': {e}"),
            })?,
            None => 0,
        };
        if let Some(extra) = parts.next() {
            return Err(TraceError::Parse {
                line: lineno,
                message: format!("unexpected trailing field '{extra}'"),
            });
        }
        builder.push(BranchEvent::new(BranchAddr(pc), taken, gap));
    }
    let mut trace = builder.finish();
    if !name.is_empty() {
        let meta = crate::trace::TraceMeta {
            total_instructions: trace.meta().total_instructions,
            name,
        };
        trace = Trace::from_parts(meta, trace.into_iter().collect());
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn roundtrip_with_name() {
        let mut b = TraceBuilder::named("perl.ref");
        b.push(BranchEvent::new(BranchAddr(0xabc), true, 3));
        b.push(BranchEvent::new(BranchAddr(0xac0), false, 0));
        let trace = b.finish();
        let mut buf = Vec::new();
        write_text(&mut buf, &trace).unwrap();
        let back = read_text(&mut &buf[..]).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn comments_blanks_and_unknown_directives_are_ignored() {
        let text = "# header\n\n!future stuff\n10 T 1\n";
        let trace = read_text(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].pc, BranchAddr(0x10));
    }

    #[test]
    fn gap_defaults_to_zero_and_accepts_aliases() {
        let text = "10 t\n14 1 5\n18 0\n";
        let trace = read_text(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.events()[0].gap, 0);
        assert!(trace.events()[0].taken);
        assert!(trace.events()[1].taken);
        assert_eq!(trace.events()[1].gap, 5);
        assert!(!trace.events()[2].taken);
    }

    #[test]
    fn accepts_0x_prefixed_pcs() {
        let trace = read_text(&mut "0x1000 T 2\n".as_bytes()).unwrap();
        assert_eq!(trace.events()[0].pc, BranchAddr(0x1000));
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "10 T 1\nZZZ T 1\n";
        match read_text(&mut text.as_bytes()) {
            Err(TraceError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_outcome_and_trailing_fields() {
        assert!(matches!(
            read_text(&mut "10 X 1\n".as_bytes()),
            Err(TraceError::Parse { .. })
        ));
        assert!(matches!(
            read_text(&mut "10 T 1 junk\n".as_bytes()),
            Err(TraceError::Parse { .. })
        ));
        assert!(matches!(
            read_text(&mut "10\n".as_bytes()),
            Err(TraceError::Parse { .. })
        ));
        assert!(matches!(
            read_text(&mut "10 T 4294967296\n".as_bytes()),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn empty_input_is_an_empty_trace() {
        let trace = read_text(&mut "".as_bytes()).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.meta().total_instructions, 0);
    }
}
