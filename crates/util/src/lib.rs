//! Foundation utilities for the `sdbp` simulation stack.
//!
//! The branch-prediction experiments in this workspace must be **bit-reproducible**:
//! a with-static-hints run and a without-static-hints run are only comparable when
//! they observe *exactly* the same branch stream. This crate therefore provides a
//! self-contained, seedable random-number generator ([`rng::Xoshiro256StarStar`])
//! together with the sampling distributions the synthetic workloads need
//! ([`dist`]), plus small helpers used across the workspace: online statistics
//! ([`stats`]) and plain-text table rendering ([`table`]) used by the experiment
//! harness binaries.
//!
//! # Examples
//!
//! ```
//! use sdbp_util::rng::Xoshiro256StarStar;
//! use sdbp_util::dist::Zipf;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let zipf = Zipf::new(100, 0.8).expect("valid parameters");
//! let site = zipf.sample(&mut rng);
//! assert!(site < 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod rng;
pub mod stats;
pub mod table;

pub use dist::{Alias, Bernoulli, Normal, Zipf};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use stats::OnlineStats;
pub use table::TableWriter;
