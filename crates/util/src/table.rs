//! Plain-text table rendering for experiment reports.
//!
//! All the experiment harness binaries print paper-style tables; this module
//! centralizes column alignment so the output stays legible without a
//! third-party dependency.

use std::fmt::Write as _;

/// Column alignment for [`TableWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Align {
    /// Pad on the right (text columns).
    #[default]
    Left,
    /// Pad on the left (numeric columns).
    Right,
}

/// Accumulates rows of strings and renders them as an aligned text table.
///
/// # Examples
///
/// ```
/// use sdbp_util::table::{Align, TableWriter};
///
/// let mut t = TableWriter::new(vec!["program".into(), "MISPs/KI".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["gcc".into(), "11.32".into()]);
/// t.row(vec!["m88ksim".into(), "1.04".into()]);
/// let text = t.render();
/// assert!(text.contains("gcc"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TableWriter {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(headers: &[&str]) -> Self {
        Self::new(headers.iter().map(|s| s.to_string()).collect())
    }

    /// Sets the alignment of column `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a valid column.
    pub fn align(&mut self, idx: usize, align: Align) -> &mut Self {
        self.aligns[idx] = align;
        self
    }

    /// Right-aligns every column except the first (the common numeric-table
    /// shape used by the experiment binaries).
    pub fn numeric(&mut self) -> &mut Self {
        for i in 1..self.aligns.len() {
            self.aligns[i] = Align::Right;
        }
        self
    }

    /// Appends one row.
    ///
    /// Short rows are padded with empty cells; long rows are truncated to the
    /// header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        cells.truncate(self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Appends one row from anything displayable.
    pub fn row_display<I, T>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = T>,
        T: std::fmt::Display,
    {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table, header first, with a separator rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String], aligns: &[Align]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        for _ in 0..pad {
                            out.push(' ');
                        }
                    }
                    Align::Right => {
                        for _ in 0..pad {
                            out.push(' ');
                        }
                        out.push_str(cell);
                    }
                }
            }
            // Trim trailing spaces from left-aligned last columns.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers, &self.aligns);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        for _ in 0..rule_len {
            out.push('-');
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row, &self.aligns);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.953 → "95.3%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a signed improvement percentage with one decimal, e.g. `"-2.3%"`.
pub fn pct_signed(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Formats a float with `digits` decimals.
pub fn fixed(x: f64, digits: usize) -> String {
    let mut s = String::new();
    let _ = write!(s, "{x:.digits$}");
    s
}

/// Formats a count with thousands separators, e.g. `1234567 → "1,234,567"`.
pub fn grouped(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableWriter::with_columns(&["name", "value"]);
        t.numeric();
        t.row_display(["alpha", "1"]);
        t.row_display(["b", "12345"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Numeric column right-aligned: both rows end at the same column.
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TableWriter::with_columns(&["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.num_rows(), 1);
        let text = t.render();
        assert!(text.contains('x'));
    }

    #[test]
    fn long_rows_are_truncated() {
        let mut t = TableWriter::with_columns(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
        let text = t.render();
        assert!(!text.contains('y'));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.953), "95.3%");
        assert_eq!(pct_signed(-0.023), "-2.3%");
        assert_eq!(pct_signed(0.05), "+5.0%");
    }

    #[test]
    fn fixed_formats() {
        assert_eq!(fixed(12.3456, 2), "12.35");
        assert_eq!(fixed(1.0, 0), "1");
    }

    #[test]
    fn grouped_formats() {
        assert_eq!(grouped(0), "0");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1000), "1,000");
        assert_eq!(grouped(1234567), "1,234,567");
    }
}
