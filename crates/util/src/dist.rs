//! Sampling distributions used by the synthetic workload generators.
//!
//! * [`Zipf`] — power-law ranks; models the skewed execution frequency of
//!   branch sites in real programs (a few hot branches dominate the dynamic
//!   stream).
//! * [`Alias`] — Walker/Vose alias method for O(1) sampling from an arbitrary
//!   discrete distribution; used for site traversal once per-site weights are
//!   fixed.
//! * [`Bernoulli`] — a fixed-probability coin, the behavior core of biased
//!   branches.
//! * [`Normal`] — Box–Muller Gaussian, used to perturb per-site biases when
//!   deriving a `Ref` input from a `Train` input.

use crate::rng::Rng;
use std::fmt;

/// Error returned when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// A fixed-probability boolean distribution.
///
/// # Examples
///
/// ```
/// use sdbp_util::dist::Bernoulli;
/// use sdbp_util::rng::Xoshiro256StarStar;
///
/// let coin = Bernoulli::new(0.9).expect("valid probability");
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let hits = (0..1000).filter(|_| coin.sample(&mut rng)).count();
/// assert!(hits > 800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a coin that lands `true` with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `p` is not a finite value in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new(format!("probability {p} not in [0, 1]")));
        }
        Ok(Self { p })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> bool {
        rng.bernoulli(self.p)
    }
}

/// A Zipf (power-law) distribution over ranks `0..n`.
///
/// Rank `k` is drawn with probability proportional to `1 / (k+1)^s`. The
/// implementation precomputes the cumulative distribution and samples by
/// binary search: O(n) memory, O(log n) per draw, exact for any exponent.
///
/// # Examples
///
/// ```
/// use sdbp_util::dist::Zipf;
/// use sdbp_util::rng::Xoshiro256StarStar;
///
/// let zipf = Zipf::new(1000, 1.0).expect("valid parameters");
/// let mut rng = Xoshiro256StarStar::seed_from_u64(3);
/// // Rank 0 is by far the most likely outcome.
/// let zeros = (0..1000).filter(|_| zipf.sample(&mut rng) == 0).count();
/// assert!(zeros > 50);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// `s == 0` degenerates to the uniform distribution, larger `s`
    /// concentrates mass on low ranks.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("zipf needs at least one rank"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError::new(format!("zipf exponent {s} invalid")));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point drift at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose cumulative mass covers u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// O(1) discrete sampling by the Walker/Vose alias method.
///
/// Construction is O(n); each draw costs one uniform index plus one biased
/// coin. Used for hot-path site traversal in the workload generators where a
/// branch site must be drawn per simulated branch.
///
/// # Examples
///
/// ```
/// use sdbp_util::dist::Alias;
/// use sdbp_util::rng::Xoshiro256StarStar;
///
/// let alias = Alias::new(&[1.0, 0.0, 3.0]).expect("valid weights");
/// let mut rng = Xoshiro256StarStar::seed_from_u64(9);
/// for _ in 0..100 {
///     assert_ne!(alias.sample(&mut rng), 1, "zero-weight bucket never drawn");
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Alias {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Alias {
    /// Builds the alias tables from non-negative `weights`.
    ///
    /// Weights need not sum to one; they are normalized internally.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("alias table needs at least one weight"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new("weights must be finite and non-negative"));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError::new("weights must not all be zero"));
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        while let Some(s) = small.pop() {
            // Note: popping both stacks in one tuple pattern would discard a
            // bucket when the other stack is empty; pop them separately.
            let Some(l) = large.pop() else {
                small.push(s);
                break;
            };
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are ≈1.0 in exact arithmetic, but floating-point drift
        // can leave a zero-weight bucket here; such a bucket must never be
        // returned, so alias it to the heaviest bucket instead.
        let fallback = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for i in large.into_iter().chain(small) {
            if weights[i] > 0.0 {
                prob[i] = 1.0;
                alias[i] = i;
            } else {
                prob[i] = 0.0;
                alias[i] = fallback;
            }
        }
        Ok(Self { prob, alias })
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has zero buckets (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one bucket index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.range(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// A Gaussian distribution sampled with the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use sdbp_util::dist::Normal;
/// use sdbp_util::rng::Xoshiro256StarStar;
///
/// let n = Normal::new(0.0, 1.0).expect("valid parameters");
/// let mut rng = Xoshiro256StarStar::seed_from_u64(4);
/// let mean: f64 = (0..10_000).map(|_| n.sample(&mut rng)).sum::<f64>() / 10_000.0;
/// assert!(mean.abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `sd` is negative or either parameter is
    /// non-finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !sd.is_finite() || sd < 0.0 {
            return Err(ParamError::new(format!("normal({mean}, {sd}) invalid")));
        }
        Ok(Self { mean, sd })
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 must be nonzero for the logarithm.
        let mut u1 = rng.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.sd * r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn bernoulli_rejects_bad_probability() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
        assert!(Bernoulli::new(0.5).is_ok());
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 0.9).unwrap();
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.2).unwrap();
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(10, 1.0).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let observed = c as f64 / n as f64;
            let expected = z.pmf(k);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn alias_rejects_bad_weights() {
        assert!(Alias::new(&[]).is_err());
        assert!(Alias::new(&[1.0, -1.0]).is_err());
        assert!(Alias::new(&[0.0, 0.0]).is_err());
        assert!(Alias::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn alias_sampling_matches_weights() {
        let weights = [5.0, 1.0, 4.0, 0.0];
        let alias = Alias::new(&weights).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[alias.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[3], 0, "zero weight never sampled");
        let total: f64 = weights.iter().sum();
        for (k, &c) in counts.iter().enumerate() {
            let observed = c as f64 / n as f64;
            let expected = weights[k] / total;
            assert!(
                (observed - expected).abs() < 0.01,
                "bucket {k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn alias_never_returns_zero_weight_buckets_under_tiny_weights() {
        // Regression: thousands of Zipf-tail weights mixed with zeros used
        // to let floating-point drift hand a zero-weight bucket prob 1.0.
        let mut weights: Vec<f64> = (0..5000)
            .map(|k| 1.0 / ((k + 1) as f64).powf(1.1))
            .collect();
        for w in weights.iter_mut().skip(2500) {
            *w = 0.0;
        }
        let alias = Alias::new(&weights).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..200_000 {
            let k = alias.sample(&mut rng);
            assert!(weights[k] > 0.0, "sampled dead bucket {k}");
        }
    }

    #[test]
    fn alias_single_bucket() {
        let alias = Alias::new(&[3.5]).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(alias.sample(&mut rng), 0);
        }
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn normal_moments_are_close() {
        let dist = Normal::new(2.0, 3.0).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }
}
