//! Deterministic pseudo-random number generation.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator used mainly to expand a single
//!   `u64` seed into the larger state required by other generators.
//! * [`Xoshiro256StarStar`] — the workhorse generator for workload synthesis.
//!   It has a 256-bit state, passes BigCrush, and supports `jump()` for
//!   carving independent streams out of one seed.
//!
//! Both are implemented from the public-domain reference algorithms by
//! Blackman & Vigna. Implementing them locally (rather than depending on the
//! `rand` crate) keeps every experiment bit-reproducible regardless of
//! dependency resolution, which the paired with/without-static-prediction
//! comparisons in the experiment harness rely on.

/// Common interface for the deterministic generators in this module.
///
/// The trait supplies the derived sampling methods (`next_f64`, `bernoulli`,
/// `range`, …) on top of a single required method, [`Rng::next_u64`].
///
/// # Examples
///
/// ```
/// use sdbp_util::rng::{Rng, Xoshiro256StarStar};
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(7);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// assert!(rng.range(10) < 10);
/// ```
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    ///
    /// Uses the top 53 bits of [`Rng::next_u64`], the standard construction
    /// that yields every representable multiple of 2⁻⁵³ in the unit interval.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Values of `p` outside `[0, 1]` are clamped: `p <= 0` never returns
    /// `true` and `p >= 1` always does.
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniformly distributed integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range upper bound must be positive");
        // Lemire's nearly-divisionless unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed integer in the inclusive range
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.range(span + 1)
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` when the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.range(slice.len() as u64) as usize;
            Some(&slice[idx])
        }
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// The SplitMix64 generator.
///
/// Extremely small state (one `u64`) and a one-multiply update, primarily
/// used here to derive well-mixed seeds for [`Xoshiro256StarStar`]. Every
/// output of SplitMix64 is a bijection of its state, so distinct seeds yield
/// distinct streams.
///
/// # Examples
///
/// ```
/// use sdbp_util::rng::{Rng, SplitMix64};
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator (Blackman & Vigna).
///
/// This is the default generator for workload synthesis across the `sdbp`
/// workspace: 256-bit state, period 2²⁵⁶ − 1, and a `jump()` function that
/// advances the stream by 2¹²⁸ steps so that independent sub-streams can be
/// derived from a single experiment seed.
///
/// # Examples
///
/// ```
/// use sdbp_util::rng::{Rng, Xoshiro256StarStar};
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(2000);
/// let mut other = rng.clone();
/// other.jump();
/// // The jumped stream is far away from the original stream.
/// assert_ne!(rng.next_u64(), other.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from 256 bits of explicit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros, which is the one invalid xoshiro
    /// state (the generator would emit only zeros).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "xoshiro256** state must not be all zeros"
        );
        Self { s: state }
    }

    /// Creates a generator by expanding a single `u64` seed with
    /// [`SplitMix64`], the seeding procedure recommended by the algorithm's
    /// authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mixer = SplitMix64::new(seed);
        let s = [
            mixer.next_u64(),
            mixer.next_u64(),
            mixer.next_u64(),
            mixer.next_u64(),
        ];
        // SplitMix64 output of any seed is never four zero words in a row.
        Self { s }
    }

    /// Advances the generator by 2¹²⁸ steps.
    ///
    /// Calling `jump` on clones of one generator yields non-overlapping
    /// sub-streams (up to 2¹²⁸ draws each), which the workload generators use
    /// to decorrelate per-site randomness from traversal randomness.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Derives the `n`-th independent sub-stream of this generator.
    ///
    /// Equivalent to cloning and calling [`Xoshiro256StarStar::jump`]
    /// `n + 1` times, so distinct `n` give non-overlapping streams.
    pub fn substream(&self, n: u64) -> Self {
        let mut sub = self.clone();
        for _ in 0..=n {
            sub.jump();
        }
        sub
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut rng = SplitMix64::new(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut rng2 = SplitMix64::new(0);
        assert_eq!(rng2.next_u64(), first);
        assert_eq!(rng2.next_u64(), second);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_distinct_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic(expected = "all zeros")]
    fn zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of range");
        }
    }

    #[test]
    fn bernoulli_clamps_probabilities() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        assert!(!rng.bernoulli(-0.5));
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_rate_matches_probability() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} too far from 0.3");
    }

    #[test]
    fn range_is_bounded_and_covers() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.range(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn range_zero_panics() {
        let mut rng = SplitMix64::new(1);
        let _ = rng.range(0);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [10, 20, 30];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        let original = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
        assert_ne!(v, original, "shuffle of 100 items should move something");
    }

    #[test]
    fn jump_streams_do_not_collide_early() {
        let base = Xoshiro256StarStar::seed_from_u64(42);
        let mut s0 = base.substream(0);
        let mut s1 = base.substream(1);
        let collisions = (0..1000).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(collisions, 0);
    }
}
