//! Online statistics accumulators.
//!
//! The experiment harness streams billions of simulated branch events and
//! cannot retain them, so summary statistics are accumulated online.
//! [`OnlineStats`] implements Welford's numerically stable algorithm for mean
//! and variance; [`Histogram`] offers fixed-bin counting for bias and
//! improvement distributions.

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use sdbp_util::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width-bin histogram over a closed interval.
///
/// Out-of-range observations are clamped into the first or last bin so that
/// `total()` always equals the number of `push` calls.
///
/// # Examples
///
/// ```
/// use sdbp_util::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 10).expect("valid bins");
/// h.push(0.95);
/// h.push(0.97);
/// assert_eq!(h.bin_count(9), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi]` with `bins` equal-width bins.
    ///
    /// Returns `None` if `bins == 0`, the bounds are non-finite, or
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Self {
            lo,
            hi,
            bins: vec![0; bins],
        })
    }

    /// Adds one observation, clamping it into range.
    pub fn push(&mut self, x: f64) {
        let n = self.bins.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((t * n as f64) as usize).min(n - 1);
        self.bins[idx] += 1;
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The inclusive value range `[lo, hi]` covered by bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Fraction of observations at or above `threshold`.
    ///
    /// Computed from bins whose lower edge is ≥ `threshold`; accuracy is
    /// limited by bin width.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = (0..self.bins.len())
            .filter(|&i| self.bin_range(i).0 >= threshold)
            .map(|i| self.bins[i])
            .sum();
        above as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.push(-1.0); // clamps to bin 0
        h.push(0.5);
        h.push(9.9);
        h.push(100.0); // clamps to bin 4
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(4), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_rejects_bad_parameters() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn histogram_fraction_at_least() {
        let mut h = Histogram::new(0.0, 1.0, 20).unwrap();
        for i in 0..100 {
            h.push(i as f64 / 100.0);
        }
        let frac = h.fraction_at_least(0.95);
        assert!((frac - 0.05).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn histogram_bin_range() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        let (lo, hi) = h.bin_range(1);
        assert!((lo - 0.25).abs() < 1e-12);
        assert!((hi - 0.5).abs() < 1e-12);
    }
}
