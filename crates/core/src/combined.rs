//! The combined static + dynamic predictor.

use sdbp_predictors::{AnyPredictor, DynamicPredictor};
use sdbp_profiles::HintDatabase;
use sdbp_trace::BranchAddr;
use std::fmt;

/// Whether statically predicted branches shift their outcomes into the
/// dynamic predictor's global history register.
///
/// The paper (§4, Table 4) found this choice matters: keeping the outcomes
/// in the history preserves the correlation context other branches depend
/// on, while dropping them changes (and sometimes improves) the aliasing
/// pattern. It proposes controlling it per application with an
/// architectural flag — which is exactly what this enum is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShiftPolicy {
    /// Statically predicted branches do not touch the history register.
    #[default]
    NoShift,
    /// Their outcomes are shifted in (tables remain untouched).
    Shift,
}

impl ShiftPolicy {
    /// The label used in Table 4.
    pub fn label(self) -> &'static str {
        match self {
            ShiftPolicy::NoShift => "no-shift",
            ShiftPolicy::Shift => "shift",
        }
    }
}

impl fmt::Display for ShiftPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How one branch was resolved by the combined predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchResolution {
    /// The direction predicted.
    pub predicted_taken: bool,
    /// Whether a static hint supplied the prediction.
    pub was_static: bool,
    /// Whether any dynamic table lookup collided (always `false` for
    /// statically predicted branches — they perform no lookups).
    pub collision: bool,
}

/// A dynamic predictor fronted by a static hint database.
///
/// Per branch: if the hint database holds an entry for the PC, the hint bit
/// is the prediction and the dynamic predictor is **neither probed nor
/// trained** — that is how static prediction relieves aliasing pressure.
/// Otherwise the branch flows through the dynamic predictor's normal
/// predict/update protocol.
///
/// # Examples
///
/// ```
/// use sdbp_core::{CombinedPredictor, ShiftPolicy};
/// use sdbp_predictors::Gshare;
/// use sdbp_profiles::HintDatabase;
/// use sdbp_trace::{BranchAddr, BranchEvent};
///
/// let mut hints = HintDatabase::new();
/// hints.insert(BranchAddr(0x10), true);
/// let mut combined = CombinedPredictor::new(
///     Box::new(Gshare::new(1024)),
///     hints,
///     ShiftPolicy::NoShift,
/// );
/// let r = combined.resolve(&BranchEvent::new(BranchAddr(0x10), false, 0));
/// assert!(r.was_static);
/// assert!(r.predicted_taken, "the hint says taken, even though it missed");
/// ```
pub struct CombinedPredictor {
    dynamic: AnyPredictor,
    hints: HintDatabase,
    shift_policy: ShiftPolicy,
    /// Reused per-batch scratch for [`CombinedPredictor::resolve_batch`].
    scratch: Vec<sdbp_predictors::Prediction>,
}

impl CombinedPredictor {
    /// Combines a dynamic predictor with static hints.
    ///
    /// Accepts anything convertible into [`AnyPredictor`]: a concrete
    /// predictor (plain or boxed — so `Box::new(Gshare::new(..))` call sites
    /// keep working, now unboxed into static dispatch), an [`AnyPredictor`]
    /// from [`sdbp_predictors::PredictorConfig::build_any`], or a
    /// `Box<dyn DynamicPredictor>` for user-defined schemes (which stay
    /// virtually dispatched through the `Custom` escape hatch).
    pub fn new(
        dynamic: impl Into<AnyPredictor>,
        hints: HintDatabase,
        shift_policy: ShiftPolicy,
    ) -> Self {
        Self {
            dynamic: dynamic.into(),
            hints,
            shift_policy,
            scratch: Vec::new(),
        }
    }

    /// A pure dynamic configuration (empty hint database).
    pub fn pure_dynamic(dynamic: impl Into<AnyPredictor>) -> Self {
        Self::new(dynamic, HintDatabase::new(), ShiftPolicy::NoShift)
    }

    /// The dynamic component's scheme name.
    pub fn dynamic_name(&self) -> &'static str {
        self.dynamic.name()
    }

    /// The dynamic component's size in bytes.
    pub fn dynamic_size_bytes(&self) -> usize {
        self.dynamic.size_bytes()
    }

    /// The hint database.
    pub fn hints(&self) -> &HintDatabase {
        &self.hints
    }

    /// The configured shift policy.
    pub fn shift_policy(&self) -> ShiftPolicy {
        self.shift_policy
    }

    /// Total dynamic-table collisions observed so far.
    pub fn total_collisions(&self) -> u64 {
        self.dynamic.total_collisions()
    }

    /// Predicts and trains for one resolved branch, returning how it was
    /// handled. This is the per-branch hot path of the whole system: the
    /// dynamic component is enum-dispatched, so for the built-in predictors
    /// `predict`/`update` resolve statically instead of through a vtable.
    #[inline]
    pub fn resolve(&mut self, event: &sdbp_trace::BranchEvent) -> BranchResolution {
        // Pure-dynamic configurations (empty hint database) are the common
        // hot case; skip the per-branch hash probe entirely for them.
        let hint = if self.hints.is_empty() {
            None
        } else {
            self.hints.get(event.pc)
        };
        match hint {
            Some(hint_taken) => {
                if self.shift_policy == ShiftPolicy::Shift {
                    self.dynamic.shift_history(event.taken);
                }
                BranchResolution {
                    predicted_taken: hint_taken,
                    was_static: true,
                    collision: false,
                }
            }
            None => {
                let pred = self.dynamic.predict_update(event.pc, event.taken);
                BranchResolution {
                    predicted_taken: pred.taken,
                    was_static: false,
                    collision: pred.collision,
                }
            }
        }
    }

    /// Batched [`CombinedPredictor::resolve`]: appends one resolution per
    /// event to `out`, in order, with identical observable behavior.
    ///
    /// Pure-dynamic configurations hand the whole batch to the dynamic
    /// predictor's [`DynamicPredictor::predict_update_batch`], whose
    /// hot-scheme overrides keep loop-carried state in registers across the
    /// batch. Hinted configurations need the per-branch static/dynamic
    /// decision and take the per-event path.
    pub fn resolve_batch(
        &mut self,
        events: &[sdbp_trace::BranchEvent],
        out: &mut Vec<BranchResolution>,
    ) {
        match self.try_resolve_batch_dynamic(events) {
            Some(predictions) => out.extend(predictions.iter().map(|p| BranchResolution {
                predicted_taken: p.taken,
                was_static: false,
                collision: p.collision,
            })),
            None => out.extend(events.iter().map(|e| self.resolve(e))),
        }
    }

    /// The pure-dynamic batch fast path: resolves `events` and returns the
    /// raw predictions, or `None` when static hints are configured (every
    /// prediction returned is dynamic by construction — the caller may treat
    /// `was_static` as false without inspecting anything). The returned
    /// slice lives in an internal scratch buffer reused across calls.
    pub fn try_resolve_batch_dynamic(
        &mut self,
        events: &[sdbp_trace::BranchEvent],
    ) -> Option<&[sdbp_predictors::Prediction]> {
        if !self.hints.is_empty() {
            return None;
        }
        self.scratch.clear();
        self.dynamic.predict_update_batch(events, &mut self.scratch);
        Some(&self.scratch)
    }

    /// Consumes the combined predictor, returning the dynamic component
    /// (e.g. to inspect collision counters after a run).
    pub fn into_dynamic(self) -> Box<dyn DynamicPredictor> {
        self.dynamic.into_boxed()
    }
}

impl fmt::Debug for CombinedPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombinedPredictor")
            .field("dynamic", &self.dynamic.name())
            .field("size_bytes", &self.dynamic.size_bytes())
            .field("hints", &self.hints.len())
            .field("shift_policy", &self.shift_policy)
            .finish()
    }
}

/// Convenience: test whether a pc is statically predicted.
impl CombinedPredictor {
    /// Whether `pc` would be resolved statically.
    pub fn is_static(&self, pc: BranchAddr) -> bool {
        self.hints.contains(pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::{Bimodal, Ghist};
    use sdbp_trace::BranchEvent;

    fn ev(pc: u64, taken: bool) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), taken, 0)
    }

    #[test]
    fn static_branches_bypass_dynamic_tables() {
        let mut hints = HintDatabase::new();
        hints.insert(BranchAddr(0x10), false);
        let mut c = CombinedPredictor::new(Box::new(Bimodal::new(64)), hints, ShiftPolicy::NoShift);
        // Resolve the hinted branch many times taken: a bimodal would learn
        // taken, but the static hint must keep saying not-taken and the
        // tables must stay cold.
        for _ in 0..10 {
            let r = c.resolve(&ev(0x10, true));
            assert!(r.was_static);
            assert!(!r.predicted_taken);
            assert!(!r.collision);
        }
        assert_eq!(c.total_collisions(), 0);
        // A different branch mapping to the same counter must see a cold
        // (not trained-up) entry: resolve dynamically and observe weak
        // not-taken initial prediction.
        let r = c.resolve(&ev(0x10 + 64 * 4, true));
        assert!(!r.was_static);
        assert!(
            !r.predicted_taken,
            "table was never trained by the static branch"
        );
    }

    #[test]
    fn dynamic_branches_flow_through() {
        let mut c = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64)));
        for _ in 0..4 {
            let r = c.resolve(&ev(0x20, true));
            assert!(!r.was_static);
        }
        let r = c.resolve(&ev(0x20, true));
        assert!(r.predicted_taken, "bimodal learned the branch");
    }

    #[test]
    fn shift_policy_feeds_history() {
        // Branch A is static; branch B's outcome equals A's last outcome.
        // With Shift, a ghist predictor can still correlate on A.
        let run = |policy: ShiftPolicy| -> u64 {
            let mut hints = HintDatabase::new();
            hints.insert(BranchAddr(0x100), true);
            let mut c = CombinedPredictor::new(Box::new(Ghist::new(256)), hints, policy);
            let mut mispredicts = 0;
            let mut state = 0x9e3779b97f4a7c15u64;
            for i in 0..4000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a_outcome = (state >> 40) & 1 == 1;
                let _ = c.resolve(&ev(0x100, a_outcome));
                let r = c.resolve(&ev(0x200, a_outcome));
                if i >= 2000 && r.predicted_taken != a_outcome {
                    mispredicts += 1;
                }
            }
            mispredicts
        };
        let with_shift = run(ShiftPolicy::Shift);
        let without = run(ShiftPolicy::NoShift);
        assert!(
            with_shift * 4 < without.max(1),
            "shift {with_shift} vs no-shift {without}: shifting must preserve correlation"
        );
    }

    #[test]
    fn accessors_report_configuration() {
        let mut hints = HintDatabase::new();
        hints.insert(BranchAddr(0x10), true);
        let c = CombinedPredictor::new(Box::new(Bimodal::new(128)), hints, ShiftPolicy::Shift);
        assert_eq!(c.dynamic_name(), "bimodal");
        assert_eq!(c.dynamic_size_bytes(), 128);
        assert_eq!(c.shift_policy(), ShiftPolicy::Shift);
        assert!(c.is_static(BranchAddr(0x10)));
        assert!(!c.is_static(BranchAddr(0x14)));
        assert_eq!(c.hints().len(), 1);
        let debug = format!("{c:?}");
        assert!(debug.contains("bimodal"));
        let dynamic = c.into_dynamic();
        assert_eq!(dynamic.size_bytes(), 128);
    }

    #[test]
    fn shift_policy_labels() {
        assert_eq!(ShiftPolicy::NoShift.to_string(), "no-shift");
        assert_eq!(ShiftPolicy::Shift.to_string(), "shift");
        assert_eq!(ShiftPolicy::default(), ShiftPolicy::NoShift);
    }
}
