//! The two-phase experiment protocol.
//!
//! Phase one (selection) profiles a run and selects static hints; phase two
//! (measurement) simulates the combined predictor on the measurement input.
//! [`ProfileSource`] picks between the paper's three training regimes:
//! self-trained (§5's upper bound), naive cross-trained, and cross-trained
//! with the merged/filtered Spike-style database (§5.1 / Figure 13).

use crate::cache::ArtifactCache;
use crate::combined::{CombinedPredictor, ShiftPolicy};
use crate::report::Report;
use crate::simulator::MeasurePass;
use sdbp_artifacts::{CodecError, StoreError};
use sdbp_passes::Pass;
use sdbp_predictors::PredictorConfig;
use sdbp_profiles::{
    rank_interference, AccuracyProfile, BiasProfile, HintDatabase, InterferenceOptions,
    ProfileDatabase, SelectError, SelectionScheme,
};
use sdbp_workloads::{Benchmark, InputSet};
use std::fmt;
use std::sync::Arc;

/// Where the profile that drives hint selection comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileSource {
    /// Profile the *measurement* input itself — the paper's "self-trained"
    /// upper bound.
    SelfTrained,
    /// Profile the `Train` input, measure on `Ref` — naive cross-training.
    CrossTrained,
    /// Merge `Train` and `Ref` profiles and drop branches whose taken-rate
    /// moved by more than the threshold — the Spike database fix
    /// (Figure 13, fourth bar).
    MergedCrossTrained {
        /// Maximum tolerated taken-rate change (the paper suggests 5%).
        max_bias_change: f64,
    },
}

impl ProfileSource {
    /// The input profiled for bias/accuracy in phase one.
    pub fn profile_input(self, measure_input: InputSet) -> InputSet {
        match self {
            ProfileSource::SelfTrained => measure_input,
            ProfileSource::CrossTrained | ProfileSource::MergedCrossTrained { .. } => {
                InputSet::Train
            }
        }
    }

    /// Label used in Figure 13.
    pub fn label(self) -> &'static str {
        match self {
            ProfileSource::SelfTrained => "self",
            ProfileSource::CrossTrained => "cross",
            ProfileSource::MergedCrossTrained { .. } => "cross-merged",
        }
    }
}

/// A complete experiment description.
///
/// Build with [`ExperimentSpec::self_trained`] and refine with the `with_*`
/// builders.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// The workload.
    pub benchmark: Benchmark,
    /// The dynamic predictor.
    pub predictor: PredictorConfig,
    /// The static selection scheme.
    pub scheme: SelectionScheme,
    /// History shifting for statically predicted branches.
    pub shift: ShiftPolicy,
    /// The training regime.
    pub profile: ProfileSource,
    /// The measurement input.
    pub measure_input: InputSet,
    /// The experiment seed (fixes workload structure and event streams).
    pub seed: u64,
    /// Instruction budget of the profiling run (`None` = workload default).
    pub profile_instructions: Option<u64>,
    /// Instruction budget of the measurement run (`None` = workload default).
    pub measure_instructions: Option<u64>,
    /// Instructions excluded from the measured statistics at the start of
    /// the measurement run (tables still train). `0` measures everything,
    /// like the paper's multi-billion-instruction runs effectively do.
    pub warmup_instructions: u64,
}

impl ExperimentSpec {
    /// The paper's basic configuration: self-trained profiling, measured on
    /// `Ref`, no history shifting.
    pub fn self_trained(
        benchmark: Benchmark,
        predictor: PredictorConfig,
        scheme: SelectionScheme,
    ) -> Self {
        Self {
            benchmark,
            predictor,
            scheme,
            shift: ShiftPolicy::NoShift,
            profile: ProfileSource::SelfTrained,
            measure_input: InputSet::Ref,
            seed: 2000,
            profile_instructions: None,
            measure_instructions: None,
            warmup_instructions: 0,
        }
    }

    /// Replaces the selection scheme.
    pub fn with_scheme(mut self, scheme: SelectionScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Replaces the shift policy.
    pub fn with_shift(mut self, shift: ShiftPolicy) -> Self {
        self.shift = shift;
        self
    }

    /// Replaces the training regime.
    pub fn with_profile(mut self, profile: ProfileSource) -> Self {
        self.profile = profile;
        self
    }

    /// Replaces the measurement input.
    pub fn with_measure_input(mut self, input: InputSet) -> Self {
        self.measure_input = input;
        self
    }

    /// Caps both the profiling and the measurement runs at `instructions`.
    pub fn with_instructions(mut self, instructions: u64) -> Self {
        self.profile_instructions = Some(instructions);
        self.measure_instructions = Some(instructions);
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Excludes the first `instructions` of the measurement run from the
    /// statistics (cold-start discounting).
    pub fn with_warmup(mut self, instructions: u64) -> Self {
        self.warmup_instructions = instructions;
        self
    }

    fn budget(&self, input: InputSet, explicit: Option<u64>) -> u64 {
        explicit.unwrap_or_else(|| self.benchmark.default_instructions(input))
    }

    /// The instruction budget of the measurement run, resolving the
    /// workload default when none was set explicitly.
    pub fn measure_budget(&self) -> u64 {
        self.budget(self.measure_input, self.measure_instructions)
    }

    /// The instruction budget of the profiling run, resolving the workload
    /// default when none was set explicitly.
    pub fn profile_budget(&self) -> u64 {
        let input = self.profile.profile_input(self.measure_input);
        self.budget(input, self.profile_instructions)
    }

    /// Checks the structural invariants a spec must satisfy to produce a
    /// meaningful experiment, without running anything.
    ///
    /// This is the lightweight gate behind [`Sweep`](crate::Sweep)'s strict
    /// mode; the `sdbp-check` crate builds its coded diagnostics on top of
    /// the same conditions (plus many more). A valid spec is guaranteed not
    /// to panic inside [`Lab::run`] for spec-level reasons.
    ///
    /// # Errors
    ///
    /// Returns every violated invariant as a [`SpecProblem`] naming the
    /// offending field.
    pub fn validate(&self) -> Result<(), Vec<SpecProblem>> {
        let mut problems = Vec::new();
        let mut problem = |field: &'static str, message: String| {
            problems.push(SpecProblem { field, message });
        };
        if self.profile_instructions == Some(0) {
            problem(
                "profile_instructions",
                "profiling budget is zero; no branch would be profiled".to_string(),
            );
        }
        if self.measure_instructions == Some(0) {
            problem(
                "measure_instructions",
                "measurement budget is zero; no branch would be measured".to_string(),
            );
        }
        let measure = self.measure_budget();
        if measure > 0 && self.warmup_instructions >= measure {
            problem(
                "warmup_instructions",
                format!(
                    "warm-up of {} instructions consumes the whole measurement \
                     budget of {measure}",
                    self.warmup_instructions
                ),
            );
        }
        match self.scheme {
            SelectionScheme::None | SelectionScheme::VsAccuracy => {}
            SelectionScheme::Bias { cutoff } => {
                if !(cutoff > 0.0 && cutoff < 1.0) {
                    problem(
                        "scheme",
                        format!("bias cutoff {cutoff} outside the open interval (0, 1)"),
                    );
                }
            }
            SelectionScheme::Factor { factor } => {
                if !(factor > 0.0 && factor.is_finite()) {
                    problem(
                        "scheme",
                        format!("accuracy factor {factor} must be positive"),
                    );
                }
            }
            SelectionScheme::CollisionAware {
                min_bias,
                min_collision_rate,
            } => {
                if !(min_bias > 0.0 && min_bias < 1.0) {
                    problem(
                        "scheme",
                        format!("minimum bias {min_bias} outside the open interval (0, 1)"),
                    );
                }
                if !(0.0..1.0).contains(&min_collision_rate) {
                    problem(
                        "scheme",
                        format!("minimum collision rate {min_collision_rate} outside [0, 1)"),
                    );
                }
            }
            SelectionScheme::Collide {
                min_bias,
                min_score_rate,
            } => {
                if !(min_bias > 0.0 && min_bias < 1.0) {
                    problem(
                        "scheme",
                        format!("minimum bias {min_bias} outside the open interval (0, 1)"),
                    );
                }
                if !(0.0..1.0).contains(&min_score_rate) {
                    problem(
                        "scheme",
                        format!("minimum score rate {min_score_rate} outside [0, 1)"),
                    );
                }
            }
        }
        if let ProfileSource::MergedCrossTrained { max_bias_change } = self.profile {
            if !(0.0..=1.0).contains(&max_bias_change) {
                problem(
                    "profile",
                    format!("maximum bias change {max_bias_change} outside [0, 1]"),
                );
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

/// One violated invariant found by [`ExperimentSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecProblem {
    /// The [`ExperimentSpec`] field at fault.
    pub field: &'static str,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for SpecProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

/// Errors from experiment execution and artifact persistence.
///
/// The taxonomy distinguishes what went wrong — a selection failure, a
/// pre-flight rejection, an I/O failure of the artifact store, a codec or
/// schema-version mismatch, or store corruption — so callers can react per
/// class (the CLI maps classes to distinct exit codes). Every variant
/// implements [`std::error::Error`] with [`source`](std::error::Error::source)
/// chaining to the underlying cause where one exists.
#[derive(Debug, Clone)]
pub enum ExperimentError {
    /// Hint selection failed.
    Select(SelectError),
    /// The spec was rejected before any simulation ran — by
    /// [`ExperimentSpec::validate`] under a [`Sweep`](crate::Sweep)'s strict
    /// mode, or by an installed pre-flight hook (see [`Lab::with_preflight`]).
    Rejected {
        /// The rendered pre-flight diagnostics.
        reason: String,
    },
    /// The cell was not executed at all (e.g. a sweep hit its cell cap
    /// before reaching it). A resumed sweep runs skipped cells.
    Skipped {
        /// Why the cell was passed over.
        reason: String,
    },
    /// An artifact-store or manifest I/O operation failed.
    Io {
        /// What was being read or written.
        context: String,
        /// The underlying I/O error.
        source: Arc<std::io::Error>,
    },
    /// An artifact failed to encode or decode (including schema-version
    /// mismatches from a store written by a different build).
    Codec {
        /// What was being (de)serialized.
        context: String,
        /// The underlying codec error.
        source: CodecError,
    },
    /// A stored artifact's bytes do not match their content digest or
    /// envelope checksum — on-disk corruption, not a logic error.
    StoreCorrupt {
        /// Path of the damaged object.
        path: String,
        /// What the validation found.
        source: CodecError,
    },
    /// An error replayed from a previous run's manifest whose precise
    /// variant could not be reconstructed; `kind` preserves the original
    /// class label.
    Replayed {
        /// The original [`kind_label`](ExperimentError::kind_label).
        kind: String,
        /// The original rendered message.
        message: String,
    },
}

impl ExperimentError {
    /// A stable one-word class label, used by manifests to record (and
    /// later replay) the error class.
    pub fn kind_label(&self) -> &str {
        match self {
            ExperimentError::Select(_) => "select",
            ExperimentError::Rejected { .. } => "rejected",
            ExperimentError::Skipped { .. } => "skipped",
            ExperimentError::Io { .. } => "io",
            ExperimentError::Codec { .. } => "codec",
            ExperimentError::StoreCorrupt { .. } => "store-corrupt",
            ExperimentError::Replayed { kind, .. } => kind,
        }
    }
}

impl PartialEq for ExperimentError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ExperimentError::Select(a), ExperimentError::Select(b)) => a == b,
            (ExperimentError::Rejected { reason: a }, ExperimentError::Rejected { reason: b })
            | (ExperimentError::Skipped { reason: a }, ExperimentError::Skipped { reason: b }) => {
                a == b
            }
            (
                ExperimentError::Io {
                    context: ca,
                    source: sa,
                },
                ExperimentError::Io {
                    context: cb,
                    source: sb,
                },
            ) => ca == cb && sa.kind() == sb.kind(),
            (
                ExperimentError::Codec {
                    context: ca,
                    source: sa,
                },
                ExperimentError::Codec {
                    context: cb,
                    source: sb,
                },
            ) => ca == cb && sa == sb,
            (
                ExperimentError::StoreCorrupt {
                    path: pa,
                    source: sa,
                },
                ExperimentError::StoreCorrupt {
                    path: pb,
                    source: sb,
                },
            ) => pa == pb && sa == sb,
            (
                ExperimentError::Replayed {
                    kind: ka,
                    message: ma,
                },
                ExperimentError::Replayed {
                    kind: kb,
                    message: mb,
                },
            ) => ka == kb && ma == mb,
            _ => false,
        }
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Select(e) => write!(f, "hint selection failed: {e}"),
            ExperimentError::Rejected { reason } => {
                write!(f, "spec rejected by pre-flight checks: {reason}")
            }
            ExperimentError::Skipped { reason } => write!(f, "cell skipped: {reason}"),
            ExperimentError::Io { context, source } => {
                write!(f, "artifact I/O failed while {context}: {source}")
            }
            ExperimentError::Codec { context, source } => {
                write!(f, "artifact codec failed while {context}: {source}")
            }
            ExperimentError::StoreCorrupt { path, source } => {
                write!(f, "corrupt artifact at {path}: {source}")
            }
            ExperimentError::Replayed { kind, message } => {
                write!(f, "replayed {kind} error from manifest: {message}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Select(e) => Some(e),
            ExperimentError::Io { source, .. } => Some(source.as_ref()),
            ExperimentError::Codec { source, .. }
            | ExperimentError::StoreCorrupt { source, .. } => Some(source),
            ExperimentError::Rejected { .. }
            | ExperimentError::Skipped { .. }
            | ExperimentError::Replayed { .. } => None,
        }
    }
}

impl From<SelectError> for ExperimentError {
    fn from(e: SelectError) -> Self {
        ExperimentError::Select(e)
    }
}

impl From<StoreError> for ExperimentError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io { path, source } => ExperimentError::Io {
                context: format!("accessing {path}"),
                source,
            },
            StoreError::Corrupt { path, source } => ExperimentError::StoreCorrupt { path, source },
        }
    }
}

/// Runs one experiment end to end with a throwaway cache.
///
/// Sweeps should use a [`Lab`] (serial) or a [`Sweep`](crate::Sweep)
/// (parallel), which memoize profiles and event streams across runs —
/// profiling gcc once instead of forty times makes the harness binaries an
/// order of magnitude faster.
///
/// # Errors
///
/// Propagates [`SelectError`] from hint selection (e.g. an accuracy-based
/// scheme without an accuracy profile — cannot happen through this API,
/// which collects one on demand).
pub fn run_experiment(spec: &ExperimentSpec) -> Result<Report, ExperimentError> {
    Lab::new().run(spec)
}

/// An experiment runner with memoized profiling, backed by an
/// [`ArtifactCache`].
///
/// Bias profiles depend only on `(benchmark, input, seed, budget)` and are
/// shared across predictor configurations; accuracy profiles additionally
/// depend on the predictor and are keyed accordingly; the generated event
/// streams behind both (and behind the measurement phase) are memoized the
/// same way. The cache is thread-safe and can be shared with a
/// [`Sweep`](crate::Sweep) — or across several labs — via [`Lab::with_cache`].
pub struct Lab {
    cache: Arc<ArtifactCache>,
    preflight: Option<PreflightFn>,
    fuse: bool,
}

/// A pre-flight validator installable into a [`Lab`] or a
/// [`Sweep`](crate::Sweep): inspects a spec before anything runs and
/// returns the rendered diagnostics when the spec must be rejected.
///
/// The `sdbp-check` crate provides a full coded-diagnostics implementation;
/// [`ExperimentSpec::validate`] is the dependency-free baseline.
pub type PreflightFn = Arc<dyn Fn(&ExperimentSpec) -> Result<(), String> + Send + Sync>;

impl Default for Lab {
    fn default() -> Self {
        Self::new()
    }
}

impl Lab {
    /// Creates a lab with a fresh artifact cache.
    pub fn new() -> Self {
        Self {
            cache: Arc::new(ArtifactCache::new()),
            preflight: None,
            fuse: true,
        }
    }

    /// Creates a lab sharing an existing artifact cache.
    pub fn with_cache(cache: Arc<ArtifactCache>) -> Self {
        Self {
            cache,
            preflight: None,
            fuse: true,
        }
    }

    /// Enables or disables pass fusion (on by default).
    ///
    /// A fused lab collects the bias profile and any needed accuracy
    /// profiles of a run in **one** traversal of the event stream
    /// ([`ArtifactCache::profile_bundle`]); an unfused lab performs the
    /// classic one-artifact-per-traversal lookups. Results are bit-identical
    /// either way — the escape hatch exists for benchmarking and for
    /// isolating the fusion layer when debugging.
    pub fn with_fusion(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Installs a pre-flight validator that every subsequent [`Lab::run`]
    /// consults before simulating; rejected specs come back as
    /// [`ExperimentError::Rejected`] instead of running (or panicking)
    /// mid-experiment.
    pub fn with_preflight(mut self, preflight: PreflightFn) -> Self {
        self.preflight = Some(preflight);
        self
    }

    /// The shared artifact cache behind this lab.
    pub fn cache(&self) -> Arc<ArtifactCache> {
        Arc::clone(&self.cache)
    }

    /// Returns the (cached) bias profile of a run.
    pub fn bias_profile(
        &self,
        benchmark: Benchmark,
        input: InputSet,
        seed: u64,
        instructions: u64,
    ) -> Arc<BiasProfile> {
        self.cache
            .bias_profile(benchmark, input, seed, instructions)
    }

    /// Returns the (cached) per-branch accuracy profile of `predictor` on a
    /// run.
    pub fn accuracy_profile(
        &self,
        benchmark: Benchmark,
        input: InputSet,
        seed: u64,
        instructions: u64,
        predictor: PredictorConfig,
    ) -> Arc<AccuracyProfile> {
        self.cache
            .accuracy_profile(benchmark, input, seed, instructions, predictor)
    }

    /// Selects the hint database for a spec (phase one).
    ///
    /// With fusion enabled (the default), the profiling run's bias profile
    /// and the accuracy profile of the spec's predictor — when its scheme
    /// needs one — are collected in a single traversal of the event stream;
    /// see [`Lab::with_fusion`].
    ///
    /// A `Static_Collide` scheme additionally runs the static interference
    /// ranking ([`rank_interference`]) over the selection bias; that analysis
    /// needs the predictor's index function, so opaque predictors fail with
    /// [`SelectError::MissingInterferenceRanking`].
    pub fn select_hints(&self, spec: &ExperimentSpec) -> Result<HintDatabase, ExperimentError> {
        if spec.scheme == SelectionScheme::None {
            return Ok(HintDatabase::new());
        }
        let profile_input = spec.profile.profile_input(spec.measure_input);
        let profile_budget = spec.budget(profile_input, spec.profile_instructions);

        let (profiled_bias, accuracy) = if self.fuse {
            // One fused lookup: bias plus (at most) one accuracy profile,
            // any cold artifact collected in the same traversal.
            let predictors: &[PredictorConfig] = if spec.scheme.needs_accuracy_profile() {
                std::slice::from_ref(&spec.predictor)
            } else {
                &[]
            };
            let (bias, mut accuracies) = self.cache.profile_bundle(
                spec.benchmark,
                profile_input,
                spec.seed,
                profile_budget,
                predictors,
            );
            (bias, accuracies.pop())
        } else {
            let bias = self.bias_profile(spec.benchmark, profile_input, spec.seed, profile_budget);
            let accuracy = spec.scheme.needs_accuracy_profile().then(|| {
                self.accuracy_profile(
                    spec.benchmark,
                    profile_input,
                    spec.seed,
                    profile_budget,
                    spec.predictor,
                )
            });
            (bias, accuracy)
        };

        let bias: Arc<BiasProfile> = match spec.profile {
            // `profile_input` already names the profiled run for these two
            // regimes, so the fused bias is the selection bias.
            ProfileSource::SelfTrained | ProfileSource::CrossTrained => profiled_bias,
            ProfileSource::MergedCrossTrained { max_bias_change } => {
                // `profiled_bias` is the `Train` run (`profile_input` is
                // `Train` for every cross-trained regime); the merge needs
                // the `Ref` bias as well, which lives under a different key
                // and therefore takes its own (cached) traversal.
                let ref_budget = spec.budget(InputSet::Ref, spec.profile_instructions);
                let reference =
                    self.bias_profile(spec.benchmark, InputSet::Ref, spec.seed, ref_budget);
                let mut db = ProfileDatabase::new(spec.benchmark.name());
                db.add_run("train", (*profiled_bias).clone());
                db.add_run("ref", (*reference).clone());
                Arc::new(db.merged_stable(max_bias_change))
            }
        };

        let ranking = if spec.scheme.needs_interference_ranking() {
            rank_interference(&bias, spec.predictor, &InterferenceOptions::default())
        } else {
            None
        };
        Ok(spec
            .scheme
            .select_with_interference(&bias, accuracy.as_deref(), ranking.as_ref())?)
    }

    /// Phase one for one spec: pre-flight, hint selection, and the combined
    /// predictor ready for measurement (plus the hint count for the report).
    fn phase_one(
        &self,
        spec: &ExperimentSpec,
    ) -> Result<(CombinedPredictor, usize), ExperimentError> {
        if let Some(preflight) = &self.preflight {
            preflight(spec).map_err(|reason| ExperimentError::Rejected { reason })?;
        }
        let hints = self.select_hints(spec)?;
        let hints_len = hints.len();
        // build_any: the measurement loop dispatches on the enum, not a
        // vtable — this is the system's hottest path.
        let combined = CombinedPredictor::new(spec.predictor.build_any(), hints, spec.shift);
        Ok((combined, hints_len))
    }

    /// Runs one experiment end to end (phase one + phase two).
    pub fn run(&self, spec: &ExperimentSpec) -> Result<Report, ExperimentError> {
        let (mut combined, hints_len) = self.phase_one(spec)?;
        let measure_budget = spec.budget(spec.measure_input, spec.measure_instructions);
        // The measurement phase rides the cache-aware pass runner: cached
        // streams replay zero-copy, and budgets too large for the trace
        // store stream straight off the generator in chunk-sized memory.
        let mut measure = MeasurePass::new(&mut combined).with_warmup(spec.warmup_instructions);
        self.cache.run_passes(
            spec.benchmark,
            spec.measure_input,
            spec.seed,
            measure_budget,
            &mut [&mut measure],
        );
        let stats = measure.into_stats();
        Ok(Report {
            benchmark: spec.benchmark,
            predictor: spec.predictor,
            scheme_label: spec.scheme.label(),
            shift: spec.shift,
            measure_input: spec.measure_input,
            hints: hints_len,
            stats,
        })
    }

    /// Runs a group of experiments whose measurement runs share one event
    /// stream — same benchmark, measurement input, seed and measurement
    /// budget — in **lockstep**: phase one runs per member as usual (and is
    /// memoized by the cache), then every member's measurement pass rides a
    /// single traversal of the shared stream instead of one traversal per
    /// member. Results come back in `specs` order and are bit-identical to
    /// [`Lab::run`] on each member — measurement passes are independent
    /// chunk-invariant consumers, which is exactly the pass framework's
    /// lockstep guarantee (see `sdbp_passes::LockstepRunner`).
    ///
    /// Members whose pre-flight or selection fails report their error and
    /// simply do not join the traversal; the remaining members still share
    /// one. The traversals avoided are recorded in
    /// [`CacheStats`](crate::CacheStats)`::lockstep_traversals_saved`.
    ///
    /// # Panics
    ///
    /// Panics if the specs disagree on the measurement-stream key
    /// `(benchmark, measure_input, seed, measure_budget)` — callers group
    /// cells by that key (as [`Sweep`](crate::Sweep) does) before calling.
    pub fn run_lockstep(&self, specs: &[&ExperimentSpec]) -> Vec<Result<Report, ExperimentError>> {
        let Some(first) = specs.first() else {
            return Vec::new();
        };
        let measure_budget = first.measure_budget();
        for spec in &specs[1..] {
            assert!(
                spec.benchmark == first.benchmark
                    && spec.measure_input == first.measure_input
                    && spec.seed == first.seed
                    && spec.measure_budget() == measure_budget,
                "lockstep members must share the measurement stream key"
            );
        }
        let mut slots: Vec<Option<Result<Report, ExperimentError>>> =
            Vec::with_capacity(specs.len());
        let mut metas: Vec<(usize, usize)> = Vec::new();
        let mut combineds: Vec<CombinedPredictor> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            match self.phase_one(spec) {
                Ok((combined, hints_len)) => {
                    slots.push(None);
                    metas.push((i, hints_len));
                    combineds.push(combined);
                }
                Err(e) => slots.push(Some(Err(e))),
            }
        }
        if !combineds.is_empty() {
            let mut measures: Vec<MeasurePass<'_>> = combineds
                .iter_mut()
                .zip(&metas)
                .map(|(combined, &(i, _))| {
                    MeasurePass::new(combined).with_warmup(specs[i].warmup_instructions)
                })
                .collect();
            {
                let mut passes: Vec<&mut dyn Pass> =
                    measures.iter_mut().map(|m| m as &mut dyn Pass).collect();
                self.cache.run_passes(
                    first.benchmark,
                    first.measure_input,
                    first.seed,
                    measure_budget,
                    &mut passes,
                );
            }
            self.cache.note_lockstep_saved(measures.len() as u64 - 1);
            for (measure, &(i, hints_len)) in measures.into_iter().zip(&metas) {
                let spec = specs[i];
                slots[i] = Some(Ok(Report {
                    benchmark: spec.benchmark,
                    predictor: spec.predictor,
                    scheme_label: spec.scheme.label(),
                    shift: spec.shift,
                    measure_input: spec.measure_input,
                    hints: hints_len,
                    stats: measure.into_stats(),
                }));
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every member settled"))
            .collect()
    }
}

impl fmt::Debug for Lab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lab")
            .field("bias_profiles", &self.cache.bias_profiles())
            .field("accuracy_profiles", &self.cache.accuracy_profiles())
            .field("cached_traces", &self.cache.cached_traces())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::PredictorKind;

    fn spec(scheme: SelectionScheme) -> ExperimentSpec {
        ExperimentSpec::self_trained(
            Benchmark::Compress,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
            scheme,
        )
        .with_instructions(300_000)
    }

    #[test]
    fn baseline_run_produces_sane_stats() {
        let report = run_experiment(&spec(SelectionScheme::None)).unwrap();
        assert_eq!(report.hints, 0);
        assert!(report.stats.branches > 10_000);
        assert!(report.stats.accuracy() > 0.6, "{}", report.stats.accuracy());
        assert!(report.stats.misp_per_ki() < report.stats.cbrs_per_ki());
    }

    #[test]
    fn static_95_selects_hints_and_never_breaks_the_run() {
        let report = run_experiment(&spec(SelectionScheme::static_95())).unwrap();
        assert!(report.hints > 50, "hints: {}", report.hints);
        assert!(report.stats.static_predicted > 0);
        assert!(report.stats.static_accuracy() > 0.9);
    }

    #[test]
    fn static_acc_beats_or_matches_baseline_when_self_trained() {
        let baseline = run_experiment(&spec(SelectionScheme::None)).unwrap();
        let improved = run_experiment(&spec(SelectionScheme::static_acc())).unwrap();
        assert!(
            improved.stats.misp_per_ki() <= baseline.stats.misp_per_ki() * 1.02,
            "static_acc {:.3} vs baseline {:.3}",
            improved.stats.misp_per_ki(),
            baseline.stats.misp_per_ki()
        );
    }

    #[test]
    fn identical_specs_reproduce_identical_stats() {
        let a = run_experiment(&spec(SelectionScheme::static_95())).unwrap();
        let b = run_experiment(&spec(SelectionScheme::static_95())).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lab_caches_profiles() {
        let lab = Lab::new();
        let s = spec(SelectionScheme::static_acc());
        let _ = lab.run(&s).unwrap();
        let _ = lab
            .run(&s.clone().with_scheme(SelectionScheme::static_95()))
            .unwrap();
        let debug = format!("{lab:?}");
        assert!(debug.contains("bias_profiles: 1"), "{debug}");
        assert!(debug.contains("accuracy_profiles: 1"), "{debug}");
    }

    #[test]
    fn fused_and_unfused_labs_agree_bit_for_bit() {
        for scheme in [
            SelectionScheme::None,
            SelectionScheme::static_95(),
            SelectionScheme::static_acc(),
        ] {
            let s = spec(scheme);
            let fused = Lab::new().run(&s).unwrap();
            let unfused = Lab::new().with_fusion(false).run(&s).unwrap();
            assert_eq!(fused, unfused);
        }
        let merged =
            spec(SelectionScheme::static_acc()).with_profile(ProfileSource::MergedCrossTrained {
                max_bias_change: 0.05,
            });
        assert_eq!(
            Lab::new().run(&merged).unwrap(),
            Lab::new().with_fusion(false).run(&merged).unwrap()
        );
    }

    #[test]
    fn fused_lab_profiles_in_one_traversal() {
        let lab = Lab::new();
        let _ = lab.run(&spec(SelectionScheme::static_acc())).unwrap();
        let stats = lab.cache().stats();
        assert_eq!(
            stats.fused_traversals_saved, 1,
            "bias + accuracy collected together: {stats}"
        );

        let unfused = Lab::new().with_fusion(false);
        let _ = unfused.run(&spec(SelectionScheme::static_acc())).unwrap();
        assert_eq!(unfused.cache().stats().fused_traversals_saved, 0);
    }

    #[test]
    fn lockstep_group_matches_sequential_runs_bit_for_bit() {
        let specs = [
            spec(SelectionScheme::None),
            spec(SelectionScheme::static_95()),
            spec(SelectionScheme::static_acc()).with_shift(ShiftPolicy::Shift),
            {
                let mut s = spec(SelectionScheme::None).with_warmup(100_000);
                s.predictor = PredictorConfig::new(PredictorKind::TwoBcGskew, 2048).unwrap();
                s
            },
        ];
        let sequential: Vec<Report> = specs.iter().map(|s| Lab::new().run(s).unwrap()).collect();
        let lab = Lab::new();
        let refs: Vec<&ExperimentSpec> = specs.iter().collect();
        let lockstep = lab.run_lockstep(&refs);
        assert_eq!(lockstep.len(), specs.len());
        for (got, want) in lockstep.iter().zip(&sequential) {
            assert_eq!(got.as_ref().unwrap(), want);
        }
        let stats = lab.cache().stats();
        assert_eq!(
            stats.lockstep_traversals_saved, 3,
            "four members on one traversal save three: {stats}"
        );
    }

    #[test]
    fn lockstep_failed_members_report_without_blocking_the_group() {
        let lab = Lab::new();
        let good = spec(SelectionScheme::static_95());
        let mut bad = spec(SelectionScheme::static_collide());
        // Opaque predictor: selection fails with a missing-ranking error.
        bad.predictor = PredictorConfig::new(PredictorKind::BiMode, 1024).unwrap();
        let results = lab.run_lockstep(&[&good, &bad, &good]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(ExperimentError::Select(
                SelectError::MissingInterferenceRanking
            ))
        ));
        assert_eq!(
            results[0].as_ref().unwrap(),
            results[2].as_ref().unwrap(),
            "identical members agree"
        );
        assert_eq!(
            results[0].as_ref().unwrap(),
            &Lab::new().run(&good).unwrap()
        );
        assert_eq!(lab.cache().stats().lockstep_traversals_saved, 1);
    }

    #[test]
    fn lockstep_degenerate_groups() {
        let lab = Lab::new();
        assert!(lab.run_lockstep(&[]).is_empty());
        let single = spec(SelectionScheme::None);
        let results = lab.run_lockstep(&[&single]);
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].as_ref().unwrap(),
            &Lab::new().run(&single).unwrap()
        );
        assert_eq!(
            lab.cache().stats().lockstep_traversals_saved,
            0,
            "a single member saves nothing"
        );
    }

    #[test]
    #[should_panic(expected = "measurement stream key")]
    fn lockstep_rejects_mismatched_measurement_keys() {
        let a = spec(SelectionScheme::None);
        let b = spec(SelectionScheme::None).with_seed(7);
        let _ = Lab::new().run_lockstep(&[&a, &b]);
    }

    #[test]
    fn profile_source_inputs() {
        assert_eq!(
            ProfileSource::SelfTrained.profile_input(InputSet::Ref),
            InputSet::Ref
        );
        assert_eq!(
            ProfileSource::CrossTrained.profile_input(InputSet::Ref),
            InputSet::Train
        );
        assert_eq!(
            ProfileSource::MergedCrossTrained {
                max_bias_change: 0.05
            }
            .profile_input(InputSet::Ref),
            InputSet::Train
        );
        assert_eq!(ProfileSource::SelfTrained.label(), "self");
        assert_eq!(ProfileSource::CrossTrained.label(), "cross");
    }

    #[test]
    fn merged_cross_training_runs() {
        let s =
            spec(SelectionScheme::static_95()).with_profile(ProfileSource::MergedCrossTrained {
                max_bias_change: 0.05,
            });
        let report = run_experiment(&s).unwrap();
        assert!(report.stats.branches > 10_000);
    }

    #[test]
    fn warmup_discounts_cold_start() {
        let with = run_experiment(&spec(SelectionScheme::None).with_warmup(100_000)).unwrap();
        let without = run_experiment(&spec(SelectionScheme::None)).unwrap();
        assert!(with.stats.branches < without.stats.branches);
        // On short runs the warm-up window isn't necessarily the worst
        // window, but the rates must stay in the same neighborhood.
        let ratio = with.stats.misp_per_ki() / without.stats.misp_per_ki();
        assert!(
            (0.7..1.3).contains(&ratio),
            "warm-up shifted rate by {ratio}"
        );
    }

    #[test]
    fn validate_accepts_the_paper_configurations() {
        spec(SelectionScheme::None).validate().unwrap();
        spec(SelectionScheme::static_95()).validate().unwrap();
        spec(SelectionScheme::static_acc()).validate().unwrap();
        spec(SelectionScheme::collision_aware()).validate().unwrap();
        spec(SelectionScheme::static_collide()).validate().unwrap();
        spec(SelectionScheme::static_95())
            .with_profile(ProfileSource::MergedCrossTrained {
                max_bias_change: 0.05,
            })
            .validate()
            .unwrap();
    }

    #[test]
    fn static_collide_runs_end_to_end_on_an_analyzable_predictor() {
        let report = run_experiment(&spec(SelectionScheme::static_collide())).unwrap();
        assert!(report.stats.branches > 10_000);
        assert_eq!(report.scheme_label, "static_collide");
        // The ranking-gated selection is a subset of plain Static_95.
        let bias_only = run_experiment(&spec(SelectionScheme::Bias { cutoff: 0.80 })).unwrap();
        assert!(
            report.hints <= bias_only.hints,
            "collide {} vs bias {}",
            report.hints,
            bias_only.hints
        );
    }

    #[test]
    fn static_collide_rejects_opaque_predictors() {
        let mut s = spec(SelectionScheme::static_collide());
        s.predictor = PredictorConfig::new(PredictorKind::BiMode, 1024).unwrap();
        match run_experiment(&s) {
            Err(ExperimentError::Select(SelectError::MissingInterferenceRanking)) => {}
            other => panic!("expected a missing-ranking error, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_zero_budgets() {
        let mut s = spec(SelectionScheme::None);
        s.measure_instructions = Some(0);
        s.profile_instructions = Some(0);
        let problems = s.validate().unwrap_err();
        let fields: Vec<&str> = problems.iter().map(|p| p.field).collect();
        assert!(fields.contains(&"profile_instructions"), "{problems:?}");
        assert!(fields.contains(&"measure_instructions"), "{problems:?}");
    }

    #[test]
    fn validate_rejects_warmup_swallowing_the_run() {
        let s = spec(SelectionScheme::None).with_warmup(300_000);
        let problems = s.validate().unwrap_err();
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].field, "warmup_instructions");
        assert!(problems[0].to_string().contains("warm-up"), "{problems:?}");
    }

    #[test]
    fn validate_rejects_out_of_range_scheme_parameters() {
        for scheme in [
            SelectionScheme::Bias { cutoff: 0.0 },
            SelectionScheme::Bias { cutoff: 1.0 },
            SelectionScheme::Factor { factor: 0.0 },
            SelectionScheme::Factor {
                factor: f64::INFINITY,
            },
            SelectionScheme::CollisionAware {
                min_bias: 1.5,
                min_collision_rate: 0.05,
            },
            SelectionScheme::CollisionAware {
                min_bias: 0.8,
                min_collision_rate: 1.0,
            },
            SelectionScheme::Collide {
                min_bias: 0.0,
                min_score_rate: 0.05,
            },
            SelectionScheme::Collide {
                min_bias: 0.8,
                min_score_rate: -0.5,
            },
        ] {
            let problems = spec(scheme).validate().unwrap_err();
            assert!(
                problems.iter().all(|p| p.field == "scheme"),
                "{scheme:?}: {problems:?}"
            );
        }
        let s = spec(SelectionScheme::None).with_profile(ProfileSource::MergedCrossTrained {
            max_bias_change: -0.1,
        });
        assert_eq!(s.validate().unwrap_err()[0].field, "profile");
    }

    #[test]
    fn lab_preflight_rejects_before_any_simulation() {
        let lab = Lab::new().with_preflight(Arc::new(|spec: &ExperimentSpec| {
            spec.validate().map_err(|p| {
                p.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            })
        }));
        let bad = spec(SelectionScheme::Bias { cutoff: 2.0 });
        match lab.run(&bad) {
            Err(ExperimentError::Rejected { reason }) => {
                assert!(reason.contains("cutoff"), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(
            format!("{lab:?}").contains("bias_profiles: 0"),
            "nothing may have been profiled"
        );
        let good = spec(SelectionScheme::static_95());
        assert!(lab.run(&good).is_ok(), "valid specs still run");
    }

    #[test]
    fn builders_apply() {
        let s = spec(SelectionScheme::None)
            .with_shift(ShiftPolicy::Shift)
            .with_seed(7)
            .with_measure_input(InputSet::Train)
            .with_profile(ProfileSource::CrossTrained);
        assert_eq!(s.shift, ShiftPolicy::Shift);
        assert_eq!(s.seed, 7);
        assert_eq!(s.measure_input, InputSet::Train);
        assert_eq!(s.profile, ProfileSource::CrossTrained);
    }
}
