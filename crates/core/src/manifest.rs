//! Append-only run manifests and the on-disk run store.
//!
//! A sweep given a `--store` directory records every finished cell as one
//! JSON line in `manifest.jsonl`: the cell index, the spec's content digest
//! (see [`spec_digest`]), the wall time, and the
//! outcome — a flattened [`Report`] or a typed error. The file is
//! **append-only** and each entry is written with a single `write` call, so
//! a killed run leaves at most one torn final line; [`RunManifest::parse`]
//! tolerates exactly that and reports it as [`RunManifest::torn`], while
//! damage anywhere else is a hard error.
//!
//! Resume semantics: a sweep re-opened on the same store skips every cell
//! whose spec digest already appears with a completed outcome (anything but
//! a [`ExperimentError::Skipped`] record), replaying the recorded outcome
//! instead of recomputing it. Combined with the cache's persistent disk
//! tier (profiles keyed by run coordinates), an interrupted grid finishes
//! from where it stopped, byte-identical to an uninterrupted run.

use crate::codec::spec_digest;
use crate::experiment::{ExperimentError, ExperimentSpec};
use crate::report::Report;
use sdbp_artifacts::{Digest, Json, Store};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::SelectError;
use sdbp_workloads::{Benchmark, InputSet};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::combined::ShiftPolicy;

/// One line of a run manifest: a finished (or deliberately skipped) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Position of the cell in its sweep's spec order.
    pub cell: usize,
    /// Content digest of the cell's [`ExperimentSpec`].
    pub spec_digest: Digest,
    /// Wall-clock milliseconds the cell ran (0 for replayed/skipped cells).
    pub wall_ms: u64,
    /// What the cell produced.
    pub outcome: Result<Report, ExperimentError>,
}

fn report_to_json(r: &Report) -> Json {
    Json::obj([
        ("benchmark", Json::str(r.benchmark.name())),
        // Derived from the benchmark at render time (imported traces that
        // mirror a synthetic run adopt its family, so their lines stay
        // byte-identical to generator-backed ones); the parser rederives it
        // and tolerates its absence in pre-family manifests.
        ("family", Json::str(r.benchmark.family().name())),
        ("predictor", Json::str(r.predictor.kind().name())),
        ("size_bytes", Json::Int(r.predictor.size_bytes() as i64)),
        ("scheme", Json::str(&r.scheme_label)),
        ("shift", Json::str(r.shift.label())),
        ("input", Json::str(r.measure_input.name())),
        ("hints", Json::Int(r.hints as i64)),
        ("instructions", Json::Int(r.stats.instructions as i64)),
        ("branches", Json::Int(r.stats.branches as i64)),
        ("mispredictions", Json::Int(r.stats.mispredictions as i64)),
        (
            "static_predicted",
            Json::Int(r.stats.static_predicted as i64),
        ),
        (
            "static_mispredictions",
            Json::Int(r.stats.static_mispredictions as i64),
        ),
        ("collisions", Json::Int(r.stats.collisions.total as i64)),
        (
            "constructive",
            Json::Int(r.stats.collisions.constructive as i64),
        ),
        (
            "destructive",
            Json::Int(r.stats.collisions.destructive as i64),
        ),
    ])
}

fn field<'j>(obj: &'j Json, key: &str, line: usize) -> Result<&'j Json, ManifestError> {
    obj.get(key).ok_or_else(|| ManifestError {
        line,
        message: format!("missing field '{key}'"),
    })
}

fn u64_field(obj: &Json, key: &str, line: usize) -> Result<u64, ManifestError> {
    field(obj, key, line)?
        .as_u64()
        .ok_or_else(|| ManifestError {
            line,
            message: format!("field '{key}' is not an unsigned integer"),
        })
}

fn str_field<'j>(obj: &'j Json, key: &str, line: usize) -> Result<&'j str, ManifestError> {
    field(obj, key, line)?
        .as_str()
        .ok_or_else(|| ManifestError {
            line,
            message: format!("field '{key}' is not a string"),
        })
}

fn report_from_json(obj: &Json, line: usize) -> Result<Report, ManifestError> {
    let bad = |message: String| ManifestError { line, message };
    let benchmark: Benchmark = str_field(obj, "benchmark", line)?
        .parse()
        .map_err(|e| bad(format!("{e}")))?;
    let kind: PredictorKind = str_field(obj, "predictor", line)?
        .parse()
        .map_err(|e| bad(format!("{e}")))?;
    let predictor = PredictorConfig::new(kind, u64_field(obj, "size_bytes", line)? as usize)
        .map_err(|e| bad(format!("{e}")))?;
    let shift = match str_field(obj, "shift", line)? {
        "no-shift" => ShiftPolicy::NoShift,
        "shift" => ShiftPolicy::Shift,
        other => return Err(bad(format!("unknown shift policy '{other}'"))),
    };
    let measure_input = match str_field(obj, "input", line)? {
        "train" => InputSet::Train,
        "ref" => InputSet::Ref,
        other => return Err(bad(format!("unknown input set '{other}'"))),
    };
    Ok(Report {
        benchmark,
        predictor,
        scheme_label: str_field(obj, "scheme", line)?.to_string(),
        shift,
        measure_input,
        hints: u64_field(obj, "hints", line)? as usize,
        stats: crate::metrics::SimStats {
            instructions: u64_field(obj, "instructions", line)?,
            branches: u64_field(obj, "branches", line)?,
            mispredictions: u64_field(obj, "mispredictions", line)?,
            static_predicted: u64_field(obj, "static_predicted", line)?,
            static_mispredictions: u64_field(obj, "static_mispredictions", line)?,
            collisions: crate::metrics::CollisionStats {
                total: u64_field(obj, "collisions", line)?,
                constructive: u64_field(obj, "constructive", line)?,
                destructive: u64_field(obj, "destructive", line)?,
            },
        },
    })
}

/// Reconstructs an error from its manifest record. The common classes come
/// back as their precise variants; anything else becomes
/// [`ExperimentError::Replayed`] preserving kind and message.
fn error_from_record(kind: &str, message: &str) -> ExperimentError {
    match kind {
        "select" => ExperimentError::Select(SelectError::MissingAccuracyProfile),
        "rejected" => ExperimentError::Rejected {
            reason: message.to_string(),
        },
        "skipped" => ExperimentError::Skipped {
            reason: message.to_string(),
        },
        _ => ExperimentError::Replayed {
            kind: kind.to_string(),
            message: message.to_string(),
        },
    }
}

impl ManifestEntry {
    /// Renders the entry as its manifest line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut members = vec![
            ("cell".to_string(), Json::Int(self.cell as i64)),
            ("spec".to_string(), Json::str(self.spec_digest.to_string())),
            ("wall_ms".to_string(), Json::Int(self.wall_ms as i64)),
        ];
        match &self.outcome {
            Ok(report) => {
                members.push(("status".to_string(), Json::str("ok")));
                members.push(("report".to_string(), report_to_json(report)));
            }
            Err(e) => {
                members.push(("status".to_string(), Json::str("error")));
                members.push((
                    "error".to_string(),
                    Json::obj([
                        ("kind", Json::str(e.kind_label())),
                        ("message", Json::str(e.to_string())),
                    ]),
                ));
            }
        }
        Json::Obj(members).render()
    }

    /// Parses one manifest line. `line` is the 1-based line number used in
    /// error messages.
    pub fn parse_line(text: &str, line: usize) -> Result<Self, ManifestError> {
        let bad = |message: String| ManifestError { line, message };
        let obj = Json::parse(text).map_err(|e| bad(format!("{e}")))?;
        let cell = u64_field(&obj, "cell", line)? as usize;
        let spec_digest: Digest = str_field(&obj, "spec", line)?
            .parse()
            .map_err(|e| bad(format!("spec digest: {e}")))?;
        let wall_ms = u64_field(&obj, "wall_ms", line)?;
        let outcome = match str_field(&obj, "status", line)? {
            "ok" => Ok(report_from_json(field(&obj, "report", line)?, line)?),
            "error" => {
                let err = field(&obj, "error", line)?;
                Err(error_from_record(
                    str_field(err, "kind", line)?,
                    str_field(err, "message", line)?,
                ))
            }
            other => return Err(bad(format!("unknown status '{other}'"))),
        };
        Ok(ManifestEntry {
            cell,
            spec_digest,
            wall_ms,
            outcome,
        })
    }

    /// Whether this record completes its cell: everything except a
    /// [`ExperimentError::Skipped`] marker (a resumed sweep re-runs those).
    pub fn is_completed(&self) -> bool {
        !matches!(self.outcome, Err(ExperimentError::Skipped { .. }))
    }
}

/// A structurally damaged manifest (not a torn tail — see
/// [`RunManifest::parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

/// A parsed `manifest.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The entries, in file order (completion order, not cell order).
    pub entries: Vec<ManifestEntry>,
    /// Whether the final line was torn (half-written by a killed run) and
    /// dropped. Torn tails are expected damage; they are recorded, not
    /// errors.
    pub torn: bool,
}

impl RunManifest {
    /// Parses manifest text. An unparseable **final** line is tolerated as a
    /// torn tail from a killed writer; an unparseable line anywhere else is
    /// real damage and errors.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut entries = Vec::with_capacity(lines.len());
        let mut torn = false;
        for (i, line) in lines.iter().enumerate() {
            match ManifestEntry::parse_line(line, i + 1) {
                Ok(entry) => entries.push(entry),
                Err(_) if i + 1 == lines.len() => torn = true,
                Err(e) => return Err(e),
            }
        }
        Ok(RunManifest { entries, torn })
    }

    /// The latest record per spec digest, for resume decisions.
    pub fn latest_by_digest(&self) -> HashMap<Digest, &ManifestEntry> {
        let mut map = HashMap::new();
        for entry in &self.entries {
            map.insert(entry.spec_digest, entry);
        }
        map
    }

    /// The canonical form used for byte-identity comparisons between runs:
    /// entries sorted by cell index with wall times (the only
    /// nondeterministic field) zeroed, one line each.
    pub fn canonical(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|e| e.cell);
        entries.dedup_by_key(|e| e.cell);
        let mut out = String::new();
        for mut entry in entries {
            entry.wall_ms = 0;
            out.push_str(&entry.to_line());
            out.push('\n');
        }
        out
    }
}

/// The on-disk home of a sweep: a content-addressed [`Store`] (profile disk
/// tier) plus the append-only `manifest.jsonl`, both under one root.
pub struct RunStore {
    root: PathBuf,
    store: Arc<Store>,
    prior: RunManifest,
    manifest: Mutex<fs::File>,
}

impl RunStore {
    /// The manifest path under a run-store root.
    pub fn manifest_path(root: &Path) -> PathBuf {
        root.join("manifest.jsonl")
    }

    /// Opens a run store. With `resume` false any existing manifest is
    /// truncated (a fresh run); with `resume` true prior entries are loaded
    /// for replay and a torn tail, if present, is cut off the file before
    /// appending continues.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Io`] on filesystem failures;
    /// [`ExperimentError::StoreCorrupt`] naming the manifest path when the
    /// existing manifest is structurally damaged beyond a torn tail.
    pub fn open(root: impl Into<PathBuf>, resume: bool) -> Result<Self, ExperimentError> {
        let root = root.into();
        let store = Arc::new(Store::open(&root)?);
        let path = Self::manifest_path(&root);
        let io = |e: std::io::Error| ExperimentError::Io {
            context: format!("opening {}", path.display()),
            source: Arc::new(e),
        };
        let prior = if resume && path.exists() {
            let text = fs::read_to_string(&path).map_err(io)?;
            let manifest =
                RunManifest::parse(&text).map_err(|e| ExperimentError::StoreCorrupt {
                    path: path.display().to_string(),
                    source: sdbp_artifacts::CodecError::Invalid {
                        context: e.to_string(),
                    },
                })?;
            if manifest.torn {
                // Rewrite the good prefix, dropping the torn tail.
                let good: String = manifest
                    .entries
                    .iter()
                    .map(|e| format!("{}\n", e.to_line()))
                    .collect();
                fs::write(&path, good).map_err(io)?;
            }
            manifest
        } else {
            RunManifest {
                entries: Vec::new(),
                torn: false,
            }
        };
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .truncate(false)
            .open(&path)
            .map_err(io)?;
        if !resume {
            let file_truncate = fs::OpenOptions::new()
                .write(true)
                .truncate(true)
                .open(&path)
                .map_err(io)?;
            drop(file_truncate);
        }
        Ok(RunStore {
            root,
            store,
            prior,
            manifest: Mutex::new(file),
        })
    }

    /// The run store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The content-addressed store living under this root (attach it to an
    /// [`ArtifactCache`](crate::ArtifactCache) as the profile disk tier).
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.store)
    }

    /// Prior manifest entries loaded at open (empty for fresh runs).
    pub fn prior(&self) -> &RunManifest {
        &self.prior
    }

    /// The replayable outcome of a spec, if a prior entry completed it.
    pub fn replay(&self, spec: &ExperimentSpec) -> Option<&ManifestEntry> {
        let digest = spec_digest(spec);
        self.prior
            .entries
            .iter()
            .rev()
            .find(|e| e.spec_digest == digest && e.is_completed())
    }

    /// Appends one entry to the manifest — a single `write` call, so a kill
    /// can tear at most the final line.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Io`] when the write fails.
    pub fn append(&self, entry: &ManifestEntry) -> Result<(), ExperimentError> {
        let line = format!("{}\n", entry.to_line());
        let mut file = self.manifest.lock().expect("manifest lock");
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| ExperimentError::Io {
                context: format!("appending to {}", Self::manifest_path(&self.root).display()),
                source: Arc::new(e),
            })
    }
}

impl std::fmt::Debug for RunStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStore")
            .field("root", &self.root)
            .field("prior_entries", &self.prior.entries.len())
            .field("torn", &self.prior.torn)
            .finish()
    }
}

/// Builds the manifest entry for one finished sweep cell.
pub fn entry_for(
    cell: usize,
    spec: &ExperimentSpec,
    outcome: &Result<Report, ExperimentError>,
    elapsed: Duration,
) -> ManifestEntry {
    ManifestEntry {
        cell,
        spec_digest: spec_digest(spec),
        wall_ms: elapsed.as_millis() as u64,
        outcome: outcome.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::ShiftPolicy;
    use crate::metrics::{CollisionStats, SimStats};
    use sdbp_profiles::SelectionScheme;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::self_trained(
            Benchmark::Compress,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
            SelectionScheme::static_95(),
        )
        .with_instructions(100_000)
    }

    fn report() -> Report {
        Report {
            benchmark: Benchmark::Compress,
            predictor: PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
            scheme_label: "static_95".into(),
            shift: ShiftPolicy::NoShift,
            measure_input: InputSet::Ref,
            hints: 42,
            stats: SimStats {
                instructions: 100_000,
                branches: 12_000,
                mispredictions: 900,
                static_predicted: 3_000,
                static_mispredictions: 60,
                collisions: CollisionStats {
                    total: 500,
                    constructive: 100,
                    destructive: 350,
                },
            },
        }
    }

    fn ok_entry(cell: usize) -> ManifestEntry {
        entry_for(
            cell,
            &spec().with_seed(cell as u64),
            &Ok(report()),
            Duration::from_millis(17),
        )
    }

    #[test]
    fn entries_roundtrip_through_their_line() {
        let entry = ok_entry(3);
        let back = ManifestEntry::parse_line(&entry.to_line(), 1).unwrap();
        assert_eq!(back, entry);

        let err_entry = entry_for(
            4,
            &spec(),
            &Err(ExperimentError::Rejected {
                reason: "bias cutoff 2 outside the open interval (0, 1)".into(),
            }),
            Duration::ZERO,
        );
        let back = ManifestEntry::parse_line(&err_entry.to_line(), 1).unwrap();
        match &back.outcome {
            Err(ExperimentError::Rejected { reason }) => {
                assert!(reason.contains("bias cutoff"), "{reason}")
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn unknown_error_kinds_replay_as_replayed() {
        let entry = entry_for(
            0,
            &spec(),
            &Err(ExperimentError::StoreCorrupt {
                path: "objects/ab/cd".into(),
                source: sdbp_artifacts::CodecError::ChecksumMismatch,
            }),
            Duration::ZERO,
        );
        let back = ManifestEntry::parse_line(&entry.to_line(), 1).unwrap();
        match &back.outcome {
            Err(ExperimentError::Replayed { kind, message }) => {
                assert_eq!(kind, "store-corrupt");
                assert!(message.contains("objects/ab/cd"), "{message}");
            }
            other => panic!("expected Replayed, got {other:?}"),
        }
        assert!(back.is_completed());
    }

    #[test]
    fn torn_tail_is_tolerated_midfile_damage_is_not() {
        let good = format!("{}\n{}\n", ok_entry(0).to_line(), ok_entry(1).to_line());
        let torn = format!("{good}{{\"cell\":2,\"spec\":\"dead");
        let manifest = RunManifest::parse(&torn).unwrap();
        assert_eq!(manifest.entries.len(), 2);
        assert!(manifest.torn);

        let damaged = format!("not json at all\n{good}");
        let err = RunManifest::parse(&damaged).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn canonical_sorts_dedups_and_zeroes_wall_time() {
        let mut a = ok_entry(1);
        a.wall_ms = 900;
        let mut b = ok_entry(0);
        b.wall_ms = 5;
        let stale = ok_entry(1); // superseded duplicate of cell 1
        let m1 = RunManifest {
            entries: vec![a.clone(), b.clone()],
            torn: false,
        };
        let m2 = RunManifest {
            entries: vec![stale, b, a],
            torn: true,
        };
        assert_eq!(m1.canonical(), m2.canonical());
        assert!(m1.canonical().contains("\"wall_ms\":0"));
    }

    #[test]
    fn run_store_resume_replays_completed_cells() {
        let root = std::env::temp_dir().join(format!("sdbp-run-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);

        let fresh = RunStore::open(&root, false).unwrap();
        let s = spec();
        fresh
            .append(&entry_for(0, &s, &Ok(report()), Duration::from_millis(3)))
            .unwrap();
        // Simulate a kill mid-write of the next cell.
        drop(fresh);
        let path = RunStore::manifest_path(&root);
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"cell\":1,\"spec\":\"tr").unwrap();
        drop(file);

        let resumed = RunStore::open(&root, true).unwrap();
        assert!(resumed.prior().torn);
        assert_eq!(resumed.prior().entries.len(), 1);
        let replay = resumed.replay(&s).expect("cell 0 completed");
        assert_eq!(replay.outcome, Ok(report()));
        assert!(resumed.replay(&s.clone().with_seed(99)).is_none());
        // The torn tail was cut: the file now parses clean.
        let text = fs::read_to_string(&path).unwrap();
        assert!(!RunManifest::parse(&text).unwrap().torn);

        // Re-opening without resume truncates.
        let wiped = RunStore::open(&root, false).unwrap();
        assert_eq!(wiped.prior().entries.len(), 0);
        assert_eq!(fs::read_to_string(&path).unwrap(), "");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn skipped_records_do_not_complete_a_cell() {
        let entry = entry_for(
            7,
            &spec(),
            &Err(ExperimentError::Skipped {
                reason: "cell cap reached".into(),
            }),
            Duration::ZERO,
        );
        assert!(!entry.is_completed());
        let back = ManifestEntry::parse_line(&entry.to_line(), 1).unwrap();
        assert!(!back.is_completed());
    }
}
