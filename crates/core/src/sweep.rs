//! The parallel experiment sweep engine.
//!
//! The paper's headline artifacts (Figures 1–13, Tables 1–5) are grids:
//! predictor × size-in-bytes × selection-scheme × benchmark. [`Sweep`] runs
//! such a grid across [`std::thread::scope`] workers that pull cells from a
//! shared queue, while one [`ArtifactCache`] memoizes the bias/accuracy
//! profiles and generated event streams every cell needs. Results come back
//! in **spec order regardless of completion order**, and — because artifact
//! generation is deterministic and cached artifacts are bit-identical to
//! fresh ones — a parallel sweep produces exactly the same [`Report`]s as
//! running the same specs serially through a [`Lab`] (this is tested).
//!
//! Worker count resolution, in priority order: [`Sweep::with_threads`], the
//! `SDBP_THREADS` environment variable, then [`std::thread::available_parallelism`];
//! the result is clamped to the number of cells.
//!
//! ```
//! use sdbp_core::{ExperimentSpec, Sweep};
//! use sdbp_predictors::{PredictorConfig, PredictorKind};
//! use sdbp_profiles::SelectionScheme;
//! use sdbp_workloads::Benchmark;
//!
//! let specs: Vec<_> = [1024usize, 2048]
//!     .into_iter()
//!     .map(|size| {
//!         ExperimentSpec::self_trained(
//!             Benchmark::Compress,
//!             PredictorConfig::new(PredictorKind::Gshare, size).unwrap(),
//!             SelectionScheme::static_95(),
//!         )
//!         .with_instructions(100_000)
//!     })
//!     .collect();
//! let result = Sweep::new(specs).with_threads(2).run();
//! let reports = result.into_reports().unwrap();
//! assert_eq!(reports.len(), 2);
//! ```

use crate::cache::{ArtifactCache, CacheStats};
use crate::experiment::{ExperimentError, ExperimentSpec, Lab, PreflightFn};
use crate::manifest::{entry_for, RunStore};
use crate::report::Report;
use sdbp_predictors::PredictorConfig;
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::{Benchmark, InputSet, WorkloadFamily};
use std::fmt;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What a worker records for one finished cell: the outcome and how long
/// the cell ran on its thread.
type CellOutcome = (Result<Report, ExperimentError>, Duration);

/// The worker count a sweep uses when none is set explicitly: the
/// `SDBP_THREADS` environment variable if set to a positive integer,
/// otherwise all available cores.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("SDBP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A parallel run of many [`ExperimentSpec`]s sharing one [`ArtifactCache`].
///
/// Build with [`Sweep::new`], refine with the `with_*` builders, execute
/// with [`Sweep::run`]. See the [module docs](self) for determinism and
/// thread-count semantics.
pub struct Sweep {
    specs: Vec<ExperimentSpec>,
    threads: Option<usize>,
    cache: Arc<ArtifactCache>,
    verbose: bool,
    strict: bool,
    preflight: Option<PreflightFn>,
    store_dir: Option<PathBuf>,
    resume: bool,
    cell_cap: Option<usize>,
    fuse: bool,
    lockstep: bool,
}

impl Sweep {
    /// A sweep over `specs` with a fresh cache, automatic thread count, and
    /// strict pre-flight validation **on** (see [`Sweep::with_strict`]).
    pub fn new(specs: impl IntoIterator<Item = ExperimentSpec>) -> Self {
        Self {
            specs: specs.into_iter().collect(),
            threads: None,
            cache: Arc::new(ArtifactCache::new()),
            verbose: false,
            strict: true,
            preflight: None,
            store_dir: None,
            resume: false,
            cell_cap: None,
            fuse: true,
            lockstep: true,
        }
    }

    /// Enables or disables lockstep multi-config execution (on by default).
    ///
    /// A lockstep sweep groups runnable cells that share a measurement
    /// stream — the same `(benchmark, measure_input, seed, measure_budget)`
    /// — and drives each group's measurement passes over **one** traversal
    /// of that stream ([`Lab::run_lockstep`]) instead of one traversal per
    /// cell: an 18-cell grid over one benchmark costs one trace decode, not
    /// 18. Results are bit-identical either way (measurement passes are
    /// independent chunk-invariant consumers); traversals avoided show up
    /// in the summary's `lockstep_traversals_saved` counter. The escape
    /// hatch exists for benchmarking the win and for isolating the lockstep
    /// layer when debugging.
    pub fn with_lockstep(mut self, lockstep: bool) -> Self {
        self.lockstep = lockstep;
        self
    }

    /// Enables or disables pass fusion (on by default; see
    /// [`Lab::with_fusion`]).
    ///
    /// A fused sweep additionally *pre-warms* the cache: runnable cells
    /// sharing a profiling run — the same
    /// `(benchmark, input, seed, budget)` — pool their profile needs, so
    /// the bias profile and every distinct predictor's accuracy profile of
    /// that run are collected in **one** traversal instead of one per
    /// profile. Results are bit-identical either way; traversals avoided
    /// show up in the summary's cache counters.
    pub fn with_fusion(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Attaches a persistent run store at `dir`: profiles are cached on disk
    /// across processes and every finished cell is appended to the store's
    /// `manifest.jsonl` (see [`crate::manifest`]).
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// With a store attached, replays cells whose spec digests already
    /// appear completed in the manifest instead of re-running them. Without
    /// a store this has no effect.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Caps the number of cells actually executed this run (`0` lifts the
    /// cap); the rest come back as [`ExperimentError::Skipped`]. With a
    /// store and [`Sweep::with_resume`], a later run picks up the skipped
    /// cells — this is how the resume-equivalence harness interrupts a grid
    /// deterministically.
    pub fn with_max_cells(mut self, cap: usize) -> Self {
        self.cell_cap = (cap > 0).then_some(cap);
        self
    }

    /// Shares an existing artifact cache (e.g. a [`Lab::cache`], or the
    /// cache of a previous sweep) instead of starting cold.
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Pins the worker count (`0` restores automatic resolution).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = (threads > 0).then_some(threads);
        self
    }

    /// Prints one progress line per completed cell to stderr.
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Controls strict mode (**on** by default): every cell is gated on
    /// [`ExperimentSpec::validate`] and invalid cells come back as
    /// [`ExperimentError::Rejected`] without running — a thousand-cell grid
    /// fails fast and explainably instead of panicking mid-sweep.
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Installs an additional pre-flight validator run after strict
    /// validation (e.g. `sdbp-check`'s full coded-diagnostics pass).
    pub fn with_preflight(mut self, preflight: PreflightFn) -> Self {
        self.preflight = Some(preflight);
        self
    }

    /// The worker count [`run`](Sweep::run) will use.
    pub fn threads(&self) -> usize {
        self.threads
            .unwrap_or_else(default_threads)
            .min(self.specs.len().max(1))
    }

    /// Checks one spec against strict validation and the installed
    /// pre-flight hook, in that order.
    fn preflight_cell(&self, spec: &ExperimentSpec) -> Result<(), ExperimentError> {
        if self.strict {
            if let Err(problems) = spec.validate() {
                let reason = problems
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(ExperimentError::Rejected { reason });
            }
        }
        if let Some(preflight) = &self.preflight {
            preflight(spec).map_err(|reason| ExperimentError::Rejected { reason })?;
        }
        Ok(())
    }

    /// Executes every cell and returns the results in spec order.
    ///
    /// With a store attached (see [`Sweep::with_store`]), a failure to open
    /// the run store fails every cell with the same typed error instead of
    /// panicking; finished cells are appended to the store's manifest as
    /// they complete, resumed cells are replayed from it, and capped cells
    /// come back as [`ExperimentError::Skipped`] without touching it.
    pub fn run(self) -> SweepResult {
        let threads = self.threads();
        let rejections: Vec<Option<ExperimentError>> = self
            .specs
            .iter()
            .map(|spec| self.preflight_cell(spec).err())
            .collect();
        let run_store = match &self.store_dir {
            Some(dir) => match RunStore::open(dir, self.resume) {
                Ok(rs) => {
                    let rs = Arc::new(rs);
                    self.cache.attach_store(rs.store());
                    Some(rs)
                }
                Err(e) => {
                    let cells = self
                        .specs
                        .into_iter()
                        .enumerate()
                        .map(|(index, spec)| SweepCell {
                            index,
                            spec,
                            report: Err(e.clone()),
                            elapsed: Duration::ZERO,
                        })
                        .collect();
                    return SweepResult {
                        cells,
                        wall_time: Duration::ZERO,
                        threads,
                        cache_stats: CacheStats::default(),
                        resumed: 0,
                        skipped: 0,
                    };
                }
            },
            None => None,
        };
        let Sweep {
            specs,
            cache,
            verbose,
            resume,
            cell_cap,
            fuse,
            lockstep,
            ..
        } = self;
        let started = Instant::now();
        let before = cache.stats();

        enum Disposition {
            Run,
            Replay(Result<Report, ExperimentError>),
            Skip,
        }
        let mut runnable = 0usize;
        let dispositions: Vec<Disposition> = specs
            .iter()
            .map(|spec| {
                if resume {
                    if let Some(entry) = run_store.as_deref().and_then(|rs| rs.replay(spec)) {
                        return Disposition::Replay(entry.outcome.clone());
                    }
                }
                if cell_cap.is_some_and(|cap| runnable >= cap) {
                    return Disposition::Skip;
                }
                runnable += 1;
                Disposition::Run
            })
            .collect();
        let work: Vec<usize> = dispositions
            .iter()
            .enumerate()
            .filter_map(|(i, d)| matches!(d, Disposition::Run).then_some(i))
            .collect();

        // Pre-warm: pool the profile needs of every runnable cell by
        // profiling run, so each run's bias profile and all the accuracy
        // profiles the grid needs on it are collected in one fused
        // traversal. Workers then find everything hot. (Profiles are
        // deterministic, so racing workers would be harmless — this is
        // purely a traversal saver.)
        if fuse {
            type ProfileRun = (Benchmark, InputSet, u64, u64);
            let mut groups: Vec<(ProfileRun, Vec<PredictorConfig>)> = Vec::new();
            for &i in &work {
                let spec = &specs[i];
                if rejections[i].is_some() || spec.scheme == SelectionScheme::None {
                    continue;
                }
                let input = spec.profile.profile_input(spec.measure_input);
                let run = (spec.benchmark, input, spec.seed, spec.profile_budget());
                let predictors = match groups.iter_mut().find(|(k, _)| *k == run) {
                    Some((_, predictors)) => predictors,
                    None => {
                        groups.push((run, Vec::new()));
                        &mut groups.last_mut().expect("just pushed").1
                    }
                };
                if spec.scheme.needs_accuracy_profile() && !predictors.contains(&spec.predictor) {
                    predictors.push(spec.predictor);
                }
            }
            let next_group = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(groups.len()) {
                    scope.spawn(|| loop {
                        let g = next_group.fetch_add(1, Ordering::Relaxed);
                        let Some(((benchmark, input, seed, budget), predictors)) = groups.get(g)
                        else {
                            break;
                        };
                        let _ =
                            cache.profile_bundle(*benchmark, *input, *seed, *budget, predictors);
                    });
                }
            });
        }

        // The unit of work a worker pulls: with lockstep on, every runnable
        // cell sharing a measurement stream — the same
        // `(benchmark, measure_input, seed, measure_budget)` — forms one
        // group whose members ride a single traversal; with lockstep off (or
        // for cells whose stream is unique) groups are singletons and each
        // cell takes its own traversal, exactly the classic protocol.
        let groups: Vec<Vec<usize>> = if lockstep {
            type MeasureKey = (Benchmark, InputSet, u64, u64);
            let mut grouped: Vec<(MeasureKey, Vec<usize>)> = Vec::new();
            for &i in &work {
                let spec = &specs[i];
                let key = (
                    spec.benchmark,
                    spec.measure_input,
                    spec.seed,
                    spec.measure_budget(),
                );
                match grouped.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(i),
                    None => grouped.push((key, vec![i])),
                }
            }
            grouped.into_iter().map(|(_, members)| members).collect()
        } else {
            work.iter().map(|&i| vec![i]).collect()
        };

        let total = specs.len();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellOutcome>>> = (0..total).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let lab = Lab::with_cache(Arc::clone(&cache)).with_fusion(fuse);
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(group) = groups.get(slot) else {
                            break;
                        };
                        let group_started = Instant::now();
                        // Rejected members report without running; the rest
                        // share one traversal (a singleton group degenerates
                        // to the classic one-cell-one-traversal run).
                        let mut outcomes: Vec<Option<Result<Report, ExperimentError>>> =
                            vec![None; group.len()];
                        let mut member_pos: Vec<usize> = Vec::new();
                        let mut member_specs: Vec<&ExperimentSpec> = Vec::new();
                        for (pos, &i) in group.iter().enumerate() {
                            match &rejections[i] {
                                Some(rejection) => outcomes[pos] = Some(Err(rejection.clone())),
                                None => {
                                    member_pos.push(pos);
                                    member_specs.push(&specs[i]);
                                }
                            }
                        }
                        if member_specs.len() == 1 {
                            outcomes[member_pos[0]] = Some(lab.run(member_specs[0]));
                        } else if !member_specs.is_empty() {
                            for (pos, outcome) in
                                member_pos.iter().zip(lab.run_lockstep(&member_specs))
                            {
                                outcomes[*pos] = Some(outcome);
                            }
                        }
                        // The traversal is shared, so wall time is attributed
                        // evenly across the group's cells.
                        let elapsed = group_started.elapsed() / group.len().max(1) as u32;
                        for (&i, outcome) in group.iter().zip(outcomes) {
                            let mut report = outcome.expect("every group member settled");
                            if let Some(rs) = &run_store {
                                let entry = entry_for(i, &specs[i], &report, elapsed);
                                if let Err(e) = rs.append(&entry) {
                                    report = Err(e);
                                }
                            }
                            if verbose {
                                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                                match &report {
                                    Ok(r) => {
                                        eprintln!("  [{finished:>3}/{total}] {r}  ({elapsed:.1?})")
                                    }
                                    Err(e) => {
                                        eprintln!("  [{finished:>3}/{total}] cell {i} failed: {e}")
                                    }
                                }
                            }
                            *slots[i].lock().expect("sweep slot lock") = Some((report, elapsed));
                        }
                    }
                });
            }
        });

        let mut resumed = 0usize;
        let mut skipped = 0usize;
        let cells = specs
            .into_iter()
            .zip(slots)
            .zip(dispositions)
            .enumerate()
            .map(|(index, ((spec, slot), disposition))| {
                let (report, elapsed) = match disposition {
                    Disposition::Run => slot
                        .into_inner()
                        .expect("sweep slot lock")
                        .expect("every runnable cell was executed"),
                    Disposition::Replay(outcome) => {
                        resumed += 1;
                        (outcome, Duration::ZERO)
                    }
                    Disposition::Skip => {
                        skipped += 1;
                        let cap = cell_cap.expect("skips only happen under a cap");
                        (
                            Err(ExperimentError::Skipped {
                                reason: format!("cell cap of {cap} reached before this cell"),
                            }),
                            Duration::ZERO,
                        )
                    }
                };
                SweepCell {
                    index,
                    spec,
                    report,
                    elapsed,
                }
            })
            .collect();
        SweepResult {
            cells,
            wall_time: started.elapsed(),
            threads,
            cache_stats: cache.stats().since(&before),
            resumed,
            skipped,
        }
    }
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("cells", &self.specs.len())
            .field("threads", &self.threads())
            .finish()
    }
}

/// One executed cell of a sweep.
#[derive(Debug)]
pub struct SweepCell {
    /// Position of this cell in the input spec order.
    pub index: usize,
    /// The spec that was run.
    pub spec: ExperimentSpec,
    /// The outcome (a [`Report`], or the selection error that stopped it).
    pub report: Result<Report, ExperimentError>,
    /// Wall-clock time this cell took on its worker.
    pub elapsed: Duration,
}

/// Aggregate statistics of one workload family's cells within a sweep (see
/// [`SweepResult::family_breakdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySummary {
    /// The family the cells belong to.
    pub family: WorkloadFamily,
    /// Successful cells in this family.
    pub cells: usize,
    /// Total simulated branches across those cells.
    pub branches: u64,
    /// Aggregate misprediction density: total mispredictions per thousand
    /// simulated instructions over every successful cell of the family.
    pub misp_per_ki: f64,
    /// Aggregate MISPs/KI of the family's baseline (`scheme == "none"`)
    /// cells, when the grid contains any.
    pub baseline_misp_per_ki: Option<f64>,
    /// Relative MISPs/KI improvement of the family's static-scheme cells
    /// over its baseline cells (positive = fewer mispredictions), when the
    /// grid contains both.
    pub delta_vs_none: Option<f64>,
}

impl fmt::Display for FamilySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "family {}: {} cells, {} branches, {:.3} MISPs/KI",
            self.family, self.cells, self.branches, self.misp_per_ki
        )?;
        if let Some(delta) = self.delta_vs_none {
            write!(f, ", {:+.1}% vs none", delta * 100.0)?;
        }
        Ok(())
    }
}

/// Everything a sweep produced: per-cell results in spec order plus timing
/// and cache observability.
#[derive(Debug)]
pub struct SweepResult {
    /// The executed cells, in the order their specs were given.
    pub cells: Vec<SweepCell>,
    /// Wall-clock time of the whole sweep.
    pub wall_time: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Cache activity during this sweep (deltas, not lifetime totals).
    pub cache_stats: CacheStats,
    /// Cells replayed from a prior run's manifest instead of executing.
    pub resumed: usize,
    /// Cells not executed because the cell cap was reached.
    pub skipped: usize,
}

impl SweepResult {
    /// The reports in spec order, or the first error encountered.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest (by spec order) failed cell.
    pub fn into_reports(self) -> Result<Vec<Report>, ExperimentError> {
        self.cells.into_iter().map(|c| c.report).collect()
    }

    /// Summed per-cell compute time (the "serial equivalent" of the sweep).
    pub fn total_cell_time(&self) -> Duration {
        self.cells.iter().map(|c| c.elapsed).sum()
    }

    /// Wall-clock speedup over running the cells back to back:
    /// `total_cell_time / wall_time`.
    ///
    /// Note this understates the full benefit of the engine — cache reuse
    /// also shrinks the per-cell times themselves.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        let total = self.total_cell_time().as_secs_f64();
        // Guard the degenerate sweeps (no cells, everything replayed, or a
        // sub-resolution wall clock): report parity, never NaN/inf.
        if !wall.is_finite() || wall <= 0.0 || !total.is_finite() || total <= 0.0 {
            1.0
        } else {
            total / wall
        }
    }

    /// Total simulated branches across all successful cells.
    pub fn total_branches(&self) -> u64 {
        self.cells
            .iter()
            .filter_map(|c| c.report.as_ref().ok())
            .map(|r| r.stats.branches)
            .sum()
    }

    /// Aggregate simulation throughput: total branches of the successful
    /// cells divided by the sweep's wall-clock time. This is the engine's
    /// delivered rate (it credits both parallelism and cache reuse), not a
    /// per-kernel figure — see `sdbp bench-kernel` for those.
    pub fn branches_per_sec(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        // A zero or non-finite wall clock (empty sweep, fully replayed
        // sweep) must not turn the throughput into NaN or infinity.
        if !wall.is_finite() || wall <= 0.0 {
            0.0
        } else {
            self.total_branches() as f64 / wall
        }
    }

    /// Per-cell simulation throughput in Mbr/s — `(min, median, max)` over
    /// the successful cells that actually executed (replayed and skipped
    /// cells have no measured time and are excluded). `None` when nothing
    /// executed. The spread is the grid's per-kernel dynamic range: slow
    /// multi-bank cells sit at the min, cheap bimodal cells at the max.
    pub fn cell_throughput_mbrs(&self) -> Option<(f64, f64, f64)> {
        let mut rates: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| {
                let report = c.report.as_ref().ok()?;
                let secs = c.elapsed.as_secs_f64();
                (secs > 0.0 && secs.is_finite()).then(|| report.stats.branches as f64 / secs / 1e6)
            })
            .collect();
        if rates.is_empty() {
            return None;
        }
        rates.sort_by(f64::total_cmp);
        let median = if rates.len() % 2 == 1 {
            rates[rates.len() / 2]
        } else {
            (rates[rates.len() / 2 - 1] + rates[rates.len() / 2]) / 2.0
        };
        Some((rates[0], median, rates[rates.len() - 1]))
    }

    /// Per-family aggregates over the successful cells, in
    /// [`WorkloadFamily::ALL`] report order (families with no successful
    /// cells are omitted).
    ///
    /// Families group *comparable* streams: aggregating branch counts or
    /// MISPs/KI across SPEC95, server, and H2P cells would average
    /// incommensurable workloads, so mixed-family grids report per family.
    /// The per-family delta compares static-scheme cells against the
    /// family's `"none"`-scheme baseline cells when the grid has both.
    pub fn family_breakdown(&self) -> Vec<FamilySummary> {
        WorkloadFamily::ALL
            .iter()
            .filter_map(|&family| {
                let mut cells = 0usize;
                let mut branches = 0u64;
                let mut instructions = 0u64;
                let mut mispredictions = 0u64;
                // Baseline vs static-scheme split for the delta.
                let (mut base_i, mut base_m) = (0u64, 0u64);
                let (mut stat_i, mut stat_m) = (0u64, 0u64);
                for report in self
                    .cells
                    .iter()
                    .filter_map(|c| c.report.as_ref().ok())
                    .filter(|r| r.family() == family)
                {
                    cells += 1;
                    branches += report.stats.branches;
                    instructions += report.stats.instructions;
                    mispredictions += report.stats.mispredictions;
                    if report.scheme_label == "none" {
                        base_i += report.stats.instructions;
                        base_m += report.stats.mispredictions;
                    } else {
                        stat_i += report.stats.instructions;
                        stat_m += report.stats.mispredictions;
                    }
                }
                if cells == 0 {
                    return None;
                }
                let mpki = |m: u64, i: u64| m as f64 * 1000.0 / i as f64;
                let baseline = (base_i > 0).then(|| mpki(base_m, base_i));
                let delta = match (baseline, stat_i > 0) {
                    (Some(base), true) if base > 0.0 => Some((base - mpki(stat_m, stat_i)) / base),
                    _ => None,
                };
                Some(FamilySummary {
                    family,
                    cells,
                    branches,
                    misp_per_ki: mpki(mispredictions, instructions),
                    baseline_misp_per_ki: baseline,
                    delta_vs_none: delta,
                })
            })
            .collect()
    }

    /// A one-line summary: cell count, threads, wall time, speedup,
    /// aggregate branch throughput, per-cell throughput spread, and cache
    /// hit/miss counters (including traversals saved by fusion and
    /// lockstep). Grids spanning **several** workload families append one
    /// line per family (cells, branches, MISPs/KI, delta vs the `"none"`
    /// baseline) instead of letting incomparable streams hide behind the
    /// aggregate numbers; single-family summaries are unchanged.
    pub fn summary(&self) -> String {
        let mut summary = format!(
            "{} cells on {} threads in {:.2?} (cell time {:.2?}, {:.1}x, {:.1} Mbr/s); {}",
            self.cells.len(),
            self.threads,
            self.wall_time,
            self.total_cell_time(),
            self.speedup(),
            self.branches_per_sec() / 1e6,
            self.cache_stats,
        );
        if let Some((min, median, max)) = self.cell_throughput_mbrs() {
            summary.push_str(&format!(
                "; cell Mbr/s min/med/max {min:.1}/{median:.1}/{max:.1}"
            ));
        }
        if self.resumed > 0 {
            summary.push_str(&format!("; {} replayed from manifest", self.resumed));
        }
        if self.skipped > 0 {
            summary.push_str(&format!("; {} skipped at cell cap", self.skipped));
        }
        let families = self.family_breakdown();
        if families.len() >= 2 {
            for family in families {
                summary.push_str(&format!("\n  {family}"));
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::{PredictorConfig, PredictorKind};
    use sdbp_profiles::SelectionScheme;
    use sdbp_workloads::Benchmark;

    fn grid() -> Vec<ExperimentSpec> {
        let mut specs = Vec::new();
        for benchmark in [Benchmark::Compress, Benchmark::Go] {
            for size in [512usize, 1024] {
                for scheme in [SelectionScheme::None, SelectionScheme::static_acc()] {
                    specs.push(
                        ExperimentSpec::self_trained(
                            benchmark,
                            PredictorConfig::new(PredictorKind::Gshare, size).unwrap(),
                            scheme,
                        )
                        .with_instructions(120_000),
                    );
                }
            }
        }
        specs
    }

    #[test]
    fn results_come_back_in_spec_order() {
        let specs = grid();
        let result = Sweep::new(specs.clone()).with_threads(4).run();
        assert_eq!(result.cells.len(), specs.len());
        for (i, cell) in result.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.spec, specs[i]);
            let report = cell.report.as_ref().unwrap();
            assert_eq!(report.benchmark, specs[i].benchmark);
            assert_eq!(report.predictor, specs[i].predictor);
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let specs = grid();
        let lab = Lab::new();
        let serial: Vec<_> = specs.iter().map(|s| lab.run(s).unwrap()).collect();
        let parallel = Sweep::new(specs)
            .with_threads(4)
            .run()
            .into_reports()
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fusion_off_matches_fused_results_bit_for_bit() {
        let fused = Sweep::new(grid()).with_threads(2).run();
        let unfused = Sweep::new(grid()).with_threads(2).with_fusion(false).run();
        // grid(): per benchmark, one profiling run feeds a bias profile and
        // two accuracy profiles (512 B and 1 KB gshare) — fusing the three
        // saves two traversals, times two benchmarks.
        assert_eq!(
            fused.cache_stats.fused_traversals_saved, 4,
            "{}",
            fused.cache_stats
        );
        assert_eq!(unfused.cache_stats.fused_traversals_saved, 0);
        assert_eq!(
            fused.into_reports().unwrap(),
            unfused.into_reports().unwrap(),
            "fusion must not change a single bit of the results"
        );
    }

    #[test]
    fn lockstep_off_matches_lockstep_results_bit_for_bit() {
        let locked = Sweep::new(grid()).with_threads(2).run();
        let sequential = Sweep::new(grid())
            .with_threads(2)
            .with_lockstep(false)
            .run();
        // grid(): two measurement streams (one per benchmark), four cells
        // each — lockstep saves three traversals per stream.
        assert_eq!(
            locked.cache_stats.lockstep_traversals_saved, 6,
            "{}",
            locked.cache_stats
        );
        assert_eq!(sequential.cache_stats.lockstep_traversals_saved, 0);
        assert_eq!(
            locked.into_reports().unwrap(),
            sequential.into_reports().unwrap(),
            "lockstep must not change a single bit of the results"
        );
    }

    #[test]
    fn lockstep_groups_survive_rejected_members() {
        let mut specs = grid();
        specs[0].measure_instructions = Some(0); // strict-mode rejection
        let result = Sweep::new(specs.clone()).with_threads(2).run();
        assert!(matches!(
            result.cells[0].report,
            Err(ExperimentError::Rejected { .. })
        ));
        let baseline = Sweep::new(specs).with_threads(2).with_lockstep(false).run();
        for (locked, sequential) in result.cells.iter().zip(&baseline.cells).skip(1) {
            assert_eq!(
                locked.report.as_ref().unwrap(),
                sequential.report.as_ref().unwrap()
            );
        }
    }

    #[test]
    fn shared_cache_turns_repeat_sweeps_into_hits() {
        let cache = Arc::new(ArtifactCache::new());
        let first = Sweep::new(grid())
            .with_cache(Arc::clone(&cache))
            .with_threads(2)
            .run();
        assert!(first.cache_stats.misses() > 0);
        let second = Sweep::new(grid())
            .with_cache(Arc::clone(&cache))
            .with_threads(2)
            .run();
        assert_eq!(
            second.cache_stats.bias_misses + second.cache_stats.accuracy_misses,
            0,
            "second identical sweep must reuse every profile: {}",
            second.cache_stats
        );
    }

    #[test]
    fn thread_count_clamps_to_cells() {
        let sweep = Sweep::new(grid()).with_threads(64);
        assert_eq!(sweep.threads(), 8);
        let empty = Sweep::new(Vec::new()).with_threads(64);
        assert_eq!(empty.threads(), 1);
        assert_eq!(empty.run().cells.len(), 0);
    }

    #[test]
    fn single_thread_sweep_works() {
        let result = Sweep::new(grid()[..2].to_vec()).with_threads(1).run();
        assert_eq!(result.threads, 1);
        assert!(result.into_reports().is_ok());
    }

    #[test]
    fn strict_mode_rejects_invalid_cells_and_runs_the_rest() {
        let mut specs = grid();
        specs[1].measure_instructions = Some(0);
        let result = Sweep::new(specs).with_threads(2).run();
        match &result.cells[1].report {
            Err(ExperimentError::Rejected { reason }) => {
                assert!(reason.contains("measurement budget"), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        for (i, cell) in result.cells.iter().enumerate() {
            if i != 1 {
                assert!(cell.report.is_ok(), "cell {i}: {:?}", cell.report);
            }
        }
    }

    #[test]
    fn custom_preflight_hook_runs_after_strict_validation() {
        let specs = grid();
        let result = Sweep::new(specs)
            .with_threads(2)
            .with_preflight(Arc::new(|spec: &ExperimentSpec| {
                if spec.predictor.size_bytes() < 1024 {
                    Err("policy: tables under 1 KB are not allowed".to_string())
                } else {
                    Ok(())
                }
            }))
            .run();
        for cell in &result.cells {
            if cell.spec.predictor.size_bytes() < 1024 {
                assert!(
                    matches!(cell.report, Err(ExperimentError::Rejected { .. })),
                    "{:?}",
                    cell.report
                );
            } else {
                assert!(cell.report.is_ok());
            }
        }
    }

    #[test]
    fn strict_mode_can_be_disabled() {
        let mut specs = grid()[..2].to_vec();
        specs[0].warmup_instructions = u64::MAX;
        let lax = Sweep::new(specs).with_strict(false).with_threads(1).run();
        assert!(
            lax.cells[0].report.is_ok(),
            "lax mode runs the degenerate cell: {:?}",
            lax.cells[0].report
        );
    }

    #[test]
    fn degenerate_sweeps_never_produce_nan_throughput() {
        let empty = Sweep::new(Vec::new()).with_threads(1).run();
        assert!(empty.speedup().is_finite(), "{}", empty.speedup());
        assert!(
            empty.branches_per_sec().is_finite(),
            "{}",
            empty.branches_per_sec()
        );
        let summary = empty.summary();
        assert!(!summary.contains("NaN"), "{summary}");
        assert!(!summary.contains("inf"), "{summary}");

        // A hand-built result with a zero wall clock (every cell replayed).
        let zero_wall = SweepResult {
            cells: Vec::new(),
            wall_time: Duration::ZERO,
            threads: 1,
            cache_stats: CacheStats::default(),
            resumed: 3,
            skipped: 0,
        };
        assert_eq!(zero_wall.speedup(), 1.0);
        assert_eq!(zero_wall.branches_per_sec(), 0.0);
        let summary = zero_wall.summary();
        assert!(!summary.contains("NaN"), "{summary}");
        assert!(summary.contains("3 replayed from manifest"), "{summary}");
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdbp-sweep-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_records_a_manifest_and_resume_replays_it() {
        use crate::manifest::{RunManifest, RunStore};

        let root = temp_root("resume");
        let full = Sweep::new(grid()).with_threads(2).run();
        let full_reports = full.into_reports().unwrap();

        // Interrupted run: only the first 3 cells execute.
        let partial = Sweep::new(grid())
            .with_threads(2)
            .with_store(&root)
            .with_max_cells(3)
            .run();
        assert_eq!(partial.skipped, grid().len() - 3);
        assert!(matches!(
            partial.cells[5].report,
            Err(ExperimentError::Skipped { .. })
        ));
        let text = std::fs::read_to_string(RunStore::manifest_path(&root)).unwrap();
        assert_eq!(RunManifest::parse(&text).unwrap().entries.len(), 3);

        // Resumed run: replays 3, executes the remaining 5.
        let resumed = Sweep::new(grid())
            .with_threads(2)
            .with_store(&root)
            .with_resume(true)
            .run();
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.skipped, 0);
        assert!(
            resumed.cache_stats.disk_hits > 0,
            "resume must hit the profile disk tier: {}",
            resumed.cache_stats
        );
        let resumed_reports = resumed.into_reports().unwrap();
        assert_eq!(resumed_reports, full_reports, "resume is bit-identical");

        // The final manifest covers every cell and matches an uninterrupted
        // store-backed run in canonical form.
        let text = std::fs::read_to_string(RunStore::manifest_path(&root)).unwrap();
        let final_manifest = RunManifest::parse(&text).unwrap();
        assert_eq!(final_manifest.entries.len(), grid().len());

        let clean_root = temp_root("clean");
        let _ = Sweep::new(grid())
            .with_threads(2)
            .with_store(&clean_root)
            .run();
        let clean_text = std::fs::read_to_string(RunStore::manifest_path(&clean_root)).unwrap();
        let clean_manifest = RunManifest::parse(&clean_text).unwrap();
        assert_eq!(final_manifest.canonical(), clean_manifest.canonical());

        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&clean_root);
    }

    #[test]
    fn unopenable_store_fails_every_cell_with_a_typed_error() {
        // A file where the store directory should be.
        let root = temp_root("blocked");
        std::fs::create_dir_all(&root).unwrap();
        let blocker = root.join("not-a-dir");
        std::fs::write(&blocker, b"in the way").unwrap();
        let result = Sweep::new(grid()[..2].to_vec())
            .with_threads(1)
            .with_store(&blocker)
            .run();
        for cell in &result.cells {
            assert!(
                matches!(cell.report, Err(ExperimentError::Io { .. })),
                "{:?}",
                cell.report
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn single_family_summaries_stay_unlabeled() {
        let result = Sweep::new(grid()).with_threads(2).run();
        assert_eq!(result.family_breakdown().len(), 1);
        assert!(
            !result.summary().contains("family "),
            "{}",
            result.summary()
        );
    }

    #[test]
    fn mixed_family_grids_report_per_family() {
        let mut specs = grid();
        for scheme in [SelectionScheme::None, SelectionScheme::static_acc()] {
            specs.push(
                ExperimentSpec::self_trained(
                    Benchmark::H2pChurn,
                    PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
                    scheme,
                )
                .with_instructions(120_000),
            );
        }
        let result = Sweep::new(specs).with_threads(2).run();
        let families = result.family_breakdown();
        assert_eq!(families.len(), 2);
        assert_eq!(families[0].family, WorkloadFamily::Spec95);
        assert_eq!(families[0].cells, 8);
        assert_eq!(families[1].family, WorkloadFamily::H2p);
        assert_eq!(families[1].cells, 2);
        for f in &families {
            assert!(f.misp_per_ki > 0.0, "{f}");
            assert!(f.baseline_misp_per_ki.is_some(), "{f}");
            assert!(f.delta_vs_none.is_some(), "{f}");
        }
        // The coin-flip family mispredicts far more densely than SPEC95 —
        // exactly the incomparability the per-family split exists for.
        assert!(families[1].misp_per_ki > families[0].misp_per_ki);
        let summary = result.summary();
        assert!(summary.contains("family spec95:"), "{summary}");
        assert!(summary.contains("family h2p:"), "{summary}");
        assert!(summary.contains("% vs none"), "{summary}");
    }

    #[test]
    fn summary_reports_observability() {
        let result = Sweep::new(grid()).with_threads(2).run();
        let summary = result.summary();
        assert!(summary.contains("8 cells on 2 threads"), "{summary}");
        assert!(summary.contains("cache"), "{summary}");
        assert!(summary.contains("Mbr/s"), "{summary}");
        assert!(summary.contains("cell Mbr/s min/med/max"), "{summary}");
        assert!(
            summary.contains("traversals saved by lockstep"),
            "{summary}"
        );
        assert!(result.total_branches() > 0);
        assert!(result.branches_per_sec() > 0.0, "{summary}");
        let (min, median, max) = result.cell_throughput_mbrs().unwrap();
        assert!(min > 0.0 && min <= median && median <= max, "{summary}");
    }
}
