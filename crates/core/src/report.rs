//! Experiment reports.

use crate::combined::ShiftPolicy;
use crate::metrics::SimStats;
use sdbp_predictors::PredictorConfig;
use sdbp_workloads::{Benchmark, InputSet};
use std::fmt;

/// The result of one experiment: configuration echo plus measured statistics.
///
/// Reports are what the harness binaries print and what `EXPERIMENTS.md`
/// records next to the paper's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The workload.
    pub benchmark: Benchmark,
    /// The dynamic predictor configuration.
    pub predictor: PredictorConfig,
    /// The static selection scheme label (`"none"`, `"static_95"`, …).
    pub scheme_label: String,
    /// The history shift policy for static branches.
    pub shift: ShiftPolicy,
    /// The input the measurement ran on.
    pub measure_input: InputSet,
    /// Number of branches statically predicted by the hint database.
    pub hints: usize,
    /// The measured statistics.
    pub stats: SimStats,
}

impl Report {
    /// The workload family the report's cell belongs to (see
    /// [`Benchmark::family`]), the grouping axis for per-family summaries.
    pub fn family(&self) -> sdbp_workloads::WorkloadFamily {
        self.benchmark.family()
    }

    /// Relative MISPs/KI improvement of `self` over `baseline` — positive
    /// when `self` mispredicts less, matching the sign convention of the
    /// paper's Tables 3 and 4.
    pub fn improvement_over(&self, baseline: &Report) -> f64 {
        self.stats.improvement_over(&baseline.stats)
    }

    /// A one-line summary (benchmark, predictor, scheme, MISPs/KI).
    pub fn summary(&self) -> String {
        format!(
            "{:<9} {:<14} {:<11} {:<8} {:>8.3} MISPs/KI  acc {:>6.2}%  {} hints  {} collisions",
            self.benchmark.name(),
            self.predictor.to_string(),
            self.scheme_label,
            self.shift.label(),
            self.stats.misp_per_ki(),
            self.stats.accuracy() * 100.0,
            self.hints,
            self.stats.collisions.total,
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::PredictorKind;

    fn report(misp: u64) -> Report {
        Report {
            benchmark: Benchmark::Gcc,
            predictor: PredictorConfig::new(PredictorKind::Gshare, 4096).unwrap(),
            scheme_label: "static_95".into(),
            shift: ShiftPolicy::NoShift,
            measure_input: InputSet::Ref,
            hints: 123,
            stats: SimStats {
                instructions: 100_000,
                branches: 10_000,
                mispredictions: misp,
                ..SimStats::default()
            },
        }
    }

    #[test]
    fn improvement_sign_convention() {
        let base = report(1000);
        let better = report(900);
        assert!((better.improvement_over(&base) - 0.10).abs() < 1e-12);
        assert!(base.improvement_over(&better) < 0.0);
    }

    #[test]
    fn summary_mentions_configuration() {
        let r = report(500);
        let s = r.to_string();
        assert!(s.contains("gcc"));
        assert!(s.contains("gshare 4KB"));
        assert!(s.contains("static_95"));
        assert!(s.contains("MISPs/KI"));
        assert!(s.contains("123 hints"));
    }
}
