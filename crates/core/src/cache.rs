//! The memoized artifact cache shared by serial labs and parallel sweeps.
//!
//! Every cell of a paper-style grid (predictor × size × scheme × benchmark)
//! needs the same expensive artifacts: the generated branch event stream of
//! a `(benchmark, input, seed, instruction budget)` run, the bias profile of
//! that run, and — for accuracy-based selection schemes — the per-branch
//! accuracy profile of a given predictor on it. [`ArtifactCache`] computes
//! each artifact **once per key** and shares it via [`Arc`] across every
//! experiment (and every worker thread) that asks, instead of once per
//! experiment as the pre-sweep [`Lab`](crate::Lab) did.
//!
//! The cache is fully thread-safe: keys are claimed under a short-lived map
//! lock, and the artifact itself is produced inside a per-key
//! [`OnceLock`], so two threads racing on the *same* key block only each
//! other while threads working on *different* keys proceed in parallel.
//! Because generation is deterministic (seeded [`sdbp_util`] RNG all the
//! way down), a cached artifact is bit-identical to a freshly computed one —
//! which is what keeps parallel sweeps bit-identical to serial runs.
//!
//! Event streams dominate memory (tens of MB per default-budget run), so
//! the trace store is bounded: completed traces are evicted
//! least-recently-used once their summed instruction budgets exceed a cap
//! (default 128 M instructions, override with `SDBP_TRACE_CACHE`; `0`
//! disables trace caching entirely). Profiles are small and never evicted.

use sdbp_artifacts::{Codec, Digest, Hasher, Store, StoreError};
use sdbp_passes::{Pass, PassRunner, TraversalStats};
use sdbp_predictors::PredictorConfig;
use sdbp_profiles::{AccuracyPass, AccuracyProfile, BiasPass, BiasProfile};
use sdbp_trace::{BranchEvent, BranchSource, SliceSource};
use sdbp_workloads::{imports, open_source, Benchmark, InputSet};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The memoization key: a fully determined generated run.
///
/// Two experiments share artifacts exactly when all four components match;
/// in particular the same benchmark under a **different seed is a miss**
/// (its event stream is a different random draw).
pub type ArtifactKey = (Benchmark, InputSet, u64, u64);

/// Default trace-store capacity in summed instruction budgets.
pub const DEFAULT_TRACE_CACHE_INSTRUCTIONS: u64 = 128_000_000;

/// Hit/miss counters of an [`ArtifactCache`], observable at any time.
///
/// A *miss* is a call that performed the computation; a *hit* found the
/// artifact already present (or waited for another thread computing it).
/// `trace_bypassed` counts event streams regenerated without caching
/// because their budget exceeded the trace-store capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Bias-profile lookups served from the cache.
    pub bias_hits: u64,
    /// Bias-profile lookups that computed the profile.
    pub bias_misses: u64,
    /// Accuracy-profile lookups served from the cache.
    pub accuracy_hits: u64,
    /// Accuracy-profile lookups that computed the profile.
    pub accuracy_misses: u64,
    /// Event-stream lookups served from the cache.
    pub trace_hits: u64,
    /// Event-stream lookups that generated (and cached) the stream.
    pub trace_misses: u64,
    /// Event-stream lookups too large for the store, regenerated uncached.
    pub trace_bypassed: u64,
    /// Profile computations avoided by reading the persistent disk tier.
    pub disk_hits: u64,
    /// Disk-tier probes that found nothing usable (absent, damaged, or
    /// unreadable) and fell through to computation.
    pub disk_misses: u64,
    /// Whole-trace traversals avoided by pass fusion: a fused call that
    /// computed `m` artifacts in one traversal saves `m - 1` traversals
    /// over the sequential one-artifact-per-traversal protocol.
    pub fused_traversals_saved: u64,
    /// Whole-trace traversals avoided by lockstep multi-config execution: a
    /// lockstep group that measured `m` predictor configurations over one
    /// shared traversal saves `m - 1` traversals over the sequential
    /// one-cell-per-traversal protocol.
    pub lockstep_traversals_saved: u64,
}

impl CacheStats {
    /// Total lookups served from the in-memory cache. The disk tier is
    /// counted separately (`disk_hits`/`disk_misses`): a disk hit is still a
    /// memory miss that was satisfied without recomputation.
    pub fn hits(&self) -> u64 {
        self.bias_hits + self.accuracy_hits + self.trace_hits
    }

    /// Total lookups that had to compute their artifact.
    pub fn misses(&self) -> u64 {
        self.bias_misses + self.accuracy_misses + self.trace_misses + self.trace_bypassed
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// The counter deltas accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            bias_hits: self.bias_hits - earlier.bias_hits,
            bias_misses: self.bias_misses - earlier.bias_misses,
            accuracy_hits: self.accuracy_hits - earlier.accuracy_hits,
            accuracy_misses: self.accuracy_misses - earlier.accuracy_misses,
            trace_hits: self.trace_hits - earlier.trace_hits,
            trace_misses: self.trace_misses - earlier.trace_misses,
            trace_bypassed: self.trace_bypassed - earlier.trace_bypassed,
            disk_hits: self.disk_hits - earlier.disk_hits,
            disk_misses: self.disk_misses - earlier.disk_misses,
            fused_traversals_saved: self.fused_traversals_saved - earlier.fused_traversals_saved,
            lockstep_traversals_saved: self.lockstep_traversals_saved
                - earlier.lockstep_traversals_saved,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache {:.0}% hit (traces {}/{}, bias {}/{}, accuracy {}/{} hit/miss{})",
            self.hit_rate() * 100.0,
            self.trace_hits,
            self.trace_misses,
            self.bias_hits,
            self.bias_misses,
            self.accuracy_hits,
            self.accuracy_misses,
            if self.trace_bypassed > 0 {
                format!(", {} bypassed", self.trace_bypassed)
            } else {
                String::new()
            }
        )?;
        if self.disk_hits + self.disk_misses > 0 {
            write!(f, ", disk {}/{} hit/miss", self.disk_hits, self.disk_misses)?;
        }
        if self.fused_traversals_saved > 0 {
            write!(
                f,
                ", {} traversals saved by fusion",
                self.fused_traversals_saved
            )?;
        }
        if self.lockstep_traversals_saved > 0 {
            write!(
                f,
                ", {} traversals saved by lockstep",
                self.lockstep_traversals_saved
            )?;
        }
        Ok(())
    }
}

type Slot<T> = Arc<OnceLock<Arc<T>>>;

struct TraceEntry {
    slot: Slot<Vec<BranchEvent>>,
    instructions: u64,
    last_use: u64,
}

struct TraceStore {
    entries: HashMap<ArtifactKey, TraceEntry>,
    capacity: u64,
    tick: u64,
}

/// Thread-safe memoization of generated event streams and profiles.
///
/// See the [module docs](self) for the caching and eviction policy. Share
/// one cache across many [`Lab`](crate::Lab)s / [`Sweep`](crate::Sweep)s by
/// cloning the surrounding [`Arc`].
pub struct ArtifactCache {
    bias: Mutex<HashMap<ArtifactKey, Slot<BiasProfile>>>,
    accuracy: Mutex<HashMap<(ArtifactKey, PredictorConfig), Slot<AccuracyProfile>>>,
    traces: Mutex<TraceStore>,
    disk: OnceLock<Arc<Store>>,
    bias_hits: AtomicU64,
    bias_misses: AtomicU64,
    accuracy_hits: AtomicU64,
    accuracy_misses: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    trace_bypassed: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    fused_traversals_saved: AtomicU64,
    lockstep_traversals_saved: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache with the default trace-store capacity, honouring the
    /// `SDBP_TRACE_CACHE` environment override (instructions; `0` disables
    /// trace caching).
    pub fn new() -> Self {
        let capacity = std::env::var("SDBP_TRACE_CACHE")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_TRACE_CACHE_INSTRUCTIONS);
        Self::with_trace_capacity(capacity)
    }

    /// An empty cache whose trace store holds at most `capacity` summed
    /// instruction budgets (`0` disables trace caching).
    pub fn with_trace_capacity(capacity: u64) -> Self {
        Self {
            bias: Mutex::new(HashMap::new()),
            accuracy: Mutex::new(HashMap::new()),
            traces: Mutex::new(TraceStore {
                entries: HashMap::new(),
                capacity,
                tick: 0,
            }),
            disk: OnceLock::new(),
            bias_hits: AtomicU64::new(0),
            bias_misses: AtomicU64::new(0),
            accuracy_hits: AtomicU64::new(0),
            accuracy_misses: AtomicU64::new(0),
            trace_hits: AtomicU64::new(0),
            trace_misses: AtomicU64::new(0),
            trace_bypassed: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            fused_traversals_saved: AtomicU64::new(0),
            lockstep_traversals_saved: AtomicU64::new(0),
        }
    }

    /// Attaches a persistent disk tier: profile lookups that miss in memory
    /// first probe `store` (keyed by [`bias_profile_digest`] /
    /// [`accuracy_profile_digest`] links) and persist what they compute.
    /// Damaged entries self-heal — they are deleted and recomputed, never
    /// surfaced. At most one store can be attached; later calls are ignored.
    pub fn attach_store(&self, store: Arc<Store>) {
        let _ = self.disk.set(store);
    }

    /// The attached disk tier, if any.
    pub fn disk_store(&self) -> Option<Arc<Store>> {
        self.disk.get().cloned()
    }

    /// A snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            bias_hits: self.bias_hits.load(Ordering::Relaxed),
            bias_misses: self.bias_misses.load(Ordering::Relaxed),
            accuracy_hits: self.accuracy_hits.load(Ordering::Relaxed),
            accuracy_misses: self.accuracy_misses.load(Ordering::Relaxed),
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            trace_bypassed: self.trace_bypassed.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            fused_traversals_saved: self.fused_traversals_saved.load(Ordering::Relaxed),
            lockstep_traversals_saved: self.lockstep_traversals_saved.load(Ordering::Relaxed),
        }
    }

    /// Records `n` whole-trace traversals avoided by lockstep multi-config
    /// execution (a group of `m` measurement cells sharing one traversal
    /// records `m - 1`). Observable as
    /// [`CacheStats::lockstep_traversals_saved`].
    pub fn note_lockstep_saved(&self, n: u64) {
        if n > 0 {
            self.lockstep_traversals_saved
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Number of distinct bias profiles held.
    pub fn bias_profiles(&self) -> usize {
        self.bias.lock().expect("cache lock").len()
    }

    /// Number of distinct accuracy profiles held.
    pub fn accuracy_profiles(&self) -> usize {
        self.accuracy.lock().expect("cache lock").len()
    }

    /// Number of event streams currently resident in the trace store.
    pub fn cached_traces(&self) -> usize {
        self.traces.lock().expect("cache lock").entries.len()
    }

    /// The (cached) branch event stream of a generated run.
    ///
    /// Streams whose budget exceeds the trace-store capacity are generated
    /// fresh on every call and never cached (counted as `trace_bypassed`).
    pub fn events(
        &self,
        benchmark: Benchmark,
        input: InputSet,
        seed: u64,
        instructions: u64,
    ) -> Arc<Vec<BranchEvent>> {
        let key = (benchmark, input, seed, instructions);
        let capacity = self.traces.lock().expect("cache lock").capacity;
        if instructions > capacity {
            self.trace_bypassed.fetch_add(1, Ordering::Relaxed);
            return Arc::new(generate_events(key));
        }
        let slot = {
            let mut store = self.traces.lock().expect("cache lock");
            store.tick += 1;
            let tick = store.tick;
            let entry = store.entries.entry(key).or_insert_with(|| TraceEntry {
                slot: Arc::new(OnceLock::new()),
                instructions,
                last_use: tick,
            });
            entry.last_use = tick;
            Arc::clone(&entry.slot)
        };
        let mut computed = false;
        let events = slot.get_or_init(|| {
            computed = true;
            Arc::new(generate_events(key))
        });
        if computed {
            self.trace_misses.fetch_add(1, Ordering::Relaxed);
            self.evict_lru(key);
        } else {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(events)
    }

    /// Streams one generated run through `passes` in a single traversal.
    ///
    /// This is the cache-aware entry point of the pass framework: cached
    /// streams are replayed zero-copy from the trace store (with the usual
    /// hit/miss accounting), while streams whose budget exceeds the store
    /// capacity are generated **once for the whole traversal** and fed to
    /// every pass chunk-by-chunk — peak memory is bounded by the runner's
    /// chunk size, not the trace length, and `trace_bypassed` counts one
    /// generation per traversal rather than one per consumer.
    pub fn run_passes(
        &self,
        benchmark: Benchmark,
        input: InputSet,
        seed: u64,
        instructions: u64,
        passes: &mut [&mut dyn Pass],
    ) -> TraversalStats {
        let capacity = self.traces.lock().expect("cache lock").capacity;
        if instructions > capacity {
            self.trace_bypassed.fetch_add(1, Ordering::Relaxed);
            let source = open_source(benchmark, input, seed).take_instructions(instructions);
            return PassRunner::new().run(source, passes);
        }
        let events = self.events(benchmark, input, seed, instructions);
        PassRunner::new().run(SliceSource::new(&events), passes)
    }

    /// The (cached) bias profile of a run **and** the accuracy profiles of
    /// every predictor in `predictors` on it, computing whatever is missing
    /// in one fused traversal.
    ///
    /// Semantically equivalent to one [`ArtifactCache::bias_profile`] call
    /// plus one [`ArtifactCache::accuracy_profile`] call per predictor —
    /// same artifacts (bit-identical, since every pass is chunk-invariant),
    /// same hit/miss/disk accounting — but all artifacts that are in neither
    /// the memory nor the disk tier are collected in a **single** traversal
    /// of the event stream instead of one traversal each. The traversals
    /// avoided that way are counted in
    /// [`CacheStats::fused_traversals_saved`].
    ///
    /// Accuracy profiles are returned in `predictors` order.
    pub fn profile_bundle(
        &self,
        benchmark: Benchmark,
        input: InputSet,
        seed: u64,
        instructions: u64,
        predictors: &[PredictorConfig],
    ) -> (Arc<BiasProfile>, Vec<Arc<AccuracyProfile>>) {
        let key = (benchmark, input, seed, instructions);
        // Claim every slot up front (short map locks, as in the sequential
        // paths), then decide which artifacts actually need computing.
        let bias_slot = {
            let mut map = self.bias.lock().expect("cache lock");
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        let acc_slots: Vec<Slot<AccuracyProfile>> = {
            let mut map = self.accuracy.lock().expect("cache lock");
            predictors
                .iter()
                .map(|&p| {
                    Arc::clone(
                        map.entry((key, p))
                            .or_insert_with(|| Arc::new(OnceLock::new())),
                    )
                })
                .collect()
        };

        // Probe the disk tier for each artifact that is cold in memory —
        // mirroring the sequential lookups, which only touch disk on a
        // memory miss. Whatever the disk cannot supply joins the fused
        // traversal.
        let mut bias_value: Option<Arc<BiasProfile>> = None;
        let mut bias_cold = false;
        if bias_slot.get().is_none() {
            let disk_key = bias_profile_digest(benchmark, input, seed, instructions);
            match self.disk_fetch::<BiasProfile>(disk_key) {
                Some(stored) => bias_value = Some(Arc::new(stored)),
                None => bias_cold = true,
            }
        }
        let mut acc_values: Vec<Option<Arc<AccuracyProfile>>> = vec![None; predictors.len()];
        let mut acc_cold: Vec<usize> = Vec::new();
        for (i, (&predictor, slot)) in predictors.iter().zip(&acc_slots).enumerate() {
            if slot.get().is_some() {
                continue;
            }
            let disk_key = accuracy_profile_digest(benchmark, input, seed, instructions, predictor);
            match self.disk_fetch::<AccuracyProfile>(disk_key) {
                Some(stored) => acc_values[i] = Some(Arc::new(stored)),
                None => acc_cold.push(i),
            }
        }

        // One traversal computes every cold artifact simultaneously. Two
        // threads racing on overlapping bundles may both compute; the slots
        // below keep exactly one copy (results are deterministic, so either
        // copy is bit-identical).
        if bias_cold || !acc_cold.is_empty() {
            let mut bias_pass = bias_cold.then(BiasPass::new);
            let mut engines: Vec<_> = acc_cold
                .iter()
                .map(|&i| predictors[i].build_any())
                .collect();
            let mut acc_passes: Vec<_> = engines.iter_mut().map(AccuracyPass::new).collect();
            let mut passes: Vec<&mut dyn Pass> = Vec::new();
            if let Some(p) = bias_pass.as_mut() {
                passes.push(p);
            }
            for p in acc_passes.iter_mut() {
                passes.push(p);
            }
            let fused = passes.len() as u64;
            self.run_passes(benchmark, input, seed, instructions, &mut passes);
            if fused > 1 {
                self.fused_traversals_saved
                    .fetch_add(fused - 1, Ordering::Relaxed);
            }
            if let Some(pass) = bias_pass {
                let profile = Arc::new(pass.into_profile());
                let disk_key = bias_profile_digest(benchmark, input, seed, instructions);
                self.disk_persist(disk_key, &*profile);
                bias_value = Some(profile);
            }
            for (&i, pass) in acc_cold.iter().zip(acc_passes) {
                let profile = Arc::new(pass.into_profile());
                let disk_key =
                    accuracy_profile_digest(benchmark, input, seed, instructions, predictors[i]);
                self.disk_persist(disk_key, &*profile);
                acc_values[i] = Some(profile);
            }
        }

        // Fill the slots and settle the counters: an artifact we computed
        // (or revived from disk) is a miss, one already present — including
        // one another thread filled while we worked — is a hit.
        let bias = {
            let mut computed = false;
            let profile = bias_slot.get_or_init(|| {
                computed = true;
                bias_value.expect("cold bias computed above")
            });
            let counter = if computed {
                &self.bias_misses
            } else {
                &self.bias_hits
            };
            counter.fetch_add(1, Ordering::Relaxed);
            Arc::clone(profile)
        };
        let accuracies = acc_slots
            .into_iter()
            .zip(acc_values)
            .map(|(slot, value)| {
                let mut computed = false;
                let profile = slot.get_or_init(|| {
                    computed = true;
                    value.expect("cold accuracy computed above")
                });
                let counter = if computed {
                    &self.accuracy_misses
                } else {
                    &self.accuracy_hits
                };
                counter.fetch_add(1, Ordering::Relaxed);
                Arc::clone(profile)
            })
            .collect();
        (bias, accuracies)
    }

    /// Drops completed least-recently-used traces until the store fits its
    /// capacity again (never the entry just touched).
    fn evict_lru(&self, keep: ArtifactKey) {
        let mut store = self.traces.lock().expect("cache lock");
        let mut total: u64 = store
            .entries
            .values()
            .filter(|e| e.slot.get().is_some())
            .map(|e| e.instructions)
            .sum();
        while total > store.capacity {
            let Some((&victim, _)) = store
                .entries
                .iter()
                .filter(|(k, e)| **k != keep && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_use)
            else {
                break;
            };
            let removed = store.entries.remove(&victim).expect("victim present");
            total -= removed.instructions;
        }
    }

    /// The (cached) bias profile of a generated run.
    pub fn bias_profile(
        &self,
        benchmark: Benchmark,
        input: InputSet,
        seed: u64,
        instructions: u64,
    ) -> Arc<BiasProfile> {
        let key = (benchmark, input, seed, instructions);
        let slot = {
            let mut map = self.bias.lock().expect("cache lock");
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        let mut computed = false;
        let profile = slot.get_or_init(|| {
            computed = true;
            let disk_key = bias_profile_digest(benchmark, input, seed, instructions);
            if let Some(stored) = self.disk_fetch::<BiasProfile>(disk_key) {
                return Arc::new(stored);
            }
            let events = self.events(benchmark, input, seed, instructions);
            let profile = Arc::new(BiasProfile::from_source(SliceSource::new(&events)));
            self.disk_persist(disk_key, &*profile);
            profile
        });
        let counter = if computed {
            &self.bias_misses
        } else {
            &self.bias_hits
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Arc::clone(profile)
    }

    /// The (cached) per-branch accuracy profile of `predictor` on a
    /// generated run.
    pub fn accuracy_profile(
        &self,
        benchmark: Benchmark,
        input: InputSet,
        seed: u64,
        instructions: u64,
        predictor: PredictorConfig,
    ) -> Arc<AccuracyProfile> {
        let key = ((benchmark, input, seed, instructions), predictor);
        let slot = {
            let mut map = self.accuracy.lock().expect("cache lock");
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        let mut computed = false;
        let profile = slot.get_or_init(|| {
            computed = true;
            let disk_key = accuracy_profile_digest(benchmark, input, seed, instructions, predictor);
            if let Some(stored) = self.disk_fetch::<AccuracyProfile>(disk_key) {
                return Arc::new(stored);
            }
            let events = self.events(benchmark, input, seed, instructions);
            let mut dynamic = predictor.build_any();
            let profile = Arc::new(AccuracyProfile::collect(
                SliceSource::new(&events),
                &mut dynamic,
            ));
            self.disk_persist(disk_key, &*profile);
            profile
        });
        let counter = if computed {
            &self.accuracy_misses
        } else {
            &self.accuracy_hits
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Arc::clone(profile)
    }

    /// Probes the disk tier for a profile filed under a derived key.
    ///
    /// Corruption self-heals: the damaged link/object is deleted, the probe
    /// reports a miss, and the caller's recomputation re-persists a healthy
    /// copy. I/O failures also degrade to a miss — the disk tier is an
    /// accelerator, never a correctness dependency.
    fn disk_fetch<T: Codec>(&self, key: Digest) -> Option<T> {
        let store = self.disk.get()?;
        let fetched = store
            .get_link(key)
            .and_then(|target| target.map_or(Ok(None), |t| store.get::<T>(t)));
        match fetched {
            Ok(Some(value)) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
            Ok(None) => {}
            Err(StoreError::Corrupt { .. }) => {
                if let Ok(Some(target)) = store.get_link(key) {
                    let _ = store.remove(target);
                }
                let _ = store.remove_link(key);
            }
            Err(StoreError::Io { .. }) => {}
        }
        self.disk_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Best-effort write-through of a freshly computed profile.
    fn disk_persist<T: Codec>(&self, key: Digest, value: &T) {
        if let Some(store) = self.disk.get() {
            if let Ok(target) = store.put(value) {
                let _ = store.put_link(key, target);
            }
        }
    }
}

/// The disk-tier key of a bias profile: a digest of the run coordinates
/// `(benchmark, input, seed, instruction budget)`.
///
/// For imported benchmarks the content digest recorded at admission is also
/// mixed in, so a re-registered file with *different* contents under the
/// same display name can never replay stale persisted profiles.
pub fn bias_profile_digest(
    benchmark: Benchmark,
    input: InputSet,
    seed: u64,
    instructions: u64,
) -> Digest {
    let mut h = Hasher::new();
    h.write_str("sdbp-bias-profile");
    h.write_str(benchmark.name());
    h.write_str(input.name());
    h.write_u64(seed);
    h.write_u64(instructions);
    mix_import_digest(&mut h, benchmark);
    h.finish()
}

/// Mixes an imported benchmark's admission-time content digest into a
/// disk-tier key (no-op for synthetic benchmarks, keeping their keys — and
/// every previously persisted profile — unchanged).
fn mix_import_digest(h: &mut Hasher, benchmark: Benchmark) {
    if let Benchmark::Imported(slot) = benchmark {
        if let Some(info) = imports::info(slot) {
            h.write_str("imported-content");
            h.write_u64(info.digest);
        }
    }
}

/// The disk-tier key of an accuracy profile: the bias coordinates plus the
/// predictor configuration the profile was collected against.
pub fn accuracy_profile_digest(
    benchmark: Benchmark,
    input: InputSet,
    seed: u64,
    instructions: u64,
    predictor: PredictorConfig,
) -> Digest {
    let mut h = Hasher::new();
    h.write_str("sdbp-accuracy-profile");
    h.write_str(benchmark.name());
    h.write_str(input.name());
    h.write_u64(seed);
    h.write_u64(instructions);
    h.write_str(predictor.kind().name());
    h.write_u64(predictor.size_bytes() as u64);
    mix_import_digest(&mut h, benchmark);
    h.finish()
}

/// Generates one run's event stream from scratch (the uncached path).
///
/// Dispatch over generator-backed, interleaved-server, and imported-trace
/// benchmarks is [`open_source`]'s job; this path only caps and collects.
fn generate_events(key: ArtifactKey) -> Vec<BranchEvent> {
    let (benchmark, input, seed, instructions) = key;
    let mut source = open_source(benchmark, input, seed).take_instructions(instructions);
    // Pre-size from the workload's branch density to avoid regrowth churn.
    let expected = (instructions as f64 * benchmark.expected_cbrs_per_ki(input) / 1000.0) as usize;
    let mut events = Vec::with_capacity(expected.min(1 << 26));
    // Chunked pulls amortize the per-event source indirection; the generator
    // overrides `fill_events` with a straight batch loop.
    while source.fill_events(&mut events, 8192) > 0 {}
    events
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("bias_profiles", &self.bias_profiles())
            .field("accuracy_profiles", &self.accuracy_profiles())
            .field("cached_traces", &self.cached_traces())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::PredictorKind;

    const BUDGET: u64 = 50_000;

    fn cache() -> ArtifactCache {
        ArtifactCache::with_trace_capacity(DEFAULT_TRACE_CACHE_INSTRUCTIONS)
    }

    #[test]
    fn repeated_lookups_hit() {
        let c = cache();
        let a = c.bias_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let b = c.bias_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        let s = c.stats();
        assert_eq!((s.bias_misses, s.bias_hits), (1, 1));
        // The bias profile's first computation also generated the trace.
        assert_eq!(s.trace_misses, 1);
    }

    #[test]
    fn different_seed_is_a_miss() {
        let c = cache();
        let a = c.bias_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let b = c.bias_profile(Benchmark::Compress, InputSet::Ref, 2, BUDGET);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(*a, *b, "different seeds draw different streams");
        let s = c.stats();
        assert_eq!((s.bias_misses, s.bias_hits), (2, 0));
        assert_eq!(c.cached_traces(), 2);
    }

    #[test]
    fn every_key_component_separates_entries() {
        let c = cache();
        let base = c.events(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        for (bench, input, seed, budget) in [
            (Benchmark::Go, InputSet::Ref, 1, BUDGET),
            (Benchmark::Compress, InputSet::Train, 1, BUDGET),
            (Benchmark::Compress, InputSet::Ref, 9, BUDGET),
            (Benchmark::Compress, InputSet::Ref, 1, BUDGET / 2),
        ] {
            let other = c.events(bench, input, seed, budget);
            assert!(!Arc::ptr_eq(&base, &other));
        }
        assert_eq!(c.stats().trace_misses, 5);
        assert_eq!(c.stats().trace_hits, 0);
    }

    #[test]
    fn accuracy_profiles_key_on_predictor_too() {
        let c = cache();
        let gshare = PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap();
        let bimodal = PredictorConfig::new(PredictorKind::Bimodal, 1024).unwrap();
        let a = c.accuracy_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET, gshare);
        let b = c.accuracy_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET, bimodal);
        let a2 = c.accuracy_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET, gshare);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &a2));
        let s = c.stats();
        assert_eq!((s.accuracy_misses, s.accuracy_hits), (2, 1));
        // Both profiles replayed the single cached trace.
        assert_eq!((s.trace_misses, s.trace_hits), (1, 1));
    }

    #[test]
    fn cached_events_match_fresh_generation() {
        let c = cache();
        let cached = c.events(Benchmark::Go, InputSet::Train, 7, BUDGET);
        let fresh = generate_events((Benchmark::Go, InputSet::Train, 7, BUDGET));
        assert_eq!(*cached, fresh);
    }

    #[test]
    fn oversized_streams_bypass_the_store() {
        let c = ArtifactCache::with_trace_capacity(BUDGET / 2);
        let _ = c.events(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let _ = c.events(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let s = c.stats();
        assert_eq!(s.trace_bypassed, 2);
        assert_eq!(c.cached_traces(), 0);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        // Capacity fits two of the three streams.
        let c = ArtifactCache::with_trace_capacity(2 * BUDGET);
        let _ = c.events(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let _ = c.events(Benchmark::Compress, InputSet::Ref, 2, BUDGET);
        // Touch seed 1 so seed 2 is the LRU victim.
        let _ = c.events(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let _ = c.events(Benchmark::Compress, InputSet::Ref, 3, BUDGET);
        assert_eq!(c.cached_traces(), 2);
        // Seed 1 must still be resident (a hit), seed 2 evicted (a miss).
        let before = c.stats();
        let _ = c.events(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        assert_eq!(c.stats().trace_hits, before.trace_hits + 1);
        let _ = c.events(Benchmark::Compress, InputSet::Ref, 2, BUDGET);
        assert_eq!(c.stats().trace_misses, before.trace_misses + 1);
    }

    #[test]
    fn profile_bundle_matches_sequential_lookups() {
        let gshare = PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap();
        let bimodal = PredictorConfig::new(PredictorKind::Bimodal, 1024).unwrap();

        let seq = cache();
        let bias_ref = seq.bias_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let acc_g = seq.accuracy_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET, gshare);
        let acc_b = seq.accuracy_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET, bimodal);

        let c = cache();
        let (bias, accs) = c.profile_bundle(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            &[gshare, bimodal],
        );
        assert_eq!(*bias, *bias_ref, "fused bias is bit-identical");
        assert_eq!(*accs[0], *acc_g, "fused accuracy is bit-identical");
        assert_eq!(*accs[1], *acc_b);
        let s = c.stats();
        assert_eq!((s.bias_misses, s.accuracy_misses), (1, 2));
        assert_eq!(s.trace_misses, 1, "one traversal generated the trace");
        assert_eq!(
            s.fused_traversals_saved, 2,
            "three artifacts in one traversal saves two"
        );

        // Everything is now hot: a repeat bundle is pure hits and no
        // further traversals are saved (none were needed).
        let before = c.stats();
        let _ = c.profile_bundle(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            &[gshare, bimodal],
        );
        let delta = c.stats().since(&before);
        assert_eq!((delta.bias_hits, delta.accuracy_hits), (1, 2));
        assert_eq!(delta.misses(), 0, "{delta}");
        assert_eq!(delta.fused_traversals_saved, 0);
    }

    #[test]
    fn profile_bundle_with_no_predictors_is_a_bias_lookup() {
        let c = cache();
        let (bias, accs) = c.profile_bundle(Benchmark::Compress, InputSet::Ref, 1, BUDGET, &[]);
        assert!(accs.is_empty());
        assert!(!bias.is_empty());
        let s = c.stats();
        assert_eq!((s.bias_misses, s.accuracy_misses), (1, 0));
        assert_eq!(s.fused_traversals_saved, 0, "one artifact saves nothing");
    }

    #[test]
    fn fused_bypass_generates_once_per_traversal() {
        let gshare = PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap();
        let bimodal = PredictorConfig::new(PredictorKind::Bimodal, 1024).unwrap();
        // Oversized: the bundle must stream one generation through all
        // three passes instead of regenerating per consumer.
        let c = ArtifactCache::with_trace_capacity(BUDGET / 2);
        let (bias, accs) = c.profile_bundle(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            &[gshare, bimodal],
        );
        let s = c.stats();
        assert_eq!(s.trace_bypassed, 1, "one generation fed every pass: {s}");
        assert_eq!(
            c.cached_traces(),
            0,
            "nothing was materialized into the store"
        );
        assert_eq!(s.fused_traversals_saved, 2);

        // The streamed artifacts are bit-identical to the cached-path ones.
        let full = cache();
        let (bias2, accs2) = full.profile_bundle(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            &[gshare, bimodal],
        );
        assert_eq!(*bias, *bias2);
        assert_eq!(*accs[0], *accs2[0]);
        assert_eq!(*accs[1], *accs2[1]);
    }

    #[test]
    fn run_passes_streams_oversized_budgets_in_bounded_memory() {
        use sdbp_passes::{FnPass, DEFAULT_CHUNK};
        // Capacity 0 disables trace caching entirely: the traversal must
        // stream generator chunks, never materializing the event vector.
        let c = ArtifactCache::with_trace_capacity(0);
        let mut events = 0u64;
        let mut max_chunk = 0usize;
        let mut pass = FnPass::new("count", |chunk: &[BranchEvent]| {
            events += chunk.len() as u64;
            max_chunk = max_chunk.max(chunk.len());
        });
        let stats = c.run_passes(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            &mut [&mut pass],
        );
        drop(pass);
        assert_eq!(stats.events, events);
        assert!(max_chunk <= DEFAULT_CHUNK, "peak buffer is one chunk");
        assert_eq!(c.cached_traces(), 0);
        let s = c.stats();
        assert_eq!((s.trace_bypassed, s.trace_misses, s.trace_hits), (1, 0, 0));
        // The streamed event count matches a materialized generation.
        assert_eq!(
            events as usize,
            generate_events((Benchmark::Compress, InputSet::Ref, 1, BUDGET)).len()
        );
    }

    fn temp_store(tag: &str) -> Arc<Store> {
        let dir =
            std::env::temp_dir().join(format!("sdbp-cache-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Store::open(dir).unwrap())
    }

    #[test]
    fn disk_tier_shares_profiles_across_processes() {
        let store = temp_store("share");
        let warm = cache();
        warm.attach_store(Arc::clone(&store));
        let original = warm.bias_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        assert_eq!(
            warm.stats().disk_misses,
            1,
            "cold store probes then computes"
        );

        // A fresh cache models a new process: memory is cold, disk is warm.
        let cold = cache();
        cold.attach_store(Arc::clone(&store));
        let revived = cold.bias_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        assert_eq!(*revived, *original);
        let s = cold.stats();
        assert_eq!((s.disk_hits, s.disk_misses), (1, 0));
        assert_eq!(s.trace_misses, 0, "disk hit avoids regenerating the trace");
        assert!(cold.stats().since(&CacheStats::default()).disk_hits > 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_disk_entries_self_heal() {
        let store = temp_store("heal");
        let warm = cache();
        warm.attach_store(Arc::clone(&store));
        let original = warm.accuracy_profile(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
        );
        // Damage the stored object behind the link.
        let key = accuracy_profile_digest(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
        );
        let target = store.get_link(key).unwrap().unwrap();
        std::fs::write(store.object_path(target), b"garbage").unwrap();

        let healing = cache();
        healing.attach_store(Arc::clone(&store));
        let recomputed = healing.accuracy_profile(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
        );
        assert_eq!(*recomputed, *original, "corruption never surfaces");
        assert_eq!(healing.stats().disk_misses, 1);

        // The rewrite healed the store: a third cache hits cleanly.
        let healed = cache();
        healed.attach_store(Arc::clone(&store));
        let _ = healed.accuracy_profile(
            Benchmark::Compress,
            InputSet::Ref,
            1,
            BUDGET,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
        );
        assert_eq!(healed.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn lockstep_savings_are_recorded_and_displayed() {
        let c = cache();
        assert_eq!(c.stats().lockstep_traversals_saved, 0);
        c.note_lockstep_saved(0); // no-op
        assert_eq!(c.stats().lockstep_traversals_saved, 0);
        let before = c.stats();
        assert!(!format!("{before}").contains("lockstep"));
        c.note_lockstep_saved(3);
        c.note_lockstep_saved(2);
        let s = c.stats();
        assert_eq!(s.lockstep_traversals_saved, 5);
        assert_eq!(s.since(&before).lockstep_traversals_saved, 5);
        assert!(format!("{s}").contains("5 traversals saved by lockstep"));
    }

    #[test]
    fn stats_since_subtracts() {
        let c = cache();
        let _ = c.bias_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let before = c.stats();
        let _ = c.bias_profile(Benchmark::Compress, InputSet::Ref, 1, BUDGET);
        let delta = c.stats().since(&before);
        assert_eq!(delta.bias_hits, 1);
        assert_eq!(delta.bias_misses, 0);
        assert!(delta.hit_rate() > 0.99);
    }
}
