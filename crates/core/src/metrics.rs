//! Simulation metrics.

use std::fmt;

/// Collision (aliasing) counts, split the way the paper classifies them:
/// a collision is *constructive* when the overall prediction was still
/// correct and *destructive* when it was not (the simplified Young-et-al.
/// definition from the paper's §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollisionStats {
    /// Lookups whose table entry was last used by a different branch.
    pub total: u64,
    /// Collisions on correctly predicted branches.
    pub constructive: u64,
    /// Collisions on mispredicted branches.
    pub destructive: u64,
}

impl CollisionStats {
    /// Records one colliding lookup.
    pub fn record(&mut self, prediction_correct: bool) {
        self.total += 1;
        if prediction_correct {
            self.constructive += 1;
        } else {
            self.destructive += 1;
        }
    }

    /// Records a lookup that collided only if `collided` — branchlessly, so
    /// the simulator's per-event loop carries no data-dependent branch on
    /// the (near-random) collision bit.
    #[inline]
    pub fn record_if(&mut self, collided: bool, prediction_correct: bool) {
        self.total += u64::from(collided);
        self.constructive += u64::from(collided & prediction_correct);
        self.destructive += u64::from(collided & !prediction_correct);
    }

    /// Fraction of collisions that were destructive; `0.0` with none.
    pub fn destructive_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.destructive as f64 / self.total as f64
        }
    }
}

/// Aggregate results of one simulation run.
///
/// # Examples
///
/// ```
/// use sdbp_core::SimStats;
///
/// let mut s = SimStats::default();
/// s.instructions = 10_000;
/// s.branches = 1_000;
/// s.mispredictions = 50;
/// assert!((s.misp_per_ki() - 5.0).abs() < 1e-12);
/// assert!((s.accuracy() - 0.95).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Retired instructions (branch + non-branch).
    pub instructions: u64,
    /// Executed conditional branches.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
    /// Branches resolved by a static hint.
    pub static_predicted: u64,
    /// Mispredictions among the statically predicted.
    pub static_mispredictions: u64,
    /// Collision instrumentation of the dynamic tables.
    pub collisions: CollisionStats,
}

impl SimStats {
    /// Adds another run's (or chunk's) counts into this one, field by field.
    pub fn merge(&mut self, other: &SimStats) {
        self.instructions += other.instructions;
        self.branches += other.branches;
        self.mispredictions += other.mispredictions;
        self.static_predicted += other.static_predicted;
        self.static_mispredictions += other.static_mispredictions;
        self.collisions.total += other.collisions.total;
        self.collisions.constructive += other.collisions.constructive;
        self.collisions.destructive += other.collisions.destructive;
    }

    /// Mispredictions per thousand instructions — the paper's headline
    /// metric (its argument: unlike accuracy, it cannot be flattered by
    /// branch-sparse programs).
    pub fn misp_per_ki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Conditional branches per thousand instructions (the MISPs/KI upper
    /// bound).
    pub fn cbrs_per_ki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branches as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Overall prediction accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            1.0 - self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Fraction of dynamic branches resolved statically.
    pub fn static_fraction(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.static_predicted as f64 / self.branches as f64
        }
    }

    /// Accuracy of the statically predicted subset.
    pub fn static_accuracy(&self) -> f64 {
        if self.static_predicted == 0 {
            0.0
        } else {
            1.0 - self.static_mispredictions as f64 / self.static_predicted as f64
        }
    }

    /// Relative MISPs/KI improvement over a baseline, as the paper reports
    /// it: positive when `self` mispredicts less.
    ///
    /// Returns `0.0` when the baseline had no mispredictions.
    pub fn improvement_over(&self, baseline: &SimStats) -> f64 {
        let base = baseline.misp_per_ki();
        if base == 0.0 {
            0.0
        } else {
            (base - self.misp_per_ki()) / base
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} MISPs/KI ({:.2}% accuracy, {} branches, {} collisions)",
            self.misp_per_ki(),
            self.accuracy() * 100.0,
            self.branches,
            self.collisions.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(instr: u64, branches: u64, misp: u64) -> SimStats {
        SimStats {
            instructions: instr,
            branches,
            mispredictions: misp,
            ..SimStats::default()
        }
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SimStats::default();
        assert_eq!(s.misp_per_ki(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.cbrs_per_ki(), 0.0);
        assert_eq!(s.static_fraction(), 0.0);
        assert_eq!(s.static_accuracy(), 0.0);
    }

    #[test]
    fn metric_definitions() {
        let s = stats(100_000, 12_000, 600);
        assert!((s.misp_per_ki() - 6.0).abs() < 1e-12);
        assert!((s.cbrs_per_ki() - 120.0).abs() < 1e-12);
        assert!((s.accuracy() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn improvement_is_relative_misp_reduction() {
        let base = stats(1000, 100, 20);
        let better = stats(1000, 100, 15);
        let worse = stats(1000, 100, 25);
        assert!((better.improvement_over(&base) - 0.25).abs() < 1e-12);
        assert!((worse.improvement_over(&base) + 0.25).abs() < 1e-12);
        let zero = stats(1000, 100, 0);
        assert_eq!(base.improvement_over(&zero), 0.0);
    }

    #[test]
    fn collision_classification() {
        let mut c = CollisionStats::default();
        c.record(true);
        c.record(false);
        c.record(false);
        assert_eq!(c.total, 3);
        assert_eq!(c.constructive, 1);
        assert_eq!(c.destructive, 2);
        assert!((c.destructive_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CollisionStats::default().destructive_fraction(), 0.0);
    }

    #[test]
    fn static_subset_metrics() {
        let s = SimStats {
            instructions: 1000,
            branches: 100,
            mispredictions: 10,
            static_predicted: 40,
            static_mispredictions: 2,
            ..SimStats::default()
        };
        assert!((s.static_fraction() - 0.4).abs() < 1e-12);
        assert!((s.static_accuracy() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = stats(10_000, 1_000, 50);
        let text = s.to_string();
        assert!(text.contains("5.000 MISPs/KI"));
        assert!(text.contains("95.00%"));
    }
}
