//! Combined static + dynamic branch prediction — the paper's contribution.
//!
//! This crate assembles the substrates ([`sdbp_predictors`],
//! [`sdbp_profiles`], [`sdbp_workloads`], [`sdbp_trace`]) into the system
//! Patil & Emer evaluate:
//!
//! * [`CombinedPredictor`] — a dynamic predictor plus a static hint
//!   database. Statically predicted branches bypass the dynamic tables
//!   entirely (the aliasing-relief mechanism); a [`ShiftPolicy`] decides
//!   whether their outcomes still shift into the global history register
//!   (§4 / Table 4 of the paper).
//! * [`Simulator`] — drives a branch stream through a combined predictor,
//!   producing [`SimStats`]: MISPs/KI (the paper's headline metric),
//!   accuracy, and the constructive/destructive collision breakdown of
//!   Figures 1–6.
//! * [`ExperimentSpec`] / [`run_experiment`] / [`Lab`] — the two-phase
//!   experiment protocol (profile → select hints → measure) with
//!   self-trained, cross-trained, and merged-profile variants.
//! * [`ArtifactCache`] — thread-safe memoization of bias/accuracy profiles
//!   and generated event streams, keyed by
//!   `(benchmark, input set, seed, instruction count)`, with hit/miss
//!   counters and a bounded LRU trace store.
//! * [`Sweep`] — the parallel sweep engine that runs a grid of
//!   [`ExperimentSpec`]s across scoped worker threads sharing one
//!   [`ArtifactCache`], returning bit-identical results to a serial run,
//!   in deterministic spec order.
//! * [`RunStore`] / [`manifest`] — the durable artifact layer: a
//!   content-addressed on-disk store caching profiles across processes
//!   (keyed by [`spec_digest`]-style run digests), plus an append-only
//!   `manifest.jsonl` of finished cells that lets an interrupted sweep
//!   resume exactly where it stopped.
//!
//! # Examples
//!
//! A miniature of the paper's core comparison — gshare with and without
//! `Static_Acc` hints:
//!
//! ```
//! use sdbp_core::{run_experiment, ExperimentSpec, ShiftPolicy};
//! use sdbp_predictors::{PredictorConfig, PredictorKind};
//! use sdbp_profiles::SelectionScheme;
//! use sdbp_workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = ExperimentSpec::self_trained(
//!     Benchmark::Gcc,
//!     PredictorConfig::new(PredictorKind::Gshare, 4096)?,
//!     SelectionScheme::None,
//! )
//! .with_instructions(400_000);
//! let with_static = base.clone().with_scheme(SelectionScheme::static_acc());
//!
//! let baseline = run_experiment(&base)?;
//! let improved = run_experiment(&with_static)?;
//! assert!(improved.stats.misp_per_ki() <= baseline.stats.misp_per_ki());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod codec;
pub mod combined;
pub mod experiment;
pub mod manifest;
pub mod metrics;
pub mod report;
pub mod simulator;
pub mod sweep;

#[cfg(test)]
mod proptests;

pub use analysis::{BranchAnalysis, BranchRecord};
pub use cache::{
    accuracy_profile_digest, bias_profile_digest, ArtifactCache, ArtifactKey, CacheStats,
};
pub use codec::spec_digest;
pub use combined::{BranchResolution, CombinedPredictor, ShiftPolicy};
pub use experiment::{
    run_experiment, ExperimentError, ExperimentSpec, Lab, PreflightFn, ProfileSource, SpecProblem,
};
pub use manifest::{ManifestEntry, ManifestError, RunManifest, RunStore};
pub use metrics::{CollisionStats, SimStats};
pub use report::Report;
pub use simulator::{MeasurePass, Simulator};
pub use sweep::{default_threads, Sweep, SweepCell, SweepResult};
