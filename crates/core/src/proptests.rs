//! Property-based tests pinning the pass framework's fusion contract at the
//! experiment layer: running the bias, accuracy, and simulation consumers
//! *fused* in one traversal — at an arbitrary chunk size, so chunk
//! boundaries straddle warm-up and event positions arbitrarily — must be
//! bit-identical to running each consumer alone over its own traversal.

#![cfg(test)]

use crate::{CombinedPredictor, MeasurePass, Simulator};
use proptest::prelude::*;
use sdbp_passes::{LockstepRunner, Pass, PassRunner};
use sdbp_predictors::{Gshare, PredictorConfig, PredictorKind};
use sdbp_profiles::{AccuracyPass, AccuracyProfile, BiasPass, BiasProfile, HintDatabase};
use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};

fn arb_events() -> impl Strategy<Value = Vec<BranchEvent>> {
    proptest::collection::vec((0u64..512, any::<bool>(), 0u32..40), 1..400).prop_map(|v| {
        v.into_iter()
            .map(|(w, taken, gap)| BranchEvent::new(BranchAddr(w * 4), taken, gap))
            .collect()
    })
}

fn measure(events: &[BranchEvent], warmup: u64) -> crate::SimStats {
    let mut combined = CombinedPredictor::pure_dynamic(Gshare::new(1024));
    Simulator::new()
        .with_warmup(warmup)
        .run(SliceSource::new(events), &mut combined)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One fused traversal of all three consumer kinds — bias profiling,
    /// accuracy profiling, and warm-up-straddling measurement — equals
    /// three dedicated traversals, for every chunk size.
    #[test]
    fn fused_traversal_is_bit_identical_to_sequential_passes(
        events in arb_events(),
        chunk in 1usize..70,
        warmup_events in 0usize..40,
    ) {
        // A warm-up boundary placed on an arbitrary event (possibly past
        // the end of the stream), so chunk straddles hit it everywhere.
        let warmup: u64 = events
            .iter()
            .take(warmup_events)
            .map(|e| e.instructions())
            .sum();

        // Sequential reference: each consumer over its own traversal.
        let seq_bias = BiasProfile::from_source(SliceSource::new(&events));
        let config = PredictorConfig::new(PredictorKind::Gshare, 1024).expect("valid");
        let mut engine = config.build_any();
        let seq_accuracy =
            AccuracyProfile::collect(SliceSource::new(&events), &mut engine);
        let seq_stats = measure(&events, warmup);

        // Fused: all three ride one chunked traversal.
        let mut bias_pass = BiasPass::new();
        let mut acc_engine = config.build_any();
        let mut acc_pass = AccuracyPass::new(&mut acc_engine);
        let mut combined =
            CombinedPredictor::new(config.build_any(), HintDatabase::new(), Default::default());
        let mut measure_pass = MeasurePass::new(&mut combined).with_warmup(warmup);
        let stats = PassRunner::new().with_chunk(chunk).run(
            SliceSource::new(&events),
            &mut [&mut bias_pass, &mut acc_pass, &mut measure_pass],
        );

        prop_assert_eq!(stats.events, events.len() as u64);
        prop_assert_eq!(bias_pass.into_profile(), seq_bias);
        prop_assert_eq!(acc_pass.into_profile(), seq_accuracy);
        prop_assert_eq!(measure_pass.into_stats(), seq_stats);
    }

    /// Lockstep multi-config execution — arbitrary sets of predictor
    /// configurations with arbitrary per-member warm-up boundaries riding
    /// one arbitrarily chunked traversal — is bit-identical to measuring
    /// each configuration on its own dedicated traversal. This is the
    /// equivalence the sweep's lockstep grouping (and the CLI's
    /// `--no-lockstep` escape hatch) relies on.
    #[test]
    fn lockstep_measurement_is_bit_identical_to_sequential_runs(
        events in arb_events(),
        chunk in 1usize..70,
        members in proptest::collection::vec(
            (0usize..PredictorKind::ALL.len(), 5u32..10, 0usize..40),
            1..6,
        ),
    ) {
        let configs: Vec<(PredictorConfig, u64)> = members
            .iter()
            .map(|&(kind_idx, size_shift, warmup_events)| {
                let config = PredictorConfig::new(
                    PredictorKind::ALL[kind_idx],
                    1usize << size_shift,
                )
                .expect("valid");
                // A warm-up boundary on an arbitrary event, per member.
                let warmup = events
                    .iter()
                    .take(warmup_events)
                    .map(|e| e.instructions())
                    .sum();
                (config, warmup)
            })
            .collect();

        // Sequential reference: one dedicated traversal per member.
        let sequential: Vec<crate::SimStats> = configs
            .iter()
            .map(|&(config, warmup)| {
                let mut combined = CombinedPredictor::new(
                    config.build_any(),
                    HintDatabase::new(),
                    Default::default(),
                );
                let mut pass = MeasurePass::new(&mut combined).with_warmup(warmup);
                PassRunner::new()
                    .with_chunk(chunk)
                    .run(SliceSource::new(&events), &mut [&mut pass]);
                pass.into_stats()
            })
            .collect();

        // Lockstep: every member rides the same traversal.
        let mut combineds: Vec<CombinedPredictor> = configs
            .iter()
            .map(|&(config, _)| {
                CombinedPredictor::new(config.build_any(), HintDatabase::new(), Default::default())
            })
            .collect();
        let mut measures: Vec<MeasurePass> = combineds
            .iter_mut()
            .zip(&configs)
            .map(|(combined, &(_, warmup))| MeasurePass::new(combined).with_warmup(warmup))
            .collect();
        let outcome = {
            let mut passes: Vec<&mut dyn Pass> =
                measures.iter_mut().map(|m| m as &mut dyn Pass).collect();
            LockstepRunner::new()
                .with_chunk(chunk)
                .run(SliceSource::new(&events), &mut passes)
        };
        prop_assert_eq!(outcome.traversals_saved, configs.len() as u64 - 1);
        prop_assert_eq!(outcome.stats.events, events.len() as u64);
        for (measure, want) in measures.into_iter().zip(sequential) {
            prop_assert_eq!(measure.into_stats(), want);
        }
    }

    /// The chunk size never leaks into any consumer: two fused runs at
    /// different chunk sizes agree with each other.
    #[test]
    fn chunk_size_is_unobservable(
        events in arb_events(),
        chunk_a in 1usize..90,
        chunk_b in 1usize..90,
    ) {
        let run = |chunk: usize| {
            let mut bias_pass = BiasPass::new();
            let mut engine = Gshare::new(512);
            let mut acc_pass = AccuracyPass::new(&mut engine);
            PassRunner::new().with_chunk(chunk).run(
                SliceSource::new(&events),
                &mut [&mut bias_pass, &mut acc_pass],
            );
            (bias_pass.into_profile(), acc_pass.into_profile())
        };
        prop_assert_eq!(run(chunk_a), run(chunk_b));
    }
}
