//! Binary artifact codecs for experiment specs and reports.
//!
//! Implements [`Codec`] for [`ExperimentSpec`] and [`Report`], which makes
//! both storable in the content-addressed artifact store and gives every
//! spec a stable content digest ([`spec_digest`]) — the key under which a
//! sweep manifest records the cell and under which its profile artifacts
//! are cached on disk.
//!
//! Encodings are canonical: enums are written as fixed tags or as their
//! stable lowercase names, floats as IEEE-754 bit patterns, so two equal
//! specs always serialize to identical bytes and therefore identical
//! digests across processes and runs.

use crate::combined::ShiftPolicy;
use crate::experiment::{ExperimentSpec, ProfileSource};
use crate::metrics::{CollisionStats, SimStats};
use crate::report::Report;
use sdbp_artifacts::{Codec, CodecError, Decoder, Digest, Encoder};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::{Benchmark, InputSet};

/// The stable content digest of a spec: the key under which its manifest
/// entry and derived artifacts are filed.
pub fn spec_digest(spec: &ExperimentSpec) -> Digest {
    Digest::of(&spec.to_bytes())
}

fn invalid(context: impl Into<String>) -> CodecError {
    CodecError::Invalid {
        context: context.into(),
    }
}

fn encode_predictor(p: &PredictorConfig, e: &mut Encoder) {
    e.str(p.kind().name());
    e.u64(p.size_bytes() as u64);
}

fn decode_predictor(d: &mut Decoder<'_>) -> Result<PredictorConfig, CodecError> {
    let kind: PredictorKind = d
        .str("predictor kind")?
        .parse()
        .map_err(|e| invalid(format!("predictor kind: {e}")))?;
    let size = d.u64("predictor size")? as usize;
    PredictorConfig::new(kind, size).map_err(|e| invalid(format!("predictor config: {e}")))
}

fn encode_input(input: InputSet, e: &mut Encoder) {
    e.u8(match input {
        InputSet::Train => 0,
        InputSet::Ref => 1,
    });
}

fn decode_input(d: &mut Decoder<'_>) -> Result<InputSet, CodecError> {
    match d.u8("input set")? {
        0 => Ok(InputSet::Train),
        1 => Ok(InputSet::Ref),
        tag => Err(invalid(format!("input set tag {tag}"))),
    }
}

fn encode_shift(shift: ShiftPolicy, e: &mut Encoder) {
    e.u8(match shift {
        ShiftPolicy::NoShift => 0,
        ShiftPolicy::Shift => 1,
    });
}

fn decode_shift(d: &mut Decoder<'_>) -> Result<ShiftPolicy, CodecError> {
    match d.u8("shift policy")? {
        0 => Ok(ShiftPolicy::NoShift),
        1 => Ok(ShiftPolicy::Shift),
        tag => Err(invalid(format!("shift policy tag {tag}"))),
    }
}

fn encode_scheme(scheme: &SelectionScheme, e: &mut Encoder) {
    match scheme {
        SelectionScheme::None => e.u8(0),
        SelectionScheme::Bias { cutoff } => {
            e.u8(1);
            e.f64(*cutoff);
        }
        SelectionScheme::VsAccuracy => e.u8(2),
        SelectionScheme::Factor { factor } => {
            e.u8(3);
            e.f64(*factor);
        }
        SelectionScheme::CollisionAware {
            min_bias,
            min_collision_rate,
        } => {
            e.u8(4);
            e.f64(*min_bias);
            e.f64(*min_collision_rate);
        }
        SelectionScheme::Collide {
            min_bias,
            min_score_rate,
        } => {
            e.u8(5);
            e.f64(*min_bias);
            e.f64(*min_score_rate);
        }
    }
}

fn decode_scheme(d: &mut Decoder<'_>) -> Result<SelectionScheme, CodecError> {
    match d.u8("selection scheme")? {
        0 => Ok(SelectionScheme::None),
        1 => Ok(SelectionScheme::Bias {
            cutoff: d.f64("bias cutoff")?,
        }),
        2 => Ok(SelectionScheme::VsAccuracy),
        3 => Ok(SelectionScheme::Factor {
            factor: d.f64("accuracy factor")?,
        }),
        4 => Ok(SelectionScheme::CollisionAware {
            min_bias: d.f64("minimum bias")?,
            min_collision_rate: d.f64("minimum collision rate")?,
        }),
        5 => Ok(SelectionScheme::Collide {
            min_bias: d.f64("minimum bias")?,
            min_score_rate: d.f64("minimum score rate")?,
        }),
        tag => Err(invalid(format!("selection scheme tag {tag}"))),
    }
}

fn encode_profile_source(profile: ProfileSource, e: &mut Encoder) {
    match profile {
        ProfileSource::SelfTrained => e.u8(0),
        ProfileSource::CrossTrained => e.u8(1),
        ProfileSource::MergedCrossTrained { max_bias_change } => {
            e.u8(2);
            e.f64(max_bias_change);
        }
    }
}

fn decode_profile_source(d: &mut Decoder<'_>) -> Result<ProfileSource, CodecError> {
    match d.u8("profile source")? {
        0 => Ok(ProfileSource::SelfTrained),
        1 => Ok(ProfileSource::CrossTrained),
        2 => Ok(ProfileSource::MergedCrossTrained {
            max_bias_change: d.f64("maximum bias change")?,
        }),
        tag => Err(invalid(format!("profile source tag {tag}"))),
    }
}

fn encode_option_u64(value: Option<u64>, e: &mut Encoder) {
    e.bool(value.is_some());
    e.u64(value.unwrap_or(0));
}

fn decode_option_u64(
    d: &mut Decoder<'_>,
    context: &'static str,
) -> Result<Option<u64>, CodecError> {
    let present = d.bool(context)?;
    let value = d.u64(context)?;
    Ok(present.then_some(value))
}

impl Codec for ExperimentSpec {
    const SCHEMA: &'static str = "sdbp-spec";
    const VERSION: u32 = 1;

    fn encode_payload(&self, e: &mut Encoder) {
        e.str(self.benchmark.name());
        encode_predictor(&self.predictor, e);
        encode_scheme(&self.scheme, e);
        encode_shift(self.shift, e);
        encode_profile_source(self.profile, e);
        encode_input(self.measure_input, e);
        e.u64(self.seed);
        encode_option_u64(self.profile_instructions, e);
        encode_option_u64(self.measure_instructions, e);
        e.u64(self.warmup_instructions);
    }

    fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let benchmark: Benchmark = d
            .str("benchmark name")?
            .parse()
            .map_err(|e| invalid(format!("benchmark: {e}")))?;
        Ok(ExperimentSpec {
            benchmark,
            predictor: decode_predictor(d)?,
            scheme: decode_scheme(d)?,
            shift: decode_shift(d)?,
            profile: decode_profile_source(d)?,
            measure_input: decode_input(d)?,
            seed: d.u64("seed")?,
            profile_instructions: decode_option_u64(d, "profile instructions")?,
            measure_instructions: decode_option_u64(d, "measure instructions")?,
            warmup_instructions: d.u64("warmup instructions")?,
        })
    }
}

impl Codec for Report {
    const SCHEMA: &'static str = "sdbp-report";
    const VERSION: u32 = 1;

    fn encode_payload(&self, e: &mut Encoder) {
        e.str(self.benchmark.name());
        encode_predictor(&self.predictor, e);
        e.str(&self.scheme_label);
        encode_shift(self.shift, e);
        encode_input(self.measure_input, e);
        e.u64(self.hints as u64);
        e.u64(self.stats.instructions);
        e.u64(self.stats.branches);
        e.u64(self.stats.mispredictions);
        e.u64(self.stats.static_predicted);
        e.u64(self.stats.static_mispredictions);
        e.u64(self.stats.collisions.total);
        e.u64(self.stats.collisions.constructive);
        e.u64(self.stats.collisions.destructive);
    }

    fn decode_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let benchmark: Benchmark = d
            .str("benchmark name")?
            .parse()
            .map_err(|e| invalid(format!("benchmark: {e}")))?;
        let predictor = decode_predictor(d)?;
        let scheme_label = d.str("scheme label")?;
        let shift = decode_shift(d)?;
        let measure_input = decode_input(d)?;
        let hints = d.u64("hint count")? as usize;
        let stats = SimStats {
            instructions: d.u64("instructions")?,
            branches: d.u64("branches")?,
            mispredictions: d.u64("mispredictions")?,
            static_predicted: d.u64("static predicted")?,
            static_mispredictions: d.u64("static mispredictions")?,
            collisions: CollisionStats {
                total: d.u64("collisions total")?,
                constructive: d.u64("collisions constructive")?,
                destructive: d.u64("collisions destructive")?,
            },
        };
        if stats.mispredictions > stats.branches
            || stats.static_predicted > stats.branches
            || stats.collisions.constructive + stats.collisions.destructive > stats.collisions.total
        {
            return Err(invalid("report counters exceed their totals"));
        }
        Ok(Report {
            benchmark,
            predictor,
            scheme_label,
            shift,
            measure_input,
            hints,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sdbp_predictors::PredictorKind;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::self_trained(
            Benchmark::Gcc,
            PredictorConfig::new(PredictorKind::Gshare, 4096).unwrap(),
            SelectionScheme::static_95(),
        )
    }

    fn report() -> Report {
        Report {
            benchmark: Benchmark::Perl,
            predictor: PredictorConfig::new(PredictorKind::BiMode, 2048).unwrap(),
            scheme_label: "static_acc".into(),
            shift: ShiftPolicy::Shift,
            measure_input: InputSet::Ref,
            hints: 321,
            stats: SimStats {
                instructions: 1_000_000,
                branches: 150_000,
                mispredictions: 9_000,
                static_predicted: 40_000,
                static_mispredictions: 800,
                collisions: CollisionStats {
                    total: 5_000,
                    constructive: 1_200,
                    destructive: 3_100,
                },
            },
        }
    }

    #[test]
    fn specs_roundtrip_across_every_variant() {
        let variants = [
            spec(),
            spec()
                .with_scheme(SelectionScheme::None)
                .with_shift(ShiftPolicy::Shift),
            spec()
                .with_scheme(SelectionScheme::collision_aware())
                .with_profile(ProfileSource::CrossTrained)
                .with_measure_input(InputSet::Train),
            spec()
                .with_scheme(SelectionScheme::static_collide())
                .with_measure_input(InputSet::Train),
            spec()
                .with_scheme(SelectionScheme::Factor { factor: 1.25 })
                .with_profile(ProfileSource::MergedCrossTrained {
                    max_bias_change: 0.05,
                })
                .with_instructions(500_000)
                .with_seed(7)
                .with_warmup(10_000),
        ];
        for s in variants {
            let back = ExperimentSpec::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn digest_is_stable_and_separates_specs() {
        let a = spec_digest(&spec());
        let b = spec_digest(&spec());
        assert_eq!(a, b);
        assert_ne!(a, spec_digest(&spec().with_seed(1)));
        assert_ne!(
            a,
            spec_digest(&spec().with_scheme(SelectionScheme::static_acc()))
        );
    }

    #[test]
    fn report_roundtrips() {
        let r = report();
        assert_eq!(Report::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn report_decode_rejects_impossible_counters() {
        struct Evil;
        impl Codec for Evil {
            const SCHEMA: &'static str = "sdbp-report";
            const VERSION: u32 = 1;
            fn encode_payload(&self, e: &mut Encoder) {
                let mut r = report();
                r.stats.mispredictions = r.stats.branches + 1;
                r.encode_payload(e);
            }
            fn decode_payload(_: &mut Decoder<'_>) -> Result<Self, CodecError> {
                Ok(Evil)
            }
        }
        let err = Report::from_bytes(&Evil.to_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::Invalid { .. }), "{err}");
    }

    #[test]
    fn spec_and_report_schemas_are_distinct() {
        let err = Report::from_bytes(&spec().to_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::SchemaMismatch { .. }), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn reports_roundtrip(
            branches in any::<u32>(),
            misp in any::<u32>(),
            hints in any::<u32>(),
            total in any::<u32>(),
            constructive in any::<u32>(),
        ) {
            let branches = u64::from(branches);
            let total = u64::from(total);
            let constructive = u64::from(constructive).min(total);
            let mut r = report();
            r.stats.branches = branches;
            r.stats.mispredictions = u64::from(misp).min(branches);
            r.stats.static_predicted = branches / 2;
            r.stats.static_mispredictions = branches / 8;
            r.hints = hints as usize;
            r.stats.collisions = CollisionStats {
                total,
                constructive,
                destructive: total - constructive,
            };
            prop_assert_eq!(Report::from_bytes(&r.to_bytes()).unwrap(), r);
        }

        #[test]
        fn truncated_specs_error_not_panic(cut in any::<u32>()) {
            let bytes = spec().to_bytes();
            let cut = cut as usize % bytes.len();
            prop_assert!(ExperimentSpec::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
