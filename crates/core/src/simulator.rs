//! The measurement-phase simulator.

use crate::combined::{BranchResolution, CombinedPredictor};
use crate::metrics::SimStats;
use sdbp_passes::{Pass, PassRunner};
use sdbp_trace::{BranchEvent, BranchSource};

/// Drives a branch stream through a [`CombinedPredictor`], accumulating
/// [`SimStats`].
///
/// Collisions are classified constructive/destructive at resolution time by
/// whether the *final* prediction was correct — the paper's simplified
/// variant of Young et al.'s taxonomy.
///
/// # Examples
///
/// ```
/// use sdbp_core::{CombinedPredictor, Simulator};
/// use sdbp_predictors::Gshare;
/// use sdbp_trace::BranchSource;
/// use sdbp_workloads::{Benchmark, InputSet, Workload};
///
/// let source = Workload::spec95(Benchmark::Compress)
///     .generator(InputSet::Train, 1)
///     .take_instructions(200_000);
/// let mut predictor = CombinedPredictor::pure_dynamic(Box::new(Gshare::new(4096)));
/// let stats = Simulator::new().run(source, &mut predictor);
/// assert!(stats.branches > 10_000);
/// assert!(stats.accuracy() > 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    warmup_instructions: u64,
}

impl Simulator {
    /// Creates a simulator that measures from the first instruction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Excludes the first `instructions` from the statistics (tables still
    /// train during warm-up). The paper's billion-instruction runs amortize
    /// cold-start; our scaled-down runs can optionally discount it instead.
    ///
    /// Boundary rule: an event belongs to the warm-up window iff the running
    /// instruction total *including that event* is still ≤ the warm-up
    /// budget. An event whose instruction gap straddles the boundary is
    /// therefore attributed to the measured window — it is the first event
    /// to cross the budget, never silently dropped from both windows.
    pub fn with_warmup(mut self, instructions: u64) -> Self {
        self.warmup_instructions = instructions;
        self
    }

    /// Runs `source` to exhaustion through `predictor`.
    pub fn run<S: BranchSource>(&self, source: S, predictor: &mut CombinedPredictor) -> SimStats {
        self.run_with_observer(source, predictor, |_, _| {})
    }

    /// Like [`Simulator::run`], invoking `observer` for every measured
    /// branch with the event and its resolution — the hook used for
    /// per-branch accuracy collection, misprediction logging, and the
    /// examples' custom instrumentation.
    pub fn run_with_observer<S, F>(
        &self,
        source: S,
        predictor: &mut CombinedPredictor,
        observer: F,
    ) -> SimStats
    where
        S: BranchSource,
        F: FnMut(&BranchEvent, &BranchResolution),
    {
        // The traversal itself belongs to the pass runner: slice-backed
        // sources (in-memory traces — the artifact-cache path every
        // experiment takes) hand over their whole remainder in one zero-copy
        // borrow, everything else streams through one reusable
        // `BATCH`-sized buffer. The measurement logic lives in
        // [`MeasurePass`] so it can also ride a fused multi-pass traversal.
        let mut pass =
            MeasurePass::with_observer(predictor, observer).with_warmup(self.warmup_instructions);
        PassRunner::new()
            .with_chunk(BATCH)
            .run(source, &mut [&mut pass]);
        pass.into_stats()
    }
}

/// The measurement phase as a composable [`Pass`].
///
/// Wraps a borrowed [`CombinedPredictor`] and accumulates [`SimStats`] with
/// the exact semantics of [`Simulator::run`]: the predictor trains on every
/// event (including warm-up), statistics and the observer see only measured
/// ones, and the warm-up boundary follows the straddle rule documented on
/// [`Simulator::with_warmup`]. Chunk-invariant — the warm-up cursor and
/// collision accounting carry across `consume` calls — so fusing it with
/// profile passes in one traversal is bit-identical to a dedicated run.
///
/// # Examples
///
/// ```
/// use sdbp_core::{CombinedPredictor, MeasurePass};
/// use sdbp_passes::PassRunner;
/// use sdbp_predictors::Bimodal;
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
///
/// let events: Vec<BranchEvent> = (0..100)
///     .map(|i| BranchEvent::new(BranchAddr(0x40), i % 2 == 0, 9))
///     .collect();
/// let mut predictor = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64)));
/// let mut pass = MeasurePass::new(&mut predictor);
/// PassRunner::new().run(SliceSource::new(&events), &mut [&mut pass]);
/// assert_eq!(pass.stats().branches, 100);
/// ```
pub struct MeasurePass<'p, F = fn(&BranchEvent, &BranchResolution)> {
    predictor: &'p mut CombinedPredictor,
    observer: F,
    run: Run,
}

impl<'p> MeasurePass<'p, fn(&BranchEvent, &BranchResolution)> {
    /// A measurement pass with no observer, measuring from the first event.
    pub fn new(predictor: &'p mut CombinedPredictor) -> Self {
        Self::with_observer(predictor, |_, _| {})
    }
}

impl<'p, F> MeasurePass<'p, F>
where
    F: FnMut(&BranchEvent, &BranchResolution),
{
    /// A measurement pass invoking `observer` for every measured branch.
    pub fn with_observer(predictor: &'p mut CombinedPredictor, observer: F) -> Self {
        Self {
            predictor,
            observer,
            run: Run {
                warmup_instructions: 0,
                stats: SimStats::default(),
                seen_instructions: 0,
                warmed_up: true,
                resolutions: Vec::with_capacity(BATCH),
            },
        }
    }

    /// Excludes the first `instructions` from the statistics; see
    /// [`Simulator::with_warmup`] for the boundary rule.
    pub fn with_warmup(mut self, instructions: u64) -> Self {
        self.run.warmup_instructions = instructions;
        // Once the warm-up budget is crossed, every later event is measured;
        // the flag keeps the accounting off the steady-state path.
        self.run.warmed_up = instructions == 0;
        self
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.run.stats
    }

    /// Consumes the pass, returning the accumulated statistics.
    pub fn into_stats(self) -> SimStats {
        self.run.stats
    }
}

impl<F> Pass for MeasurePass<'_, F>
where
    F: FnMut(&BranchEvent, &BranchResolution),
{
    fn consume(&mut self, events: &[BranchEvent]) {
        self.run.process(events, self.predictor, &mut self.observer);
    }

    fn name(&self) -> &str {
        "simulator-measure"
    }
}

/// Events resolved per predictor batch call; also the chunk size pulled
/// through `fill_events` for non-slice sources.
const BATCH: usize = 4096;

/// In-flight accounting state of one simulation run, shared by the
/// zero-copy and chunked event paths.
struct Run {
    warmup_instructions: u64,
    stats: SimStats,
    seen_instructions: u64,
    warmed_up: bool,
    /// Reused scratch for the per-batch resolutions.
    resolutions: Vec<BranchResolution>,
}

impl Run {
    /// Resolves and accounts one batch of events.
    ///
    /// Resolution runs batch-at-a-time through
    /// [`CombinedPredictor::resolve_batch`] (so the predictor's loop-carried
    /// state stays in registers), then the accounting pass walks the events
    /// and resolutions pairwise. Splitting the two preserves the per-event
    /// semantics exactly: the predictor trains on every event (including
    /// warm-up), while statistics and the observer see only measured ones.
    #[inline]
    fn process<F>(
        &mut self,
        events: &[BranchEvent],
        predictor: &mut CombinedPredictor,
        observer: &mut F,
    ) where
        F: FnMut(&BranchEvent, &BranchResolution),
    {
        for chunk in events.chunks(BATCH) {
            // The measured remainder of each chunk is accounted fully
            // branchlessly — the collision (and, in the hinted path, static)
            // bits are the least predictable data in the loop — into local
            // accumulators, settled into `self.stats` once per chunk
            // (`self`-routed counters cannot stay in registers across
            // iterations: the prediction loads might alias them).
            if let Some(predictions) = predictor.try_resolve_batch_dynamic(chunk) {
                // Pure-dynamic configurations: account straight off the raw
                // predictions; every branch is dynamic by construction.
                let start = self.consume_warmup(chunk);
                let mut acc = SimStats::default();
                for (event, &p) in chunk[start..].iter().zip(&predictions[start..]) {
                    let correct = p.taken == event.taken;
                    acc.instructions += event.instructions();
                    acc.branches += 1;
                    acc.mispredictions += u64::from(!correct);
                    acc.collisions.record_if(p.collision, correct);
                    let resolution = BranchResolution {
                        predicted_taken: p.taken,
                        was_static: false,
                        collision: p.collision,
                    };
                    observer(event, &resolution);
                }
                self.stats.merge(&acc);
            } else {
                self.resolutions.clear();
                predictor.resolve_batch(chunk, &mut self.resolutions);
                let start = self.consume_warmup(chunk);
                let mut acc = SimStats::default();
                for (event, &resolution) in chunk[start..].iter().zip(&self.resolutions[start..]) {
                    let correct = resolution.predicted_taken == event.taken;
                    acc.instructions += event.instructions();
                    acc.branches += 1;
                    acc.mispredictions += u64::from(!correct);
                    acc.static_predicted += u64::from(resolution.was_static);
                    acc.static_mispredictions += u64::from(resolution.was_static & !correct);
                    acc.collisions.record_if(resolution.collision, correct);
                    observer(event, &resolution);
                }
                self.stats.merge(&acc);
            }
        }
    }

    /// Consumes the warm-up prefix of `chunk` event by event, returning the
    /// index of the first measured event (`chunk.len()` when the whole chunk
    /// is warm-up). An event whose running instruction total stays ≤ the
    /// budget is warm-up; the first to cross it is measured (the straddle
    /// rule), so the cursor stops *on* that event.
    #[inline]
    fn consume_warmup(&mut self, chunk: &[BranchEvent]) -> usize {
        let mut start = 0;
        while !self.warmed_up && start < chunk.len() {
            self.seen_instructions += chunk[start].instructions();
            if self.seen_instructions > self.warmup_instructions {
                self.warmed_up = true;
            } else {
                start += 1;
            }
        }
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::ShiftPolicy;
    use sdbp_predictors::{Bimodal, Gshare};
    use sdbp_profiles::HintDatabase;
    use sdbp_trace::{BranchAddr, SliceSource};

    fn ev(pc: u64, taken: bool, gap: u32) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), taken, gap)
    }

    #[test]
    fn counts_add_up() {
        // Alternating branch defeats bimodal almost entirely.
        let events: Vec<BranchEvent> = (0..1000).map(|i| ev(0x40, i % 2 == 0, 9)).collect();
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64)));
        let stats = Simulator::new().run(SliceSource::new(&events), &mut p);
        assert_eq!(stats.branches, 1000);
        assert_eq!(stats.instructions, 10_000);
        assert!(stats.accuracy() < 0.6);
        assert_eq!(stats.static_predicted, 0);
        // MISPs/KI = mispredictions per 10 KI.
        assert!((stats.misp_per_ki() - stats.mispredictions as f64 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn static_hits_and_misses_are_attributed() {
        let mut hints = HintDatabase::new();
        hints.insert(BranchAddr(0x40), true);
        let events: Vec<BranchEvent> = (0..100).map(|i| ev(0x40, i % 10 != 9, 0)).collect();
        let mut p = CombinedPredictor::new(Box::new(Bimodal::new(64)), hints, ShiftPolicy::NoShift);
        let stats = Simulator::new().run(SliceSource::new(&events), &mut p);
        assert_eq!(stats.static_predicted, 100);
        assert_eq!(stats.static_mispredictions, 10);
        assert_eq!(stats.mispredictions, 10);
        assert!((stats.static_accuracy() - 0.9).abs() < 1e-12);
        assert!((stats.static_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_discounts_cold_start() {
        let events: Vec<BranchEvent> = (0..200).map(|_| ev(0x40, true, 9)).collect();
        let cold = Simulator::new().run(
            SliceSource::new(&events),
            &mut CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64))),
        );
        let warm = Simulator::new().with_warmup(100).run(
            SliceSource::new(&events),
            &mut CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64))),
        );
        // The single cold mispredict lands in the warm-up window.
        assert_eq!(cold.mispredictions, 1);
        assert_eq!(warm.mispredictions, 0);
        assert!(warm.branches < cold.branches);
    }

    #[test]
    fn warmup_boundary_attribution_is_pinned() {
        // 20 events of 10 instructions each (gap 9): 200 instructions total.
        let events: Vec<BranchEvent> = (0..20).map(|_| ev(0x40, true, 9)).collect();
        let run = |warmup: u64| {
            Simulator::new().with_warmup(warmup).run(
                SliceSource::new(&events),
                &mut CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64))),
            )
        };
        // An event ending exactly on the budget stays in the warm-up window:
        // event 10 ends at instruction 100 == budget.
        let exact = run(100);
        assert_eq!(exact.branches, 10);
        assert_eq!(exact.instructions, 100);
        // A straddling event is measured: with budget 95, event 10 spans
        // instructions 91..=100, crosses the boundary, and counts.
        let straddle = run(95);
        assert_eq!(straddle.branches, 11);
        assert_eq!(straddle.instructions, 110, "the full event is measured");
        // A budget past the stream measures nothing, but never panics.
        assert_eq!(run(10_000).branches, 0);
    }

    #[test]
    fn warmup_straddling_event_lands_in_exactly_one_window() {
        // Irregular gaps: events cost 3, 7, 11, 5, 2 instructions. A warm-up
        // budget inside the third event (3+7=10 < 12 < 21) must attribute
        // that event to the measured window — 3 measured branches, and
        // warm-up + measured instructions account for every event.
        let costs = [2u32, 6, 10, 4, 1]; // gap = cost - 1
        let events: Vec<BranchEvent> = costs.iter().map(|&g| ev(0x40, true, g)).collect();
        let stats = Simulator::new().with_warmup(12).run(
            SliceSource::new(&events),
            &mut CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64))),
        );
        assert_eq!(stats.branches, 3);
        assert_eq!(stats.instructions, 11 + 5 + 2);
    }

    #[test]
    fn chunked_run_matches_across_chunk_boundaries() {
        // More events than one 4096-event chunk, with warm-up engaged, to
        // cross at least one chunk boundary in the measured window.
        let events: Vec<BranchEvent> = (0..10_000)
            .map(|i| ev(0x40 + (i % 13) * 4, i % 3 == 0, (i % 5) as u32))
            .collect();
        let reference = {
            // Hand-rolled single-event loop with the documented semantics.
            let mut p = CombinedPredictor::pure_dynamic(Box::new(Gshare::new(256)));
            let mut seen = 0u64;
            let (mut branches, mut mispredictions) = (0u64, 0u64);
            for e in &events {
                let r = p.resolve(e);
                seen += e.instructions();
                if seen <= 1000 {
                    continue;
                }
                branches += 1;
                mispredictions += u64::from(r.predicted_taken != e.taken);
            }
            (branches, mispredictions)
        };
        let stats = Simulator::new().with_warmup(1000).run(
            SliceSource::new(&events),
            &mut CombinedPredictor::pure_dynamic(Box::new(Gshare::new(256))),
        );
        assert_eq!((stats.branches, stats.mispredictions), reference);
    }

    #[test]
    fn collisions_are_classified_by_final_correctness() {
        // Two branches with pseudo-random outcomes wander across a tiny
        // gshare table and repeatedly steal each other's counters.
        let mut events = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            events.push(ev(0x0, state & (1 << 33) != 0, 0));
            events.push(ev(0x1000, state & (1 << 34) != 0, 0));
        }
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Gshare::new(16)));
        let stats = Simulator::new().run(SliceSource::new(&events), &mut p);
        assert!(stats.collisions.total > 0, "tiny table must alias");
        assert_eq!(
            stats.collisions.total,
            stats.collisions.constructive + stats.collisions.destructive
        );
    }

    #[test]
    fn observer_sees_every_measured_branch() {
        let events: Vec<BranchEvent> = (0..50).map(|i| ev(0x40, i % 2 == 0, 0)).collect();
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64)));
        let mut observed = 0;
        let stats = Simulator::new().run_with_observer(
            SliceSource::new(&events),
            &mut p,
            |event, resolution| {
                observed += 1;
                assert_eq!(event.pc, BranchAddr(0x40));
                assert!(!resolution.was_static);
            },
        );
        assert_eq!(observed, 50);
        assert_eq!(stats.branches, 50);
    }
}
