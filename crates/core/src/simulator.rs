//! The measurement-phase simulator.

use crate::combined::{BranchResolution, CombinedPredictor};
use crate::metrics::SimStats;
use sdbp_trace::{BranchEvent, BranchSource};

/// Drives a branch stream through a [`CombinedPredictor`], accumulating
/// [`SimStats`].
///
/// Collisions are classified constructive/destructive at resolution time by
/// whether the *final* prediction was correct — the paper's simplified
/// variant of Young et al.'s taxonomy.
///
/// # Examples
///
/// ```
/// use sdbp_core::{CombinedPredictor, Simulator};
/// use sdbp_predictors::Gshare;
/// use sdbp_trace::BranchSource;
/// use sdbp_workloads::{Benchmark, InputSet, Workload};
///
/// let source = Workload::spec95(Benchmark::Compress)
///     .generator(InputSet::Train, 1)
///     .take_instructions(200_000);
/// let mut predictor = CombinedPredictor::pure_dynamic(Box::new(Gshare::new(4096)));
/// let stats = Simulator::new().run(source, &mut predictor);
/// assert!(stats.branches > 10_000);
/// assert!(stats.accuracy() > 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    warmup_instructions: u64,
}

impl Simulator {
    /// Creates a simulator that measures from the first instruction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Excludes the first `instructions` from the statistics (tables still
    /// train during warm-up). The paper's billion-instruction runs amortize
    /// cold-start; our scaled-down runs can optionally discount it instead.
    pub fn with_warmup(mut self, instructions: u64) -> Self {
        self.warmup_instructions = instructions;
        self
    }

    /// Runs `source` to exhaustion through `predictor`.
    pub fn run<S: BranchSource>(&self, source: S, predictor: &mut CombinedPredictor) -> SimStats {
        self.run_with_observer(source, predictor, |_, _| {})
    }

    /// Like [`Simulator::run`], invoking `observer` for every measured
    /// branch with the event and its resolution — the hook used for
    /// per-branch accuracy collection, misprediction logging, and the
    /// examples' custom instrumentation.
    pub fn run_with_observer<S, F>(
        &self,
        mut source: S,
        predictor: &mut CombinedPredictor,
        mut observer: F,
    ) -> SimStats
    where
        S: BranchSource,
        F: FnMut(&BranchEvent, &BranchResolution),
    {
        let mut stats = SimStats::default();
        let mut seen_instructions = 0u64;
        while let Some(event) = source.next_event() {
            let resolution = predictor.resolve(&event);
            seen_instructions += event.instructions();
            if seen_instructions <= self.warmup_instructions {
                continue;
            }
            let correct = resolution.predicted_taken == event.taken;
            stats.instructions += event.instructions();
            stats.branches += 1;
            stats.mispredictions += u64::from(!correct);
            if resolution.was_static {
                stats.static_predicted += 1;
                stats.static_mispredictions += u64::from(!correct);
            }
            if resolution.collision {
                stats.collisions.record(correct);
            }
            observer(&event, &resolution);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::ShiftPolicy;
    use sdbp_predictors::{Bimodal, Gshare};
    use sdbp_profiles::HintDatabase;
    use sdbp_trace::{BranchAddr, SliceSource};

    fn ev(pc: u64, taken: bool, gap: u32) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), taken, gap)
    }

    #[test]
    fn counts_add_up() {
        // Alternating branch defeats bimodal almost entirely.
        let events: Vec<BranchEvent> = (0..1000).map(|i| ev(0x40, i % 2 == 0, 9)).collect();
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64)));
        let stats = Simulator::new().run(SliceSource::new(&events), &mut p);
        assert_eq!(stats.branches, 1000);
        assert_eq!(stats.instructions, 10_000);
        assert!(stats.accuracy() < 0.6);
        assert_eq!(stats.static_predicted, 0);
        // MISPs/KI = mispredictions per 10 KI.
        assert!((stats.misp_per_ki() - stats.mispredictions as f64 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn static_hits_and_misses_are_attributed() {
        let mut hints = HintDatabase::new();
        hints.insert(BranchAddr(0x40), true);
        let events: Vec<BranchEvent> = (0..100).map(|i| ev(0x40, i % 10 != 9, 0)).collect();
        let mut p = CombinedPredictor::new(Box::new(Bimodal::new(64)), hints, ShiftPolicy::NoShift);
        let stats = Simulator::new().run(SliceSource::new(&events), &mut p);
        assert_eq!(stats.static_predicted, 100);
        assert_eq!(stats.static_mispredictions, 10);
        assert_eq!(stats.mispredictions, 10);
        assert!((stats.static_accuracy() - 0.9).abs() < 1e-12);
        assert!((stats.static_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_discounts_cold_start() {
        let events: Vec<BranchEvent> = (0..200).map(|_| ev(0x40, true, 9)).collect();
        let cold = Simulator::new().run(
            SliceSource::new(&events),
            &mut CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64))),
        );
        let warm = Simulator::new().with_warmup(100).run(
            SliceSource::new(&events),
            &mut CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64))),
        );
        // The single cold mispredict lands in the warm-up window.
        assert_eq!(cold.mispredictions, 1);
        assert_eq!(warm.mispredictions, 0);
        assert!(warm.branches < cold.branches);
    }

    #[test]
    fn collisions_are_classified_by_final_correctness() {
        // Two branches with pseudo-random outcomes wander across a tiny
        // gshare table and repeatedly steal each other's counters.
        let mut events = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            events.push(ev(0x0, state & (1 << 33) != 0, 0));
            events.push(ev(0x1000, state & (1 << 34) != 0, 0));
        }
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Gshare::new(16)));
        let stats = Simulator::new().run(SliceSource::new(&events), &mut p);
        assert!(stats.collisions.total > 0, "tiny table must alias");
        assert_eq!(
            stats.collisions.total,
            stats.collisions.constructive + stats.collisions.destructive
        );
    }

    #[test]
    fn observer_sees_every_measured_branch() {
        let events: Vec<BranchEvent> = (0..50).map(|i| ev(0x40, i % 2 == 0, 0)).collect();
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64)));
        let mut observed = 0;
        let stats = Simulator::new().run_with_observer(
            SliceSource::new(&events),
            &mut p,
            |event, resolution| {
                observed += 1;
                assert_eq!(event.pc, BranchAddr(0x40));
                assert!(!resolution.was_static);
            },
        );
        assert_eq!(observed, 50);
        assert_eq!(stats.branches, 50);
    }
}
