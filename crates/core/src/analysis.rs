//! Per-branch misprediction analysis.
//!
//! The paper's selection schemes are built on knowing *which* branches a
//! predictor gets wrong; [`BranchAnalysis`] exposes that view to users —
//! run it over any configuration and ask for the top misprediction
//! contributors, the equivalent of the profiling a performance engineer
//! would do before adding hints by hand.

use crate::combined::CombinedPredictor;
use crate::metrics::SimStats;
use crate::simulator::Simulator;
use sdbp_trace::{BranchAddr, BranchSource};
use std::collections::HashMap;

/// Per-branch counters from one analyzed run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchRecord {
    /// Times the branch was executed.
    pub executed: u64,
    /// Times it was mispredicted.
    pub mispredicted: u64,
    /// Times it was resolved by a static hint.
    pub static_predicted: u64,
    /// Times a dynamic lookup for it collided.
    pub collisions: u64,
}

impl BranchRecord {
    /// Misprediction rate; `0.0` if never executed.
    pub fn misprediction_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.executed as f64
        }
    }
}

/// A per-branch breakdown of a simulation run.
///
/// # Examples
///
/// ```
/// use sdbp_core::{BranchAnalysis, CombinedPredictor};
/// use sdbp_predictors::Gshare;
/// use sdbp_trace::BranchSource;
/// use sdbp_workloads::{Benchmark, InputSet, Workload};
///
/// let source = Workload::spec95(Benchmark::Compress)
///     .generator(InputSet::Ref, 1)
///     .take_instructions(200_000);
/// let mut predictor = CombinedPredictor::pure_dynamic(Box::new(Gshare::new(1024)));
/// let analysis = BranchAnalysis::run(source, &mut predictor);
/// let top = analysis.top_mispredictors(5);
/// assert!(top.len() <= 5);
/// assert!(analysis.stats().branches > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchAnalysis {
    stats: SimStats,
    branches: HashMap<BranchAddr, BranchRecord>,
}

impl BranchAnalysis {
    /// Simulates `source` through `predictor`, recording per-branch detail.
    pub fn run<S: BranchSource>(source: S, predictor: &mut CombinedPredictor) -> Self {
        let mut branches: HashMap<BranchAddr, BranchRecord> = HashMap::new();
        let stats = Simulator::new().run_with_observer(source, predictor, |event, res| {
            let r = branches.entry(event.pc).or_default();
            r.executed += 1;
            r.mispredicted += u64::from(res.predicted_taken != event.taken);
            r.static_predicted += u64::from(res.was_static);
            r.collisions += u64::from(res.collision);
        });
        Self { stats, branches }
    }

    /// The aggregate run statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Per-branch record, if the branch executed.
    pub fn branch(&self, pc: BranchAddr) -> Option<&BranchRecord> {
        self.branches.get(&pc)
    }

    /// Number of distinct branches observed.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// The `n` branches contributing the most total mispredictions, sorted
    /// descending (ties broken by address for determinism).
    pub fn top_mispredictors(&self, n: usize) -> Vec<(BranchAddr, BranchRecord)> {
        let mut all: Vec<(BranchAddr, BranchRecord)> =
            self.branches.iter().map(|(pc, r)| (*pc, *r)).collect();
        all.sort_unstable_by(|a, b| b.1.mispredicted.cmp(&a.1.mispredicted).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Fraction of all mispredictions attributable to the top `n` branches —
    /// a skewness measure: when it is high, a few static hints go a long way.
    pub fn misprediction_concentration(&self, n: usize) -> f64 {
        if self.stats.mispredictions == 0 {
            return 0.0;
        }
        let top: u64 = self
            .top_mispredictors(n)
            .iter()
            .map(|(_, r)| r.mispredicted)
            .sum();
        top as f64 / self.stats.mispredictions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::Bimodal;
    use sdbp_trace::{BranchEvent, SliceSource};

    fn events() -> Vec<BranchEvent> {
        let mut v = Vec::new();
        for i in 0..400 {
            // 0x10: alternating (hard); 0x20: always taken (easy).
            v.push(BranchEvent::new(BranchAddr(0x10), i % 2 == 0, 1));
            v.push(BranchEvent::new(BranchAddr(0x20), true, 1));
        }
        v
    }

    #[test]
    fn identifies_the_hard_branch() {
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(256)));
        let analysis = BranchAnalysis::run(SliceSource::new(&events()), &mut p);
        assert_eq!(analysis.len(), 2);
        let top = analysis.top_mispredictors(1);
        assert_eq!(
            top[0].0,
            BranchAddr(0x10),
            "the alternating branch dominates"
        );
        assert!(top[0].1.misprediction_rate() > 0.4);
        let easy = analysis.branch(BranchAddr(0x20)).unwrap();
        assert!(easy.misprediction_rate() < 0.05);
    }

    #[test]
    fn per_branch_counts_sum_to_aggregate() {
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(256)));
        let analysis = BranchAnalysis::run(SliceSource::new(&events()), &mut p);
        let executed: u64 = analysis
            .top_mispredictors(usize::MAX)
            .iter()
            .map(|(_, r)| r.executed)
            .sum();
        let mispredicted: u64 = analysis
            .top_mispredictors(usize::MAX)
            .iter()
            .map(|(_, r)| r.mispredicted)
            .sum();
        assert_eq!(executed, analysis.stats().branches);
        assert_eq!(mispredicted, analysis.stats().mispredictions);
    }

    #[test]
    fn concentration_is_a_fraction_and_monotone() {
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(256)));
        let analysis = BranchAnalysis::run(SliceSource::new(&events()), &mut p);
        let c1 = analysis.misprediction_concentration(1);
        let c2 = analysis.misprediction_concentration(2);
        assert!((0.0..=1.0).contains(&c1));
        assert!(c2 >= c1);
        assert!((c2 - 1.0).abs() < 1e-12, "two branches cover everything");
    }

    #[test]
    fn empty_run_is_empty() {
        let mut p = CombinedPredictor::pure_dynamic(Box::new(Bimodal::new(64)));
        let analysis = BranchAnalysis::run(SliceSource::new(&[]), &mut p);
        assert!(analysis.is_empty());
        assert_eq!(analysis.misprediction_concentration(10), 0.0);
        assert!(analysis.top_mispredictors(3).is_empty());
    }
}
