//! Composable streaming passes over branch-event streams.
//!
//! Every consumer in the stack — bias profiling, accuracy profiling, the
//! measurement simulator, diagnostics probes — ultimately walks the same
//! kind of stream: a [`BranchSource`] producing [`BranchEvent`]s. Before
//! this crate each of them owned its private traversal loop, so collecting
//! a bias profile *and* three accuracy profiles over one run meant
//! generating (or re-reading) the stream four times.
//!
//! A [`Pass`] is a chunk-at-a-time consumer (`begin` / `consume` /
//! `finish`), and a [`PassRunner`] drives **one** traversal of a source
//! through any number of passes simultaneously — *pass fusion*. Because the
//! runner pulls bounded chunks through [`BranchSource::fill_events`] (or
//! borrows whole in-memory slices via
//! [`BranchSource::drain_as_slice`] at zero copies), peak memory is bounded
//! by the chunk size even for streams that could never be materialized —
//! *bounded-memory streaming*.
//!
//! # The chunk-invariance contract
//!
//! A pass must produce **bit-identical results regardless of how the event
//! sequence is split into chunks**: `consume(&[a, b])` must be equivalent
//! to `consume(&[a]); consume(&[b])`. All passes in this workspace satisfy
//! the contract (it is pinned by proptests), which is what makes fusion a
//! pure wall-clock optimization: a fused traversal is bit-identical to
//! running each pass on its own private traversal.
//!
//! # Examples
//!
//! Count events and instructions in one traversal alongside any other pass:
//!
//! ```
//! use sdbp_passes::{Pass, PassRunner};
//! use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
//!
//! struct TakenCount(u64);
//! impl Pass for TakenCount {
//!     fn consume(&mut self, events: &[BranchEvent]) {
//!         self.0 += events.iter().filter(|e| e.taken).count() as u64;
//!     }
//! }
//!
//! let events = [
//!     BranchEvent::new(BranchAddr(0x10), true, 1),
//!     BranchEvent::new(BranchAddr(0x14), false, 1),
//! ];
//! let mut taken = TakenCount(0);
//! let stats = PassRunner::new().run(SliceSource::new(&events), &mut [&mut taken]);
//! assert_eq!(stats.events, 2);
//! assert_eq!(taken.0, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdbp_trace::{BranchEvent, BranchSource};

/// A chunk-at-a-time consumer of a branch-event stream.
///
/// The trait is object-safe so a [`PassRunner`] can drive a heterogeneous
/// set of passes (`&mut [&mut dyn Pass]`) through one traversal. See the
/// [module docs](self) for the chunk-invariance contract every
/// implementation must uphold.
///
/// # Examples
///
/// Only [`consume`](Pass::consume) is required; a minimal pass is a struct
/// holding its accumulator:
///
/// ```
/// use sdbp_passes::Pass;
/// use sdbp_trace::{BranchAddr, BranchEvent};
///
/// #[derive(Default)]
/// struct Instructions(u64);
/// impl Pass for Instructions {
///     fn consume(&mut self, events: &[BranchEvent]) {
///         self.0 += events.iter().map(|e| 1 + u64::from(e.gap)).sum::<u64>();
///     }
///     fn name(&self) -> &str {
///         "instructions"
///     }
/// }
///
/// let mut pass = Instructions::default();
/// // Chunk-invariance: one chunk of two events...
/// pass.consume(&[
///     BranchEvent::new(BranchAddr(0x10), true, 3),
///     BranchEvent::new(BranchAddr(0x14), false, 5),
/// ]);
/// // ...must equal two chunks of one.
/// let mut split = Instructions::default();
/// split.consume(&[BranchEvent::new(BranchAddr(0x10), true, 3)]);
/// split.consume(&[BranchEvent::new(BranchAddr(0x14), false, 5)]);
/// assert_eq!(pass.0, split.0);
/// ```
pub trait Pass {
    /// Called once before the first chunk. Default: nothing.
    fn begin(&mut self) {}

    /// Feeds one chunk of consecutive events. Chunks arrive in stream
    /// order; their concatenation is exactly the event sequence of the
    /// traversed source.
    fn consume(&mut self, events: &[BranchEvent]);

    /// Called once after the last chunk. Default: nothing.
    fn finish(&mut self) {}

    /// A short label for diagnostics. Default: `"<pass>"`.
    fn name(&self) -> &str {
        "<pass>"
    }
}

impl<P: Pass + ?Sized> Pass for &mut P {
    fn begin(&mut self) {
        (**self).begin()
    }

    fn consume(&mut self, events: &[BranchEvent]) {
        (**self).consume(events)
    }

    fn finish(&mut self) {
        (**self).finish()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A [`Pass`] wrapping a per-chunk closure — the cheapest way to bolt ad-hoc
/// instrumentation onto a traversal next to the structured passes.
///
/// ```
/// use sdbp_passes::{FnPass, PassRunner};
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
///
/// let events = [BranchEvent::new(BranchAddr(0x10), true, 3)];
/// let mut seen = 0u64;
/// let mut probe = FnPass::new("probe", |chunk: &[BranchEvent]| seen += chunk.len() as u64);
/// PassRunner::new().run(SliceSource::new(&events), &mut [&mut probe]);
/// drop(probe);
/// assert_eq!(seen, 1);
/// ```
pub struct FnPass<F> {
    name: String,
    f: F,
}

impl<F: FnMut(&[BranchEvent])> FnPass<F> {
    /// Wraps `f` with a diagnostic label.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: FnMut(&[BranchEvent])> Pass for FnPass<F> {
    fn consume(&mut self, events: &[BranchEvent]) {
        (self.f)(events)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// What one traversal covered, as observed by the runner itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Events fed to every pass.
    pub events: u64,
    /// Instructions those events account for (gap + the branch itself).
    pub instructions: u64,
    /// Chunks the stream was split into.
    pub chunks: u64,
    /// Passes driven.
    pub passes: usize,
}

/// Events pulled per chunk when the source is not slice-backed; also the
/// upper bound on chunk length handed to passes. Matches the simulator's
/// internal batch size so the batched predictor kernels run at full width.
pub const DEFAULT_CHUNK: usize = 4096;

/// Drives one traversal of a [`BranchSource`] through N [`Pass`]es.
///
/// In-memory sources hand over their whole remainder through
/// [`BranchSource::drain_as_slice`] and are re-chunked without copying;
/// everything else is pulled through [`BranchSource::fill_events`] into a
/// single reusable buffer of at most the chunk size — the traversal's peak
/// memory is `chunk_size * size_of::<BranchEvent>()` no matter how long the
/// stream runs.
#[derive(Debug, Clone)]
pub struct PassRunner {
    chunk: usize,
}

impl Default for PassRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl PassRunner {
    /// A runner with the default chunk size ([`DEFAULT_CHUNK`]).
    pub fn new() -> Self {
        Self {
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Overrides the chunk size (clamped to at least 1). Results are
    /// unaffected — passes are chunk-invariant — only memory/latency change.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The configured chunk size.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Runs `source` to exhaustion through every pass, in order, and
    /// returns what the traversal covered.
    ///
    /// Each chunk is handed to the passes in slice order, so a pass never
    /// sees events out of stream order and all passes see identical chunks.
    pub fn run<S: BranchSource>(
        &self,
        mut source: S,
        passes: &mut [&mut dyn Pass],
    ) -> TraversalStats {
        let mut stats = TraversalStats {
            passes: passes.len(),
            ..TraversalStats::default()
        };
        for pass in passes.iter_mut() {
            pass.begin();
        }
        if let Some(events) = source.drain_as_slice() {
            for chunk in events.chunks(self.chunk) {
                self.feed(chunk, passes, &mut stats);
            }
        } else {
            let mut buf = Vec::with_capacity(self.chunk);
            loop {
                buf.clear();
                if source.fill_events(&mut buf, self.chunk) == 0 {
                    break;
                }
                self.feed(&buf, passes, &mut stats);
            }
        }
        for pass in passes.iter_mut() {
            pass.finish();
        }
        stats
    }

    fn feed(
        &self,
        chunk: &[BranchEvent],
        passes: &mut [&mut dyn Pass],
        stats: &mut TraversalStats,
    ) {
        stats.chunks += 1;
        stats.events += chunk.len() as u64;
        stats.instructions += chunk.iter().map(|e| e.instructions()).sum::<u64>();
        for pass in passes.iter_mut() {
            pass.consume(chunk);
        }
    }
}

/// What one lockstep traversal covered: the underlying traversal plus the
/// traversals the fused execution avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockstepOutcome {
    /// The single traversal's coverage, as reported by [`PassRunner::run`].
    pub stats: TraversalStats,
    /// Traversals avoided against member-at-a-time execution: one full
    /// decode + history walk per member beyond the first.
    pub traversals_saved: u64,
}

/// Drives N independently configured consumers — typically one measurement
/// pass per predictor configuration — over **one** decoded chunk stream.
///
/// [`PassRunner`] fuses heterogeneous *consumers* of one experiment;
/// `LockstepRunner` is the same mechanism aimed at *predictor configs*: a
/// grid's cells that share a measurement stream (same benchmark, input, seed
/// and budget) differ only in the predictor under test, so each member rides
/// the same traversal instead of re-decoding the trace per cell. By the
/// chunk-invariance contract every member observes exactly the event
/// sequence a dedicated traversal would have fed it, so lockstep execution
/// is bit-identical to sequential member-at-a-time runs — the equivalence
/// the `sdbp grid --no-lockstep` escape hatch and the lockstep property
/// tests pin.
///
/// # Examples
///
/// ```
/// use sdbp_passes::{FnPass, LockstepRunner};
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
///
/// let events = [BranchEvent::new(BranchAddr(0x10), true, 3)];
/// let (mut a, mut b) = (0u64, 0u64);
/// let mut first = FnPass::new("a", |c: &[BranchEvent]| a += c.len() as u64);
/// let mut second = FnPass::new("b", |c: &[BranchEvent]| b += c.len() as u64);
/// let outcome = LockstepRunner::new().run(
///     SliceSource::new(&events),
///     &mut [&mut first, &mut second],
/// );
/// assert_eq!(outcome.traversals_saved, 1);
/// drop((first, second));
/// assert_eq!((a, b), (1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockstepRunner {
    runner: PassRunner,
}

impl LockstepRunner {
    /// A lockstep runner with the default chunk size ([`DEFAULT_CHUNK`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the chunk size (clamped to at least 1); results are
    /// unaffected by chunk-invariance.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.runner = self.runner.with_chunk(chunk);
        self
    }

    /// The configured chunk size.
    pub fn chunk(&self) -> usize {
        self.runner.chunk()
    }

    /// Runs `source` to exhaustion through every member in lockstep,
    /// returning the shared traversal's coverage and the number of
    /// traversals saved against member-at-a-time execution
    /// (`members.len() - 1`; zero for a single member or an empty set).
    pub fn run<S: BranchSource>(
        &self,
        source: S,
        members: &mut [&mut dyn Pass],
    ) -> LockstepOutcome {
        let saved = (members.len() as u64).saturating_sub(1);
        let stats = self.runner.run(source, members);
        LockstepOutcome {
            stats,
            traversals_saved: saved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_trace::{BranchAddr, IterSource, SliceSource};

    fn ev(pc: u64, taken: bool, gap: u32) -> BranchEvent {
        BranchEvent::new(BranchAddr(pc), taken, gap)
    }

    /// Records every chunk boundary and the concatenated event sequence.
    #[derive(Default)]
    struct Recorder {
        began: u32,
        finished: u32,
        chunk_lens: Vec<usize>,
        events: Vec<BranchEvent>,
    }

    impl Pass for Recorder {
        fn begin(&mut self) {
            self.began += 1;
        }

        fn consume(&mut self, events: &[BranchEvent]) {
            self.chunk_lens.push(events.len());
            self.events.extend_from_slice(events);
        }

        fn finish(&mut self) {
            self.finished += 1;
        }

        fn name(&self) -> &str {
            "recorder"
        }
    }

    fn sample(n: usize) -> Vec<BranchEvent> {
        (0..n)
            .map(|i| ev(0x40 + (i as u64 % 7) * 4, i % 3 == 0, (i % 5) as u32))
            .collect()
    }

    #[test]
    fn lifecycle_runs_once_even_for_empty_streams() {
        let mut r = Recorder::default();
        let stats = PassRunner::new().run(SliceSource::new(&[]), &mut [&mut r]);
        assert_eq!((r.began, r.finished), (1, 1));
        assert!(r.chunk_lens.is_empty());
        assert_eq!(stats.events, 0);
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.passes, 1);
    }

    #[test]
    fn every_pass_sees_the_whole_stream_in_order() {
        let events = sample(100);
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        let stats = PassRunner::new()
            .with_chunk(7)
            .run(SliceSource::new(&events), &mut [&mut a, &mut b]);
        assert_eq!(a.events, events);
        assert_eq!(b.events, events);
        assert_eq!(a.chunk_lens, b.chunk_lens, "passes see identical chunks");
        assert_eq!(stats.events, 100);
        assert_eq!(stats.passes, 2);
        assert_eq!(
            stats.instructions,
            events.iter().map(|e| e.instructions()).sum::<u64>()
        );
    }

    #[test]
    fn slice_and_chunked_paths_deliver_the_same_sequence() {
        let events = sample(1000);
        let mut sliced = Recorder::default();
        let mut pulled = Recorder::default();
        let s1 = PassRunner::new()
            .with_chunk(64)
            .run(SliceSource::new(&events), &mut [&mut sliced]);
        let s2 = PassRunner::new().with_chunk(64).run(
            IterSource::new(events.iter().copied(), "it"),
            &mut [&mut pulled],
        );
        assert_eq!(sliced.events, pulled.events);
        assert_eq!(s1, s2, "both paths report identical traversal stats");
        // 1000 events at chunk 64: 15 full chunks + a 40-event tail.
        assert_eq!(s1.chunks, 16);
    }

    #[test]
    fn chunk_size_is_an_upper_bound() {
        let events = sample(130);
        let mut r = Recorder::default();
        PassRunner::new()
            .with_chunk(50)
            .run(SliceSource::new(&events), &mut [&mut r]);
        assert!(r.chunk_lens.iter().all(|&n| n <= 50));
        assert_eq!(r.chunk_lens.iter().sum::<usize>(), 130);
    }

    #[test]
    fn zero_chunk_clamps_to_one() {
        let runner = PassRunner::new().with_chunk(0);
        assert_eq!(runner.chunk(), 1);
        let events = sample(3);
        let mut r = Recorder::default();
        let stats = runner.run(SliceSource::new(&events), &mut [&mut r]);
        assert_eq!(stats.chunks, 3, "one event per chunk");
        assert_eq!(r.events, events);
    }

    #[test]
    fn fn_pass_and_mut_ref_forwarding() {
        let events = sample(10);
        let mut seen = 0u64;
        let mut probe = FnPass::new("probe", |chunk: &[BranchEvent]| seen += chunk.len() as u64);
        {
            // Drive through the &mut forwarding impl.
            let mut by_ref: &mut dyn Pass = &mut probe;
            assert_eq!(by_ref.name(), "probe");
            PassRunner::new().run(SliceSource::new(&events), &mut [&mut by_ref]);
        }
        drop(probe);
        assert_eq!(seen, 10);
    }

    #[test]
    fn default_pass_name_is_anonymous() {
        struct Nop;
        impl Pass for Nop {
            fn consume(&mut self, _: &[BranchEvent]) {}
        }
        assert_eq!(Nop.name(), "<pass>");
    }

    #[test]
    fn lockstep_members_match_sequential_runs_exactly() {
        let events = sample(500);
        // Lockstep: three members ride one traversal.
        let mut m1 = Recorder::default();
        let mut m2 = Recorder::default();
        let mut m3 = Recorder::default();
        let outcome = LockstepRunner::new()
            .with_chunk(13)
            .run(SliceSource::new(&events), &mut [&mut m1, &mut m2, &mut m3]);
        assert_eq!(outcome.traversals_saved, 2);
        assert_eq!(outcome.stats.passes, 3);
        assert_eq!(outcome.stats.events, 500);
        // Sequential: each member gets a dedicated traversal.
        for member in [&m1, &m2, &m3] {
            let mut solo = Recorder::default();
            let stats = PassRunner::new()
                .with_chunk(13)
                .run(SliceSource::new(&events), &mut [&mut solo]);
            assert_eq!(member.events, solo.events, "event sequence diverged");
            assert_eq!(member.chunk_lens, solo.chunk_lens, "chunking diverged");
            assert_eq!((member.began, member.finished), (1, 1));
            assert_eq!(stats.events, outcome.stats.events);
            assert_eq!(stats.chunks, outcome.stats.chunks);
            assert_eq!(stats.instructions, outcome.stats.instructions);
        }
    }

    #[test]
    fn lockstep_savings_accounting() {
        let events = sample(10);
        // A single member saves nothing; no members saves nothing.
        let mut only = Recorder::default();
        let one = LockstepRunner::new().run(SliceSource::new(&events), &mut [&mut only]);
        assert_eq!(one.traversals_saved, 0);
        assert_eq!(only.events, events);
        let none = LockstepRunner::new().run(SliceSource::new(&events), &mut []);
        assert_eq!(none.traversals_saved, 0);
        assert_eq!(none.stats.passes, 0);
        assert_eq!(none.stats.events, 10, "traversal still consumed the source");
    }

    #[test]
    fn lockstep_chunk_configuration_forwards_to_the_runner() {
        assert_eq!(LockstepRunner::new().chunk(), DEFAULT_CHUNK);
        assert_eq!(LockstepRunner::new().with_chunk(0).chunk(), 1);
        assert_eq!(LockstepRunner::new().with_chunk(9).chunk(), 9);
    }
}
