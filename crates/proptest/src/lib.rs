//! Offline, deterministic drop-in for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so
//! the real `proptest` crate cannot be fetched. Rather than deleting the
//! property-based tests (they guard real invariants: predictor determinism,
//! codec round-trips, simulator accounting identities), this crate
//! re-implements the slice of the API those tests touch:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges,
//!   tuples (up to ten elements), [`any`] of the primitive types, and a
//!   `[chars]{lo,hi}` character-class string pattern,
//! * [`collection::vec`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in two deliberate ways: generation is
//! **fully deterministic** (the RNG is seeded from the test's module path and
//! name, so every run and every machine sees the same cases — the same
//! reproducibility bar the rest of the workspace holds itself to), and there
//! is **no shrinking** (a failing case panics with the ordinary assert
//! message). If the real dependency ever becomes available again, deleting
//! this crate and restoring the registry entry is a one-line change in the
//! workspace manifest.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The generator for one `(test, case)` pair: seeded from an FNV-1a hash
    /// of the test's full path mixed with the case index, so cases are
    /// independent but stable across runs.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range handed to TestRng::below");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// A value generator. The real proptest `Strategy` also carries a shrinking
/// value tree; this one only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map: f,
        }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy; see [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

/// String generation from a `[chars]{lo,hi}` character-class pattern — the
/// only regex form the workspace's tests use.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_char_class(self).unwrap_or_else(|| {
            panic!("unsupported string pattern '{self}' (want [chars]{{lo,hi}})")
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let reps = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, reps.0.parse().ok()?, reps.1.parse().ok()?))
}

/// Collection strategies (only `vec` is provided).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `len` elements drawn from `element` (length uniform in
    /// the half-open range, matching real proptest).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the simulation-heavy
        // suites fast while still sweeping a meaningful input space.
        Self { cases: 64 }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that runs the body over deterministically
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::for_case("x::y", 3);
            Strategy::generate(
                &crate::collection::vec((0u64..100, any::<bool>()), 1..20),
                &mut rng,
            )
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn char_class_patterns_generate_members() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z.0-9]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself round-trips arguments into the body.
        #[test]
        fn macro_generates_cases(x in 0u32..50, flag in any::<bool>()) {
            prop_assert!(x < 50);
            prop_assert_eq!(flag, flag);
        }
    }
}
