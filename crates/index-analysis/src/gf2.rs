//! GF(2) linear algebra over u64-word bit vectors.
//!
//! Vectors are `u64` bit masks (component `i` in bit `i`), matrices are row
//! lists of such masks over at most 64 columns. This is all the machinery
//! the exact index analysis needs: rank, null-space bases, and canonical
//! coset representatives under a subspace.

/// An echelonized basis of a GF(2) subspace, supporting incremental
/// insertion and canonical coset reduction.
///
/// Rows are kept sorted by descending leading (highest set) bit, with all
/// leading bits distinct, so [`Basis::reduce`] zeroes every pivot position
/// greedily and two vectors reduce to the same representative exactly when
/// they differ by a basis element.
///
/// # Examples
///
/// ```
/// use sdbp_index_analysis::Basis;
///
/// let mut b = Basis::new();
/// assert!(b.insert(0b101));
/// assert!(b.insert(0b011));
/// assert!(!b.insert(0b110), "dependent: 101 ^ 011");
/// assert_eq!(b.rank(), 2);
/// assert_eq!(b.reduce(0b101), 0);
/// assert_eq!(b.reduce(0b100), b.reduce(0b001), "same coset");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Basis {
    rows: Vec<u64>,
}

/// The mask of the highest set bit of a nonzero vector.
fn leading(v: u64) -> u64 {
    debug_assert!(v != 0);
    1u64 << (63 - v.leading_zeros())
}

impl Basis {
    /// An empty basis (rank 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// The subspace dimension.
    pub fn rank(&self) -> u32 {
        self.rows.len() as u32
    }

    /// The canonical representative of `v`'s coset: `v` with every pivot
    /// position zeroed. `reduce(u) == reduce(v)` iff `u ⊕ v` lies in the
    /// spanned subspace, and `reduce(v) == 0` iff `v` itself does.
    pub fn reduce(&self, mut v: u64) -> u64 {
        for &row in &self.rows {
            if v & leading(row) != 0 {
                v ^= row;
            }
        }
        v
    }

    /// Whether `v` lies in the spanned subspace.
    pub fn contains(&self, v: u64) -> bool {
        self.reduce(v) == 0
    }

    /// Inserts `v`, returning `true` when it was independent (rank grew).
    pub fn insert(&mut self, v: u64) -> bool {
        let v = self.reduce(v);
        if v == 0 {
            return false;
        }
        let lead = leading(v);
        let position = self
            .rows
            .iter()
            .position(|&row| leading(row) < lead)
            .unwrap_or(self.rows.len());
        self.rows.insert(position, v);
        true
    }

    /// The echelon rows, sorted by descending leading bit.
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }
}

/// A GF(2) matrix with up to 64 columns, stored as row bit masks.
///
/// Rows typically come from [`XorClause`] masks: one row per output index
/// bit, columns over the input (PC or history) bits.
///
/// # Examples
///
/// ```
/// use sdbp_index_analysis::BitMatrix;
///
/// // x0 ^ x1 = 0 and x1 ^ x2 = 0 over 3 columns: kernel spanned by 111.
/// let mut m = BitMatrix::new(3);
/// m.push_row(0b011);
/// m.push_row(0b110);
/// assert_eq!(m.rank(), 2);
/// assert_eq!(m.kernel_basis(), vec![0b111]);
/// ```
///
/// [`XorClause`]: sdbp_predictors::XorClause
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<u64>,
    columns: u32,
}

impl BitMatrix {
    /// An empty matrix over `columns` columns (1 ≤ `columns` ≤ 64).
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero or exceeds 64.
    pub fn new(columns: u32) -> Self {
        assert!(
            (1..=64).contains(&columns),
            "column count {columns} out of range"
        );
        Self {
            rows: Vec::new(),
            columns,
        }
    }

    /// The column count.
    pub fn columns(&self) -> u32 {
        self.columns
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has bits at or beyond the column count.
    pub fn push_row(&mut self, row: u64) {
        if self.columns < 64 {
            assert!(
                row < (1u64 << self.columns),
                "row {row:#x} outside {} columns",
                self.columns
            );
        }
        self.rows.push(row);
    }

    /// Reduced row echelon form: `(reduced_rows, pivot_columns)`, pivots
    /// chosen from the lowest column up, each pivot column cleared from
    /// every other row.
    fn rref(&self) -> (Vec<u64>, Vec<u32>) {
        let mut pending = self.rows.clone();
        let mut reduced: Vec<u64> = Vec::new();
        let mut pivots: Vec<u32> = Vec::new();
        for column in 0..self.columns {
            let bit = 1u64 << column;
            let Some(position) = pending.iter().position(|&r| r & bit != 0) else {
                continue;
            };
            let pivot_row = pending.swap_remove(position);
            for row in pending.iter_mut().chain(reduced.iter_mut()) {
                if *row & bit != 0 {
                    *row ^= pivot_row;
                }
            }
            reduced.push(pivot_row);
            pivots.push(column);
        }
        (reduced, pivots)
    }

    /// The matrix rank.
    pub fn rank(&self) -> u32 {
        self.rref().1.len() as u32
    }

    /// A basis of the null space `{x : parity(row & x) = 0 for every row}`,
    /// one vector per free column. `rank() + kernel_basis().len()` always
    /// equals the column count (rank–nullity).
    pub fn kernel_basis(&self) -> Vec<u64> {
        let (reduced, pivots) = self.rref();
        let mut kernel = Vec::with_capacity(self.columns as usize - pivots.len());
        for column in 0..self.columns {
            if pivots.contains(&column) {
                continue;
            }
            let mut vector = 1u64 << column;
            for (row, &pivot) in reduced.iter().zip(&pivots) {
                if row & (1u64 << column) != 0 {
                    vector |= 1u64 << pivot;
                }
            }
            kernel.push(vector);
        }
        kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basis_reduction_is_canonical_on_cosets() {
        let mut b = Basis::new();
        b.insert(0b1100);
        b.insert(0b0110);
        // 1100 ^ 0110 = 1010 is in the span; 0001 is not.
        assert!(b.contains(0b1010));
        assert!(!b.contains(0b0001));
        assert_eq!(b.reduce(0b1101), b.reduce(0b0001));
        assert_ne!(b.reduce(0b1101), b.reduce(0b0011));
        assert_eq!(b.rank(), 2);
    }

    #[test]
    fn full_rank_matrix_has_trivial_kernel() {
        let mut m = BitMatrix::new(4);
        for column in 0..4 {
            m.push_row(1u64 << column);
        }
        assert_eq!(m.rank(), 4);
        assert!(m.kernel_basis().is_empty());
    }

    #[test]
    fn zero_matrix_kernel_is_everything() {
        let m = BitMatrix::new(5);
        assert_eq!(m.rank(), 0);
        let kernel = m.kernel_basis();
        assert_eq!(kernel, vec![1, 2, 4, 8, 16]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_rows_rejected() {
        let mut m = BitMatrix::new(3);
        m.push_row(0b1000);
    }

    fn arb_matrix() -> impl Strategy<Value = BitMatrix> {
        (1u32..17, proptest::collection::vec(any::<u64>(), 0..12)).prop_map(|(columns, rows)| {
            let mask = if columns >= 64 {
                u64::MAX
            } else {
                (1u64 << columns) - 1
            };
            let mut m = BitMatrix::new(columns);
            for row in rows {
                m.push_row(row & mask);
            }
            m
        })
    }

    proptest! {
        /// Rank–nullity, and every kernel vector annihilates every row.
        #[test]
        fn kernel_satisfies_rank_nullity(m in arb_matrix()) {
            let kernel = m.kernel_basis();
            prop_assert_eq!(m.rank() + kernel.len() as u32, m.columns());
            for &v in &kernel {
                for &row in &m.rows {
                    prop_assert_eq!((row & v).count_ones() % 2, 0, "row {:#x} · {:#x}", row, v);
                }
            }
            // Kernel vectors are independent: each has a private free column.
            let mut basis = Basis::new();
            for &v in &kernel {
                prop_assert!(basis.insert(v));
            }
        }

        /// Basis membership matches reduction-difference equality.
        #[test]
        fn coset_representatives_are_consistent(
            vectors in proptest::collection::vec(any::<u64>(), 1..10),
            u in any::<u64>(),
            v in any::<u64>(),
        ) {
            let mut b = Basis::new();
            let mut inserted = 0;
            for &w in &vectors {
                if b.insert(w) {
                    inserted += 1;
                }
                prop_assert!(b.contains(w));
            }
            prop_assert_eq!(b.rank(), inserted);
            prop_assert_eq!(b.reduce(u) == b.reduce(v), b.contains(u ^ v));
            prop_assert_eq!(b.reduce(b.reduce(u)), b.reduce(u), "reduction is idempotent");
        }
    }
}
