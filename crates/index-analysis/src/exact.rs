//! Exact destructive-interference ranking over an [`IndexSpec`].
//!
//! The sampling analyzer (`sdbp_profiles::rank_interference`) evaluates
//! `probe_indices` over a history sample. For a linear predictor the same
//! quantity has closed form: under `index = c ⊕ A·pc ⊕ B·h`, a branch's
//! reachable entries are exactly the coset `c ⊕ A·pc ⊕ im(B)` —
//! `2^rank(B)` entries, each hit `2^(h − rank(B))` times over the full
//! `2^h` history enumeration. Branches therefore share entries exactly
//! when their cosets coincide (cosets are equal or disjoint), and all
//! per-entry masses inside a coset are uniform.
//!
//! # Float semantics
//!
//! This module reproduces the sampling analyzer's arithmetic, not just its
//! math. For exhaustively enumerable histories (`history_bits ≤
//! exhaustive_bits`) every mass deposit is an integer multiple of the
//! power-of-two `2^-history_bits`, so the sampled accumulation is exact
//! and order-independent — the per-entry masses here are the *same
//! floats*. The final per-branch score then replicates the sampled
//! per-history addition loop literally, bit for bit. Beyond
//! `exhaustive_bits` the sampling analyzer falls back to 256 pseudo-random
//! histories; this analyzer instead computes the exact exhaustive value
//! (per-history terms times `2^history_bits`) — a documented, tested delta
//! in the linear case.

use crate::gf2::Basis;
use sdbp_predictors::IndexSpec;
use sdbp_trace::BranchAddr;
use std::collections::HashMap;

/// One branch's proven interference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactHotspot {
    /// The branch.
    pub pc: BranchAddr,
    /// Destructive-interference mass over the exhaustive history
    /// enumeration (executions expected to meet an entry trained the
    /// opposite way by other branches).
    pub score: f64,
    /// Profiled execution count.
    pub executed: u64,
}

/// The exact analyzer's output, mirroring the sampling analyzer's ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactRanking {
    /// Branches ranked by descending score, ties broken by address;
    /// zero-score branches omitted.
    pub hotspots: Vec<ExactHotspot>,
    /// Sum of all hotspot scores.
    pub total_score: f64,
    /// Distinct `(bank, entry)` cells reachable by the profiled branches —
    /// exact coset counting, not sample coverage.
    pub cells_touched: usize,
    /// Profiled branches analyzed.
    pub branches: usize,
}

/// Per-bank coset structure of the profiled branches.
struct BankGroups {
    /// `im(B)` — the subspace of index perturbations history can cause.
    image_rank: i32,
    /// Each branch's canonical coset representative, in branch order.
    keys: Vec<u64>,
    /// Integer (taken, not-taken) execution sums per coset.
    groups: HashMap<u64, [u64; 2]>,
}

/// Ranks destructive interference of the linear predictor described by
/// `spec` on `branches` — `(pc, executed, taken)` triples sorted by
/// address with `executed > 0`, as `rank_interference` prepares them.
///
/// `exhaustive_bits` is the sampling analyzer's exhaustive-enumeration
/// threshold; at or below it the returned scores are bitwise identical to
/// the sampled ranking (see the module docs for why).
pub fn exact_interference(
    branches: &[(BranchAddr, u64, u64)],
    spec: &IndexSpec,
    exhaustive_bits: u32,
) -> ExactRanking {
    let history_bits = spec.history_bits;
    let banks: Vec<BankGroups> = spec
        .tables
        .iter()
        .map(|table| {
            let mut image = Basis::new();
            for &column in &table.hist_columns {
                image.insert(column);
            }
            let mut keys = Vec::with_capacity(branches.len());
            let mut groups: HashMap<u64, [u64; 2]> = HashMap::new();
            for &(pc, executed, taken) in branches {
                let anchor = table.constant ^ table.pc_image(pc.word_index());
                let key = image.reduce(anchor);
                keys.push(key);
                let group = groups.entry(key).or_default();
                group[0] += taken;
                group[1] += executed - taken;
            }
            BankGroups {
                image_rank: image.rank() as i32,
                keys,
                groups,
            }
        })
        .collect();

    // Each coset holds 2^rank(B) distinct entries; cosets are disjoint.
    let cells_touched = banks
        .iter()
        .map(|bank| bank.groups.len() << bank.image_rank)
        .sum();

    let per_history = 2f64.powi(-(history_bits as i32));
    let mut hotspots = Vec::with_capacity(branches.len());
    let mut total_score = 0.0;
    let mut terms: Vec<f64> = Vec::with_capacity(spec.tables.len() * 2);
    for (position, &(pc, executed, taken)) in branches.iter().enumerate() {
        // The branch's own per-history deposit, and each reachable entry's
        // total mass: the same floats the sampled accumulation produces
        // (uniform coset masses, exact dyadic sums).
        let own = [
            taken as f64 * per_history,
            (executed - taken) as f64 * per_history,
        ];
        terms.clear();
        for bank in &banks {
            let group = bank.groups[&bank.keys[position]];
            let cell = [
                group[0] as f64 * 2f64.powi(-bank.image_rank),
                group[1] as f64 * 2f64.powi(-bank.image_rank),
            ];
            let total = cell[0] + cell[1];
            if total <= 0.0 {
                continue;
            }
            for dir in 0..2 {
                let opposing = (cell[1 - dir] - own[1 - dir]).max(0.0);
                terms.push(own[dir] * opposing / total);
            }
        }
        let score = if history_bits <= exhaustive_bits {
            // Replicate the sampled analyzer's addition order literally:
            // per history, bank-major, direction-minor — bitwise identical.
            let mut score = 0.0;
            for _ in 0..(1u64 << history_bits) {
                for &term in &terms {
                    score += term;
                }
            }
            score
        } else {
            // Exact exhaustive value where sampling would approximate.
            let mut per_hist = 0.0;
            for &term in &terms {
                per_hist += term;
            }
            per_hist * 2f64.powi(history_bits as i32)
        };
        if score > 0.0 {
            total_score += score;
            hotspots.push(ExactHotspot {
                pc,
                score,
                executed,
            });
        }
    }
    hotspots.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pc.cmp(&b.pc))
    });
    ExactRanking {
        hotspots,
        total_score,
        cells_touched,
        branches: branches.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::{Bimodal, DynamicPredictor, Gshare};

    #[test]
    fn opposing_congruent_bimodal_branches_split_the_mass() {
        // Two fully biased, opposing branches sharing one 256-entry
        // bimodal cell: each scores exactly half its executions.
        let spec = Bimodal::new(64).index_spec().unwrap();
        let stride = 256u64 * 4;
        let branches = [
            (BranchAddr(0x1000), 1000, 1000),
            (BranchAddr(0x1000 + stride), 1000, 0),
        ];
        let ranking = exact_interference(&branches, &spec, 10);
        assert_eq!(ranking.hotspots.len(), 2);
        assert_eq!(ranking.hotspots[0].score, 500.0);
        assert_eq!(ranking.hotspots[1].score, 500.0);
        assert_eq!(ranking.cells_touched, 1);
    }

    #[test]
    fn gshare_congruent_pair_scores_exactly_across_the_long_history_path() {
        // 16KB gshare: 16 index bits, 12-bit history — beyond the
        // exhaustive threshold, so this exercises the multiplied closed
        // form. The pair's word indices are congruent mod 2^16.
        let spec = Gshare::new(16 * 1024).index_spec().unwrap();
        let stride = 65536u64 * 4;
        let branches = [
            (BranchAddr(0x1000), 1000, 1000),
            (BranchAddr(0x1000 + stride), 1000, 0),
        ];
        let ranking = exact_interference(&branches, &spec, 10);
        assert_eq!(ranking.hotspots[0].score, 500.0);
        // Each branch sweeps its full 2^12-entry coset.
        assert_eq!(ranking.cells_touched, 1 << 12);
        assert_eq!(ranking.branches, 2);
    }

    #[test]
    fn separated_branches_score_zero() {
        // PCs differing in word bit 14 perturb index bit 14 — outside the
        // 12-bit history image — so the two cosets are provably disjoint.
        let spec = Gshare::new(16 * 1024).index_spec().unwrap();
        let stride = (1u64 << 14) * 4;
        let branches = [
            (BranchAddr(0x1000), 1000, 1000),
            (BranchAddr(0x1000 + stride), 1000, 0),
        ];
        let ranking = exact_interference(&branches, &spec, 10);
        assert!(
            ranking.hotspots.is_empty(),
            "disjoint cosets cannot interfere"
        );
        assert_eq!(ranking.cells_touched, 2 << 12);
    }

    #[test]
    fn self_interference_is_excluded() {
        // One mixed branch alone: fighting itself is mispredictability,
        // not aliasing — the sampled analyzer subtracts it and so must we.
        let spec = Bimodal::new(64).index_spec().unwrap();
        let branches = [(BranchAddr(0x1000), 1000, 500)];
        let ranking = exact_interference(&branches, &spec, 10);
        assert!(ranking.hotspots.is_empty());
        assert_eq!(ranking.total_score, 0.0);
    }
}
