//! Exact GF(2) analysis of predictor index functions.
//!
//! Every classic predictor index function in this reproduction — bimodal,
//! ghist, gshare, gselect, the e-gskew skewing hashes — is affine over
//! GF(2), and the paper's central quantity, destructive aliasing, is
//! entirely determined by those functions. This crate takes the symbolic
//! [`IndexSpec`] each linear predictor emits and derives *proofs* where
//! the sampling analyzer produces estimates:
//!
//! * [`gf2`] — the linear-algebra core: bit-mask vectors, [`Basis`]
//!   (echelonized subspaces with canonical coset representatives) and
//!   [`BitMatrix`] (row reduction, rank, kernel bases);
//! * [`facts`] — structural facts per table: guaranteed-collision PC
//!   classes (`A`'s kernel), dead history bits, rank-deficient tables,
//!   and all-history collision proofs for branch pairs;
//! * [`exact`] — the exact destructive-interference ranking, pinned
//!   bitwise-identical to `sdbp_profiles::rank_interference`'s sampled
//!   ranking on exhaustively enumerable histories.
//!
//! `sdbp check --index-analysis` renders the facts as `SDBP06x`
//! diagnostics; see `docs/index-analysis.md` for the model.
//!
//! [`IndexSpec`]: sdbp_predictors::IndexSpec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod facts;
pub mod gf2;

pub use exact::{exact_interference, ExactHotspot, ExactRanking};
pub use facts::{analyze, proven_colliding, SpecFacts, TableFacts};
pub use gf2::{Basis, BitMatrix};
