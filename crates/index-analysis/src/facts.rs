//! Exact structural facts derived from an [`IndexSpec`].
//!
//! Where the sampling analyzer *estimates* collision structure by probing
//! histories, this module *proves* it: ranks and null spaces of the PC and
//! history matrices decide — for every input, not a sample — which PC
//! classes must collide, which history bits can never reach an index, and
//! which tables cannot use all their entries.

use crate::gf2::{Basis, BitMatrix};
use sdbp_predictors::{IndexSpec, TableSpec, MODELED_PC_BITS};
use sdbp_trace::BranchAddr;

/// Proven facts about one table (bank) of an [`IndexSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableFacts {
    /// The bank id.
    pub bank: u32,
    /// The index width.
    pub index_bits: u32,
    /// Rank of the PC matrix `A`: the number of independent index bits the
    /// branch address controls.
    pub pc_rank: u32,
    /// Rank of the history matrix `B`: the dimension of the entry set one
    /// branch can reach across histories (`2^hist_rank` entries).
    pub hist_rank: u32,
    /// Rank of the joint matrix `[A|B]`: the dimension of the reachable
    /// index space. Below `index_bits`, part of the table is provably
    /// unreachable.
    pub joint_rank: u32,
    /// A kernel basis of `A` over the modeled PC word bits: the directions
    /// `Δ` with `A·Δ = 0`, i.e. PC pairs differing by any span element
    /// collide in this bank at *every* history. The guaranteed-collision
    /// class size is `2^kernel_dim` with `kernel_dim = MODELED_PC_BITS -
    /// pc_rank`.
    pub pc_kernel: Vec<u64>,
    /// The mask of history bits with a nonzero column in this bank — bits
    /// outside it provably never influence this bank's index.
    pub reached_history: u64,
}

/// Proven facts about a whole [`IndexSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecFacts {
    /// The spec's consumed history length.
    pub history_bits: u32,
    /// How many low PC word-index bits the model covers.
    pub modeled_pc_bits: u32,
    /// Per-bank facts, in bank order.
    pub tables: Vec<TableFacts>,
}

impl SpecFacts {
    /// The mask of history bits that reach *no* bank of the predictor —
    /// register bits that are provably dead for index formation.
    pub fn dead_history_bits(&self) -> u64 {
        let mut reached = 0u64;
        for table in &self.tables {
            reached |= table.reached_history;
        }
        history_mask(self.history_bits) & !reached
    }
}

fn history_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Derives the exact facts for every table of `spec`.
pub fn analyze(spec: &IndexSpec) -> SpecFacts {
    let tables = spec
        .tables
        .iter()
        .map(|table| {
            let mut pc_basis = Basis::new();
            let mut joint_basis = Basis::new();
            for &column in &table.pc_columns {
                pc_basis.insert(column);
                joint_basis.insert(column);
            }
            let mut hist_basis = Basis::new();
            let mut reached_history = 0u64;
            for (k, &column) in table.hist_columns.iter().enumerate() {
                hist_basis.insert(column);
                joint_basis.insert(column);
                if column != 0 {
                    reached_history |= 1u64 << k;
                }
            }
            // Kernel of A from the row (clause) view: one row per output
            // index bit over the modeled PC word bits.
            let mut rows = BitMatrix::new(MODELED_PC_BITS);
            for bit in 0..table.index_bits {
                rows.push_row(table.clause(bit).pc_mask);
            }
            TableFacts {
                bank: table.bank,
                index_bits: table.index_bits,
                pc_rank: pc_basis.rank(),
                hist_rank: hist_basis.rank(),
                joint_rank: joint_basis.rank(),
                pc_kernel: rows.kernel_basis(),
                reached_history,
            }
        })
        .collect();
    SpecFacts {
        history_bits: spec.history_bits,
        modeled_pc_bits: MODELED_PC_BITS,
        tables,
    }
}

/// Proves whether branches at `p` and `q` index the same entry of `table`
/// under **every** history value: true exactly when their PC images agree,
/// since the history contribution is identical for both at any one history.
pub fn proven_colliding(table: &TableSpec, p: BranchAddr, q: BranchAddr) -> bool {
    table.pc_image(p.word_index()) == table.pc_image(q.word_index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::{DynamicPredictor, Gshare};

    #[test]
    fn gshare_facts_are_full_rank_with_no_dead_bits() {
        // gshare 1KB: 12 index bits, 12-bit history. A maps 12 word bits
        // onto 12 index bits (full rank), B is the identity on 12 bits.
        let spec = Gshare::new(1024).index_spec().unwrap();
        let facts = analyze(&spec);
        let t = &facts.tables[0];
        assert_eq!(t.pc_rank, 12);
        assert_eq!(t.hist_rank, 12);
        assert_eq!(t.joint_rank, 12, "the whole table is reachable");
        assert_eq!(t.pc_kernel.len() as u32, MODELED_PC_BITS - 12);
        assert_eq!(facts.dead_history_bits(), 0);
    }

    #[test]
    fn kernel_directions_collide_under_evaluation() {
        let spec = Gshare::new(1024).index_spec().unwrap();
        let facts = analyze(&spec);
        let table = &spec.tables[0];
        for &delta in &facts.tables[0].pc_kernel {
            let p = BranchAddr(0x1230 & !3);
            let q = BranchAddr(p.0 ^ (delta << 2));
            assert!(proven_colliding(table, p, q), "Δ={delta:#x}");
            for history in [0u64, 0x5a5, 0xfff] {
                assert_eq!(
                    table.evaluate(p.word_index(), history),
                    table.evaluate(q.word_index(), history),
                    "Δ={delta:#x} history={history:#x}"
                );
            }
        }
    }

    #[test]
    fn synthetic_dead_history_bit_is_detected() {
        // Two history bits feeding a 2-bit index, but bit 1's column is
        // zero: it provably never reaches the table.
        let spec = IndexSpec {
            history_bits: 2,
            tables: vec![TableSpec {
                bank: 0,
                index_bits: 2,
                constant: 0,
                pc_columns: vec![0; MODELED_PC_BITS as usize],
                hist_columns: vec![0b01, 0b00],
            }],
        };
        let facts = analyze(&spec);
        assert_eq!(facts.dead_history_bits(), 0b10);
        assert_eq!(facts.tables[0].hist_rank, 1);
        assert_eq!(facts.tables[0].joint_rank, 1, "rank-deficient: 2-bit table");
    }

    #[test]
    fn pc_image_equality_is_exactly_the_collision_condition() {
        let spec = Gshare::new(64).index_spec().unwrap(); // 8 index bits
        let table = &spec.tables[0];
        // Congruent pair: word indices differ by 1 << 8.
        let p = BranchAddr(0x40);
        let q = BranchAddr(0x40 + (1 << 10));
        assert!(proven_colliding(table, p, q));
        // Non-congruent pair differs at some history (here: all of them).
        let r = BranchAddr(0x44);
        assert!(!proven_colliding(table, p, r));
        assert_ne!(
            table.evaluate(p.word_index(), 0),
            table.evaluate(r.word_index(), 0)
        );
    }
}
