//! Tagged counter tables with collision instrumentation.
//!
//! [`PredictionTable`] is the hot-path storage cell of every table-based
//! predictor: a packed byte of counter-plus-validity per entry next to a
//! compact 32-bit tag fold, five bytes per entry against the naive
//! layout's eighteen (16-byte `Option<BranchAddr>` tag plus an unpacked
//! counter). [`ReferenceTable`] keeps that original naive representation
//! as an oracle for lockstep property tests and as the baseline the kernel
//! benchmark measures against.

use crate::counter::SaturatingCounter;
use sdbp_trace::BranchAddr;

/// Folds a branch address into the 32-bit tag stored per entry.
///
/// The fold is the identity for addresses below 2^32 — i.e. for any
/// realistic text segment — so collision accounting is exact there. Two
/// distinct branches can only share a tag if their addresses differ in the
/// high 32 bits in exactly the pattern the XOR cancels.
#[inline]
pub(crate) fn fold_tag(pc: BranchAddr) -> u32 {
    (pc.0 ^ (pc.0 >> 32)) as u32
}

/// A power-of-two table of saturating counters with per-entry tags.
///
/// This is the measurement mechanism of the paper's Figures 1–6: *"The tag
/// for a counter was used to store the address of the last branch using that
/// counter. When we looked up the table of counters … if the address of the
/// branch did not match the tag then we counted the event as a collision."*
///
/// Tags are pure instrumentation — they do not influence predictions and are
/// excluded from [`PredictionTable::size_bytes`].
///
/// # Storage layout
///
/// Two parallel arrays: one byte per entry packing `[valid:1 | counter:7]`,
/// and one `u32` per entry holding the tag fold. Splitting them matters on
/// the hot path: the prediction and the saturating train touch only the
/// byte array — 16 KB for the paper's 4 KB gshare, so it stays L1-resident
/// under random indexing — while the (4x larger) tag side-band is only
/// loaded and stored for collision accounting. The valid bit replaces the
/// `None` state of the reference layout's `Option<BranchAddr>` tags,
/// keeping first-touch ("no collision") semantics exact, and the 32-bit
/// tag fold is exact for any address below 2^32 (see `fold_tag`).
/// Counters are limited to 7 bits — ample for the 2- and 3-bit counters of
/// every tabled scheme here.
///
/// # Index masking
///
/// All accessors ([`lookup`](PredictionTable::lookup),
/// [`peek`](PredictionTable::peek), [`train`](PredictionTable::train),
/// [`counter`](PredictionTable::counter)) mask the index with
/// [`index_mask`](PredictionTable::index_mask) internally, so callers may
/// pass any hashed value without pre-masking. Code that *reports* indices
/// (e.g. `probe_indices`) must still mask, because the canonical table slot
/// is part of its output.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::PredictionTable;
/// use sdbp_trace::BranchAddr;
///
/// let mut t = PredictionTable::two_bit(1024);
/// let (pred, collided) = t.lookup(5, BranchAddr(0x40));
/// assert!(!collided, "first touch of an entry is not a collision");
/// let _ = pred;
/// let (_, collided) = t.lookup(5, BranchAddr(0x80));
/// assert!(collided, "a different branch reusing entry 5 aliases");
/// ```
#[derive(Debug, Clone)]
pub struct PredictionTable {
    /// One packed `[valid:1 | counter:7]` byte per entry.
    counters: Vec<u8>,
    /// One 32-bit tag fold per entry (meaningful only when the entry's
    /// valid bit is set).
    tags: Vec<u32>,
    entries: usize,
    counter_bits: u8,
    /// Largest counter value (counters hold at most 7 bits).
    max: u8,
    lookups: u64,
    collisions: u64,
}

/// In-byte mask of the counter value (low 7 bits).
pub(crate) const COUNTER_MASK: u8 = 0x7f;
/// In-byte flag: the entry has been looked up at least once.
pub(crate) const VALID: u8 = 0x80;

impl PredictionTable {
    /// Creates a table of `entries` counters, each a copy of `template`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize, template: SaturatingCounter) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table entries {entries} must be a power of two"
        );
        assert!(
            template.max() <= COUNTER_MASK,
            "counters wider than 7 bits do not fit the packed layout"
        );
        Self {
            counters: vec![template.value(); entries],
            tags: vec![0; entries],
            entries,
            counter_bits: template.max().count_ones() as u8,
            max: template.max(),
            lookups: 0,
            collisions: 0,
        }
    }

    /// Creates a table of classic 2-bit counters initialized weakly
    /// not-taken.
    pub fn two_bit(entries: usize) -> Self {
        Self::new(entries, SaturatingCounter::two_bit())
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Number of index bits (`log2(entries)`).
    pub fn index_bits(&self) -> u32 {
        self.entries.trailing_zeros()
    }

    /// Bitmask selecting a valid index.
    pub fn index_mask(&self) -> u64 {
        self.entries as u64 - 1
    }

    /// Architectural storage in bytes (counters only; tags are
    /// instrumentation).
    pub fn size_bytes(&self) -> usize {
        (self.entries * self.counter_bits as usize).div_ceil(8)
    }

    /// Reads the counter at `index` for branch `pc`, recording aliasing.
    ///
    /// The index is masked with [`index_mask`](PredictionTable::index_mask)
    /// internally. Returns `(predict_taken, collided)` where `collided`
    /// reports whether a *different* branch was the last user of the entry.
    /// The entry's tag is updated to `pc`.
    #[inline]
    pub fn lookup(&mut self, index: u64, pc: BranchAddr) -> (bool, bool) {
        let i = (index & self.index_mask()) as usize;
        self.lookups += 1;
        let tag = fold_tag(pc);
        let c = self.counters[i];
        // Non-short-circuiting `&`: collisions are data-dependent (and near
        // random on aliasing workloads), so a conditional branch here would
        // mispredict constantly in the simulation inner loop.
        let collided = (c & VALID != 0) & (self.tags[i] != tag);
        self.collisions += collided as u64;
        self.counters[i] = VALID | (c & COUNTER_MASK);
        self.tags[i] = tag;
        (c & COUNTER_MASK > self.max / 2, collided)
    }

    /// Fused [`lookup`](PredictionTable::lookup) +
    /// [`train`](PredictionTable::train) on the same entry: one load and one
    /// store instead of two of each.
    ///
    /// Observably equivalent to `lookup(index, pc)` followed by
    /// `train(index, taken)` — the prediction and collision report come from
    /// the pre-training entry state. This is the per-event path of the
    /// single-table predictors' `predict_update`.
    #[inline]
    pub fn lookup_train(&mut self, index: u64, pc: BranchAddr, taken: bool) -> (bool, bool) {
        let i = (index & self.index_mask()) as usize;
        self.lookups += 1;
        let tag = fold_tag(pc);
        let c = self.counters[i];
        let collided = (c & VALID != 0) & (self.tags[i] != tag);
        self.collisions += collided as u64;
        let v = c & COUNTER_MASK;
        // Branchless saturating step: `taken` is exactly the branch outcome
        // stream being simulated — the least predictable data in the loop.
        let up = u8::from(taken) & u8::from(v < self.max);
        let down = u8::from(!taken) & u8::from(v > 0);
        self.counters[i] = VALID | (v + up - down);
        self.tags[i] = tag;
        (v > self.max / 2, collided)
    }

    /// Reads the counter at `index` (masked internally) without touching
    /// tags or statistics.
    ///
    /// Used by meta-predictors that consult a bank but do not "use" it in the
    /// aliasing-measurement sense.
    #[inline]
    pub fn peek(&self, index: u64) -> bool {
        let i = (index & self.index_mask()) as usize;
        self.counters[i] & COUNTER_MASK > self.max / 2
    }

    /// The counter at `index` (masked internally), materialized by value.
    pub fn counter(&self, index: u64) -> SaturatingCounter {
        let i = (index & self.index_mask()) as usize;
        SaturatingCounter::new(self.counter_bits, self.counters[i] & COUNTER_MASK)
    }

    /// Trains the counter at `index` (masked internally) toward `taken`.
    #[inline]
    pub fn train(&mut self, index: u64, taken: bool) {
        let i = (index & self.index_mask()) as usize;
        let c = self.counters[i];
        let v = c & COUNTER_MASK;
        // Branchless saturating step — see `lookup_train`.
        let up = u8::from(taken) & u8::from(v < self.max);
        let down = u8::from(!taken) & u8::from(v > 0);
        self.counters[i] = (c & VALID) | (v + up - down);
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total collisions observed.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Decomposed mutable view for batched predictor loops:
    /// `(counters, tags, max)`.
    ///
    /// Batch loops (`DynamicPredictor::predict_update_batch` overrides) hoist
    /// these into locals so the compiler keeps the loop-carried state in
    /// registers — stores through the array pointers cannot be proven not to
    /// alias `self`'s scalar fields, so a per-event `lookup_train` call
    /// reloads them every iteration. Pair with
    /// [`add_batch_stats`](PredictionTable::add_batch_stats) to settle the
    /// lookup/collision accounting afterwards.
    pub(crate) fn batch_parts(&mut self) -> (&mut [u8], &mut [u32], u8) {
        (&mut self.counters, &mut self.tags, self.max)
    }

    /// Folds locally accumulated batch statistics back into the table.
    pub(crate) fn add_batch_stats(&mut self, lookups: u64, collisions: u64) {
        self.lookups += lookups;
        self.collisions += collisions;
    }
}

/// The original unpacked counter table: one [`SaturatingCounter`] plus one
/// `Option<BranchAddr>` tag per entry.
///
/// Behaviorally identical to [`PredictionTable`] (same constructor contract,
/// same internal index masking, same collision semantics, same
/// `size_bytes` accounting) but with over three times the cache footprint
/// (18 bytes per entry against 5). Retained as
/// the oracle for the packed-vs-reference lockstep property tests and as the
/// baseline kernel the `bench-kernel` harness measures speedups against. Not
/// used by any predictor.
#[derive(Debug, Clone)]
pub struct ReferenceTable {
    counters: Vec<SaturatingCounter>,
    tags: Vec<Option<BranchAddr>>,
    counter_bits: u8,
    lookups: u64,
    collisions: u64,
}

impl ReferenceTable {
    /// Creates a table of `entries` counters, each a copy of `template`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize, template: SaturatingCounter) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table entries {entries} must be a power of two"
        );
        Self {
            counters: vec![template; entries],
            tags: vec![None; entries],
            counter_bits: template.max().count_ones() as u8,
            lookups: 0,
            collisions: 0,
        }
    }

    /// Creates a table of classic 2-bit counters initialized weakly
    /// not-taken.
    pub fn two_bit(entries: usize) -> Self {
        Self::new(entries, SaturatingCounter::two_bit())
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// Number of index bits (`log2(entries)`).
    pub fn index_bits(&self) -> u32 {
        self.counters.len().trailing_zeros()
    }

    /// Bitmask selecting a valid index.
    pub fn index_mask(&self) -> u64 {
        self.counters.len() as u64 - 1
    }

    /// Architectural storage in bytes (counters only; tags are
    /// instrumentation).
    pub fn size_bytes(&self) -> usize {
        (self.counters.len() * self.counter_bits as usize).div_ceil(8)
    }

    /// Reads the counter at `index` (masked internally) for branch `pc`,
    /// recording aliasing.
    pub fn lookup(&mut self, index: u64, pc: BranchAddr) -> (bool, bool) {
        let i = (index & self.index_mask()) as usize;
        self.lookups += 1;
        let collided = match self.tags[i] {
            Some(prev) => prev != pc,
            None => false,
        };
        if collided {
            self.collisions += 1;
        }
        self.tags[i] = Some(pc);
        (self.counters[i].predict_taken(), collided)
    }

    /// Reads the counter at `index` (masked internally) without touching
    /// tags or statistics.
    pub fn peek(&self, index: u64) -> bool {
        self.counters[(index & self.index_mask()) as usize].predict_taken()
    }

    /// The counter at `index` (masked internally), by value.
    pub fn counter(&self, index: u64) -> SaturatingCounter {
        self.counters[(index & self.index_mask()) as usize]
    }

    /// Trains the counter at `index` (masked internally) toward `taken`.
    pub fn train(&mut self, index: u64, taken: bool) {
        let i = (index & self.index_mask()) as usize;
        self.counters[i].train(taken);
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total collisions observed.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting_matches_paper_convention() {
        // 4 KB of 2-bit counters = 16K entries.
        let t = PredictionTable::two_bit(16 * 1024);
        assert_eq!(t.size_bytes(), 4096);
        assert_eq!(t.index_bits(), 14);
        assert_eq!(t.index_mask(), 0x3fff);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = PredictionTable::two_bit(1000);
    }

    #[test]
    fn collision_detection_follows_tags() {
        let mut t = PredictionTable::two_bit(16);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        assert!(!t.lookup(3, a).1, "first use: no collision");
        assert!(!t.lookup(3, a).1, "same branch again: no collision");
        assert!(t.lookup(3, b).1, "different branch: collision");
        assert!(!t.lookup(3, b).1, "b owns the entry now");
        assert!(t.lookup(3, a).1, "a returns: collision again");
        assert_eq!(t.lookups(), 5);
        assert_eq!(t.collisions(), 2);
    }

    #[test]
    fn peek_does_not_disturb_tags() {
        let mut t = PredictionTable::two_bit(16);
        let a = BranchAddr(0x100);
        t.lookup(7, a);
        let _ = t.peek(7);
        assert_eq!(t.lookups(), 1);
        assert!(!t.lookup(7, a).1);
    }

    #[test]
    fn training_moves_predictions() {
        let mut t = PredictionTable::two_bit(8);
        assert!(!t.peek(0));
        t.train(0, true);
        assert!(t.peek(0));
        t.train(0, false);
        t.train(0, false);
        assert!(!t.peek(0));
        assert!(!t.counter(0).predict_taken());
    }

    #[test]
    fn distinct_entries_are_independent() {
        let mut t = PredictionTable::two_bit(8);
        t.train(1, true);
        t.train(1, true);
        assert!(t.peek(1));
        assert!(!t.peek(2));
    }

    #[test]
    fn indices_are_masked_internally() {
        let mut t = PredictionTable::two_bit(8);
        // Index 9 wraps to entry 1 in an 8-entry table.
        t.train(9, true);
        t.train(9, true);
        assert!(t.peek(1));
        assert!(t.peek(8 + 8 + 1), "peek masks too");
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        assert!(!t.lookup(2, a).1);
        assert!(t.lookup(10, b).1, "masked lookup aliases entry 2");
        assert_eq!(t.counter(10).value(), t.counter(2).value());
    }

    #[test]
    fn three_bit_counters_pack_and_saturate() {
        let mut t = PredictionTable::new(8, SaturatingCounter::new(3, 3));
        assert_eq!(t.size_bytes(), 3);
        assert!(!t.peek(0));
        t.train(0, true);
        assert!(t.peek(0), "3-bit midpoint crossing flips the prediction");
        for _ in 0..10 {
            t.train(0, true);
        }
        assert_eq!(t.counter(0).value(), 7, "saturates at 2^3-1");
        assert_eq!(t.counter(1).value(), 3, "neighbors undisturbed");
        for _ in 0..10 {
            t.train(0, false);
        }
        assert_eq!(t.counter(0).value(), 0);
    }

    #[test]
    fn packed_layout_keeps_neighbors_independent() {
        // Drive every entry of a word-spanning table to a distinct state and
        // check no write bleeds into an adjacent slot.
        let mut t = PredictionTable::two_bit(64);
        for i in 0..64u64 {
            for _ in 0..(i % 4) {
                t.train(i, true);
            }
        }
        for i in 0..64u64 {
            let expect = (1 + i % 4).min(3) as u8;
            assert_eq!(t.counter(i).value(), expect, "entry {i}");
        }
    }

    #[test]
    fn lookup_train_equals_lookup_then_train() {
        let mut fused = PredictionTable::new(16, SaturatingCounter::new(3, 3));
        let mut split = fused.clone();
        let mut state = 0x5eed_0123_4567_89abu64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let index = state >> 7;
            let pc = BranchAddr((state >> 23) % 5 * 4);
            let taken = state & (1 << 40) != 0;
            let a = fused.lookup_train(index, pc, taken);
            let b = split.lookup(index, pc);
            split.train(index, taken);
            assert_eq!(a, b);
        }
        assert_eq!(fused.lookups(), split.lookups());
        assert_eq!(fused.collisions(), split.collisions());
        for i in 0..16u64 {
            assert_eq!(fused.counter(i).value(), split.counter(i).value());
        }
    }

    #[test]
    fn reference_table_matches_packed_on_the_doc_sequence() {
        let mut t = ReferenceTable::two_bit(16);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        assert!(!t.lookup(3, a).1);
        assert!(!t.lookup(3, a).1);
        assert!(t.lookup(3, b).1);
        assert!(!t.lookup(3, b).1);
        assert!(t.lookup(3, a).1);
        assert_eq!(t.lookups(), 5);
        assert_eq!(t.collisions(), 2);
        assert_eq!(t.size_bytes(), 4);
        assert_eq!(ReferenceTable::two_bit(16 * 1024).size_bytes(), 4096);
    }
}
