//! Tagged counter tables with collision instrumentation.

use crate::counter::SaturatingCounter;
use sdbp_trace::BranchAddr;

/// A power-of-two table of saturating counters with per-entry tags.
///
/// This is the measurement mechanism of the paper's Figures 1–6: *"The tag
/// for a counter was used to store the address of the last branch using that
/// counter. When we looked up the table of counters … if the address of the
/// branch did not match the tag then we counted the event as a collision."*
///
/// Tags are pure instrumentation — they do not influence predictions and are
/// excluded from [`PredictionTable::size_bytes`].
///
/// # Examples
///
/// ```
/// use sdbp_predictors::PredictionTable;
/// use sdbp_trace::BranchAddr;
///
/// let mut t = PredictionTable::two_bit(1024);
/// let (pred, collided) = t.lookup(5, BranchAddr(0x40));
/// assert!(!collided, "first touch of an entry is not a collision");
/// let _ = pred;
/// let (_, collided) = t.lookup(5, BranchAddr(0x80));
/// assert!(collided, "a different branch reusing entry 5 aliases");
/// ```
#[derive(Debug, Clone)]
pub struct PredictionTable {
    counters: Vec<SaturatingCounter>,
    tags: Vec<Option<BranchAddr>>,
    counter_bits: u8,
    lookups: u64,
    collisions: u64,
}

impl PredictionTable {
    /// Creates a table of `entries` counters, each a copy of `template`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize, template: SaturatingCounter) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table entries {entries} must be a power of two"
        );
        Self {
            counters: vec![template; entries],
            tags: vec![None; entries],
            counter_bits: template.max().count_ones() as u8,
            lookups: 0,
            collisions: 0,
        }
    }

    /// Creates a table of classic 2-bit counters initialized weakly
    /// not-taken.
    pub fn two_bit(entries: usize) -> Self {
        Self::new(entries, SaturatingCounter::two_bit())
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// Number of index bits (`log2(entries)`).
    pub fn index_bits(&self) -> u32 {
        self.counters.len().trailing_zeros()
    }

    /// Bitmask selecting a valid index.
    pub fn index_mask(&self) -> u64 {
        self.counters.len() as u64 - 1
    }

    /// Architectural storage in bytes (counters only; tags are
    /// instrumentation).
    pub fn size_bytes(&self) -> usize {
        (self.counters.len() * self.counter_bits as usize).div_ceil(8)
    }

    /// Reads the counter at `index` for branch `pc`, recording aliasing.
    ///
    /// Returns `(predict_taken, collided)` where `collided` reports whether a
    /// *different* branch was the last user of the entry. The entry's tag is
    /// updated to `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (callers mask with
    /// [`PredictionTable::index_mask`]).
    pub fn lookup(&mut self, index: u64, pc: BranchAddr) -> (bool, bool) {
        let i = index as usize;
        self.lookups += 1;
        let collided = match self.tags[i] {
            Some(prev) => prev != pc,
            None => false,
        };
        if collided {
            self.collisions += 1;
        }
        self.tags[i] = Some(pc);
        (self.counters[i].predict_taken(), collided)
    }

    /// Reads the counter at `index` without touching tags or statistics.
    ///
    /// Used by meta-predictors that consult a bank but do not "use" it in the
    /// aliasing-measurement sense.
    pub fn peek(&self, index: u64) -> bool {
        self.counters[index as usize].predict_taken()
    }

    /// Direct access to the counter at `index`.
    pub fn counter(&self, index: u64) -> &SaturatingCounter {
        &self.counters[index as usize]
    }

    /// Trains the counter at `index` toward `taken`.
    pub fn train(&mut self, index: u64, taken: bool) {
        debug_assert!(
            index <= self.index_mask(),
            "train index {index} outside the {}-entry table",
            self.counters.len()
        );
        self.counters[index as usize].train(taken);
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total collisions observed.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting_matches_paper_convention() {
        // 4 KB of 2-bit counters = 16K entries.
        let t = PredictionTable::two_bit(16 * 1024);
        assert_eq!(t.size_bytes(), 4096);
        assert_eq!(t.index_bits(), 14);
        assert_eq!(t.index_mask(), 0x3fff);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = PredictionTable::two_bit(1000);
    }

    #[test]
    fn collision_detection_follows_tags() {
        let mut t = PredictionTable::two_bit(16);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        assert!(!t.lookup(3, a).1, "first use: no collision");
        assert!(!t.lookup(3, a).1, "same branch again: no collision");
        assert!(t.lookup(3, b).1, "different branch: collision");
        assert!(!t.lookup(3, b).1, "b owns the entry now");
        assert!(t.lookup(3, a).1, "a returns: collision again");
        assert_eq!(t.lookups(), 5);
        assert_eq!(t.collisions(), 2);
    }

    #[test]
    fn peek_does_not_disturb_tags() {
        let mut t = PredictionTable::two_bit(16);
        let a = BranchAddr(0x100);
        t.lookup(7, a);
        let _ = t.peek(7);
        assert_eq!(t.lookups(), 1);
        assert!(!t.lookup(7, a).1);
    }

    #[test]
    fn training_moves_predictions() {
        let mut t = PredictionTable::two_bit(8);
        assert!(!t.peek(0));
        t.train(0, true);
        assert!(t.peek(0));
        t.train(0, false);
        t.train(0, false);
        assert!(!t.peek(0));
        assert!(!t.counter(0).predict_taken());
    }

    #[test]
    fn distinct_entries_are_independent() {
        let mut t = PredictionTable::two_bit(8);
        t.train(1, true);
        t.train(1, true);
        assert!(t.peek(1));
        assert!(!t.peek(2));
    }
}
