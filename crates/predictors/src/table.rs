//! Tagged counter tables with collision instrumentation.
//!
//! [`PredictionTable`] is the hot-path storage cell of every table-based
//! predictor: one `u64` per entry interleaving a packed byte of
//! counter-plus-validity with a compact 32-bit tag fold, eight bytes per
//! entry against the naive layout's eighteen (16-byte `Option<BranchAddr>`
//! tag plus an unpacked counter) — and, crucially, **one** cache line
//! touched per access against the naive layout's two. [`ReferenceTable`]
//! keeps that original naive representation as an oracle for lockstep
//! property tests and as the baseline the kernel benchmark measures
//! against.

use crate::counter::SaturatingCounter;
use sdbp_trace::BranchAddr;

/// Folds a branch address into the 32-bit tag stored per entry.
///
/// The fold is the identity for addresses below 2^32 — i.e. for any
/// realistic text segment — so collision accounting is exact there. Two
/// distinct branches can only share a tag if their addresses differ in the
/// high 32 bits in exactly the pattern the XOR cancels.
#[inline]
pub(crate) fn fold_tag(pc: BranchAddr) -> u32 {
    (pc.0 ^ (pc.0 >> 32)) as u32
}

/// A power-of-two table of saturating counters with per-entry tags.
///
/// This is the measurement mechanism of the paper's Figures 1–6: *"The tag
/// for a counter was used to store the address of the last branch using that
/// counter. When we looked up the table of counters … if the address of the
/// branch did not match the tag then we counted the event as a collision."*
///
/// Tags are pure instrumentation — they do not influence predictions and are
/// excluded from [`PredictionTable::size_bytes`].
///
/// # Storage layout
///
/// One `u64` per entry: the low byte packs `[valid:1 | counter:7]` and the
/// high 32 bits hold the tag fold. Interleaving them matters on the hot
/// path: every access needs both halves (the lookup reads the counter and
/// compares-then-rewrites the tag), and under the random indexing a
/// predictor produces, split counter/tag arrays cost two cache-line
/// touches per access where the interleaved entry costs one. For the
/// multi-bank batch kernels — four tables probed per event — that halves
/// the per-event memory traffic outright. The valid bit replaces the
/// `None` state of the reference layout's `Option<BranchAddr>` tags,
/// keeping first-touch ("no collision") semantics exact, and the 32-bit
/// tag fold is exact for any address below 2^32 (see `fold_tag`).
/// Counters are limited to 7 bits — ample for the 2- and 3-bit counters of
/// every tabled scheme here.
///
/// # Index masking
///
/// All accessors ([`lookup`](PredictionTable::lookup),
/// [`peek`](PredictionTable::peek), [`train`](PredictionTable::train),
/// [`counter`](PredictionTable::counter)) mask the index with
/// [`index_mask`](PredictionTable::index_mask) internally, so callers may
/// pass any hashed value without pre-masking. Code that *reports* indices
/// (e.g. `probe_indices`) must still mask, because the canonical table slot
/// is part of its output.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::PredictionTable;
/// use sdbp_trace::BranchAddr;
///
/// let mut t = PredictionTable::two_bit(1024);
/// let (pred, collided) = t.lookup(5, BranchAddr(0x40));
/// assert!(!collided, "first touch of an entry is not a collision");
/// let _ = pred;
/// let (_, collided) = t.lookup(5, BranchAddr(0x80));
/// assert!(collided, "a different branch reusing entry 5 aliases");
/// ```
#[derive(Debug, Clone)]
pub struct PredictionTable {
    /// One interleaved entry per slot: `[valid:1 | counter:7]` in the low
    /// byte, the 32-bit tag fold in the high word (meaningful only when the
    /// entry's valid bit is set).
    slots: Vec<u64>,
    entries: usize,
    counter_bits: u8,
    /// Largest counter value (counters hold at most 7 bits).
    max: u8,
    lookups: u64,
    collisions: u64,
}

/// In-byte mask of the counter value (low 7 bits).
pub(crate) const COUNTER_MASK: u8 = 0x7f;
/// In-byte flag: the entry has been looked up at least once.
pub(crate) const VALID: u8 = 0x80;
/// Bit position of the tag fold inside an interleaved table entry.
pub(crate) const TAG_SHIFT: u32 = 32;

/// Assembles an interleaved table entry from its counter byte and tag fold.
#[inline]
pub(crate) fn pack_entry(counter_byte: u8, tag: u32) -> u64 {
    u64::from(counter_byte) | u64::from(tag) << TAG_SHIFT
}

/// Branchless SWAR helpers over packed `[valid:1 | counter:7]` byte lanes.
///
/// The multi-bank predictors gather one counter byte per bank into the low
/// lanes of a `u64`, threshold and saturate every lane in one arithmetic
/// pass, and scatter the stepped bytes back — replacing a chain of per-bank
/// dependent read-modify-writes with lane-parallel bit tricks. Every helper
/// relies on lane values fitting in 7 bits (`<= COUNTER_MASK`), which the
/// packed table layout guarantees: with the lane MSB free, no per-lane add
/// or subtract can carry or borrow across a lane boundary.
pub(crate) mod swar {
    /// `0x01` in every byte lane.
    pub(crate) const LANE_LSB: u64 = 0x0101_0101_0101_0101;
    /// `0x80` in every byte lane (the free MSB of each packed counter).
    pub(crate) const LANE_MSB: u64 = 0x8080_8080_8080_8080;

    /// Broadcasts `b` into every byte lane.
    #[inline]
    pub(crate) fn splat(b: u8) -> u64 {
        u64::from(b) * LANE_LSB
    }

    /// Per-lane `v < max`: `0x01` in every lane where it holds.
    ///
    /// `(v | 0x80) - max` clears its lane MSB exactly when `v < max`, and
    /// forcing the minuend's MSB keeps every lane's subtraction from
    /// borrowing into its neighbor.
    #[inline]
    pub(crate) fn lanes_lt(v: u64, max_splat: u64) -> u64 {
        (!((v | LANE_MSB) - max_splat) & LANE_MSB) >> 7
    }

    /// Per-lane `v > 0`: `0x01` in every lane where it holds.
    #[inline]
    pub(crate) fn lanes_gt_zero(v: u64) -> u64 {
        ((v + splat(0x7f)) & LANE_MSB) >> 7
    }

    /// Per-lane `v > half` — the packed predict threshold. `gt_bias` must
    /// be `splat(0x7f - half)`, hoisted by the caller.
    #[inline]
    pub(crate) fn lanes_gt(v: u64, gt_bias: u64) -> u64 {
        ((v + gt_bias) & LANE_MSB) >> 7
    }

    /// One saturating training step of every lane at once.
    ///
    /// `taken` and `enable` hold `0x00`/`0x01` per lane; enabled lanes move
    /// one step toward their `taken` lane, disabled lanes come back
    /// unchanged. Lane-wise this is exactly `PredictionTable::train`'s
    /// branchless body: increments are gated by `v < max` and decrements by
    /// `v > 0`, so no lane ever wraps.
    #[inline]
    pub(crate) fn step(v: u64, taken: u64, enable: u64, max_splat: u64) -> u64 {
        let up = taken & lanes_lt(v, max_splat) & enable;
        let down = (taken ^ LANE_LSB) & lanes_gt_zero(v) & enable;
        v + up - down
    }
}

impl PredictionTable {
    /// Creates a table of `entries` counters, each a copy of `template`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize, template: SaturatingCounter) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table entries {entries} must be a power of two"
        );
        assert!(
            template.max() <= COUNTER_MASK,
            "counters wider than 7 bits do not fit the packed layout"
        );
        Self {
            slots: vec![u64::from(template.value()); entries],
            entries,
            counter_bits: template.max().count_ones() as u8,
            max: template.max(),
            lookups: 0,
            collisions: 0,
        }
    }

    /// Creates a table of classic 2-bit counters initialized weakly
    /// not-taken.
    pub fn two_bit(entries: usize) -> Self {
        Self::new(entries, SaturatingCounter::two_bit())
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Number of index bits (`log2(entries)`).
    pub fn index_bits(&self) -> u32 {
        self.entries.trailing_zeros()
    }

    /// Bitmask selecting a valid index.
    pub fn index_mask(&self) -> u64 {
        self.entries as u64 - 1
    }

    /// Architectural storage in bytes (counters only; tags are
    /// instrumentation).
    pub fn size_bytes(&self) -> usize {
        (self.entries * self.counter_bits as usize).div_ceil(8)
    }

    /// Reads the counter at `index` for branch `pc`, recording aliasing.
    ///
    /// The index is masked with [`index_mask`](PredictionTable::index_mask)
    /// internally. Returns `(predict_taken, collided)` where `collided`
    /// reports whether a *different* branch was the last user of the entry.
    /// The entry's tag is updated to `pc`.
    #[inline]
    pub fn lookup(&mut self, index: u64, pc: BranchAddr) -> (bool, bool) {
        let i = (index & self.index_mask()) as usize;
        self.lookups += 1;
        let tag = fold_tag(pc);
        let e = self.slots[i];
        let c = e as u8;
        // Non-short-circuiting `&`: collisions are data-dependent (and near
        // random on aliasing workloads), so a conditional branch here would
        // mispredict constantly in the simulation inner loop.
        let collided = (c & VALID != 0) & ((e >> TAG_SHIFT) as u32 != tag);
        self.collisions += collided as u64;
        self.slots[i] = pack_entry(VALID | (c & COUNTER_MASK), tag);
        (c & COUNTER_MASK > self.max / 2, collided)
    }

    /// Fused [`lookup`](PredictionTable::lookup) +
    /// [`train`](PredictionTable::train) on the same entry: one load and one
    /// store instead of two of each.
    ///
    /// Observably equivalent to `lookup(index, pc)` followed by
    /// `train(index, taken)` — the prediction and collision report come from
    /// the pre-training entry state. This is the per-event path of the
    /// single-table predictors' `predict_update`.
    #[inline]
    pub fn lookup_train(&mut self, index: u64, pc: BranchAddr, taken: bool) -> (bool, bool) {
        let i = (index & self.index_mask()) as usize;
        self.lookups += 1;
        let tag = fold_tag(pc);
        let e = self.slots[i];
        let c = e as u8;
        let collided = (c & VALID != 0) & ((e >> TAG_SHIFT) as u32 != tag);
        self.collisions += collided as u64;
        let v = c & COUNTER_MASK;
        // Branchless saturating step: `taken` is exactly the branch outcome
        // stream being simulated — the least predictable data in the loop.
        let up = u8::from(taken) & u8::from(v < self.max);
        let down = u8::from(!taken) & u8::from(v > 0);
        self.slots[i] = pack_entry(VALID | (v + up - down), tag);
        (v > self.max / 2, collided)
    }

    /// Reads the counter at `index` (masked internally) without touching
    /// tags or statistics.
    ///
    /// Used by meta-predictors that consult a bank but do not "use" it in the
    /// aliasing-measurement sense.
    #[inline]
    pub fn peek(&self, index: u64) -> bool {
        let i = (index & self.index_mask()) as usize;
        self.slots[i] as u8 & COUNTER_MASK > self.max / 2
    }

    /// The counter at `index` (masked internally), materialized by value.
    pub fn counter(&self, index: u64) -> SaturatingCounter {
        let i = (index & self.index_mask()) as usize;
        SaturatingCounter::new(self.counter_bits, self.slots[i] as u8 & COUNTER_MASK)
    }

    /// Trains the counter at `index` (masked internally) toward `taken`.
    #[inline]
    pub fn train(&mut self, index: u64, taken: bool) {
        let i = (index & self.index_mask()) as usize;
        let e = self.slots[i];
        let c = e as u8;
        let v = c & COUNTER_MASK;
        // Branchless saturating step — see `lookup_train`.
        let up = u8::from(taken) & u8::from(v < self.max);
        let down = u8::from(!taken) & u8::from(v > 0);
        self.slots[i] = (e & !u64::from(COUNTER_MASK)) | u64::from(v + up - down);
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total collisions observed.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Decomposed mutable view for batched predictor loops:
    /// `(interleaved slots, max)`.
    ///
    /// Each slot is `[tag:32 | … | valid:1 | counter:7]` — split it with
    /// [`TAG_SHIFT`] and reassemble with [`pack_entry`]. Batch loops
    /// (`DynamicPredictor::predict_update_batch` overrides) hoist the slice
    /// into a local so the compiler keeps the loop-carried state in
    /// registers — stores through the array pointer cannot be proven not to
    /// alias `self`'s scalar fields, so a per-event `lookup_train` call
    /// reloads them every iteration. Pair with
    /// [`add_batch_stats`](PredictionTable::add_batch_stats) to settle the
    /// lookup/collision accounting afterwards.
    pub(crate) fn batch_parts(&mut self) -> (&mut [u64], u8) {
        (&mut self.slots, self.max)
    }

    /// Folds locally accumulated batch statistics back into the table.
    pub(crate) fn add_batch_stats(&mut self, lookups: u64, collisions: u64) {
        self.lookups += lookups;
        self.collisions += collisions;
    }
}

/// The original unpacked counter table: one [`SaturatingCounter`] plus one
/// `Option<BranchAddr>` tag per entry.
///
/// Behaviorally identical to [`PredictionTable`] (same constructor contract,
/// same internal index masking, same collision semantics, same
/// `size_bytes` accounting) but with over three times the cache footprint
/// (18 bytes per entry against 5). Retained as
/// the oracle for the packed-vs-reference lockstep property tests and as the
/// baseline kernel the `bench-kernel` harness measures speedups against. Not
/// used by any predictor.
#[derive(Debug, Clone)]
pub struct ReferenceTable {
    counters: Vec<SaturatingCounter>,
    tags: Vec<Option<BranchAddr>>,
    counter_bits: u8,
    lookups: u64,
    collisions: u64,
}

impl ReferenceTable {
    /// Creates a table of `entries` counters, each a copy of `template`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize, template: SaturatingCounter) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table entries {entries} must be a power of two"
        );
        Self {
            counters: vec![template; entries],
            tags: vec![None; entries],
            counter_bits: template.max().count_ones() as u8,
            lookups: 0,
            collisions: 0,
        }
    }

    /// Creates a table of classic 2-bit counters initialized weakly
    /// not-taken.
    pub fn two_bit(entries: usize) -> Self {
        Self::new(entries, SaturatingCounter::two_bit())
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// Number of index bits (`log2(entries)`).
    pub fn index_bits(&self) -> u32 {
        self.counters.len().trailing_zeros()
    }

    /// Bitmask selecting a valid index.
    pub fn index_mask(&self) -> u64 {
        self.counters.len() as u64 - 1
    }

    /// Architectural storage in bytes (counters only; tags are
    /// instrumentation).
    pub fn size_bytes(&self) -> usize {
        (self.counters.len() * self.counter_bits as usize).div_ceil(8)
    }

    /// Reads the counter at `index` (masked internally) for branch `pc`,
    /// recording aliasing.
    pub fn lookup(&mut self, index: u64, pc: BranchAddr) -> (bool, bool) {
        let i = (index & self.index_mask()) as usize;
        self.lookups += 1;
        let collided = match self.tags[i] {
            Some(prev) => prev != pc,
            None => false,
        };
        if collided {
            self.collisions += 1;
        }
        self.tags[i] = Some(pc);
        (self.counters[i].predict_taken(), collided)
    }

    /// Reads the counter at `index` (masked internally) without touching
    /// tags or statistics.
    pub fn peek(&self, index: u64) -> bool {
        self.counters[(index & self.index_mask()) as usize].predict_taken()
    }

    /// The counter at `index` (masked internally), by value.
    pub fn counter(&self, index: u64) -> SaturatingCounter {
        self.counters[(index & self.index_mask()) as usize]
    }

    /// Trains the counter at `index` (masked internally) toward `taken`.
    pub fn train(&mut self, index: u64, taken: bool) {
        let i = (index & self.index_mask()) as usize;
        self.counters[i].train(taken);
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total collisions observed.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting_matches_paper_convention() {
        // 4 KB of 2-bit counters = 16K entries.
        let t = PredictionTable::two_bit(16 * 1024);
        assert_eq!(t.size_bytes(), 4096);
        assert_eq!(t.index_bits(), 14);
        assert_eq!(t.index_mask(), 0x3fff);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = PredictionTable::two_bit(1000);
    }

    #[test]
    fn collision_detection_follows_tags() {
        let mut t = PredictionTable::two_bit(16);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        assert!(!t.lookup(3, a).1, "first use: no collision");
        assert!(!t.lookup(3, a).1, "same branch again: no collision");
        assert!(t.lookup(3, b).1, "different branch: collision");
        assert!(!t.lookup(3, b).1, "b owns the entry now");
        assert!(t.lookup(3, a).1, "a returns: collision again");
        assert_eq!(t.lookups(), 5);
        assert_eq!(t.collisions(), 2);
    }

    #[test]
    fn peek_does_not_disturb_tags() {
        let mut t = PredictionTable::two_bit(16);
        let a = BranchAddr(0x100);
        t.lookup(7, a);
        let _ = t.peek(7);
        assert_eq!(t.lookups(), 1);
        assert!(!t.lookup(7, a).1);
    }

    #[test]
    fn training_moves_predictions() {
        let mut t = PredictionTable::two_bit(8);
        assert!(!t.peek(0));
        t.train(0, true);
        assert!(t.peek(0));
        t.train(0, false);
        t.train(0, false);
        assert!(!t.peek(0));
        assert!(!t.counter(0).predict_taken());
    }

    #[test]
    fn distinct_entries_are_independent() {
        let mut t = PredictionTable::two_bit(8);
        t.train(1, true);
        t.train(1, true);
        assert!(t.peek(1));
        assert!(!t.peek(2));
    }

    #[test]
    fn indices_are_masked_internally() {
        let mut t = PredictionTable::two_bit(8);
        // Index 9 wraps to entry 1 in an 8-entry table.
        t.train(9, true);
        t.train(9, true);
        assert!(t.peek(1));
        assert!(t.peek(8 + 8 + 1), "peek masks too");
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        assert!(!t.lookup(2, a).1);
        assert!(t.lookup(10, b).1, "masked lookup aliases entry 2");
        assert_eq!(t.counter(10).value(), t.counter(2).value());
    }

    #[test]
    fn three_bit_counters_pack_and_saturate() {
        let mut t = PredictionTable::new(8, SaturatingCounter::new(3, 3));
        assert_eq!(t.size_bytes(), 3);
        assert!(!t.peek(0));
        t.train(0, true);
        assert!(t.peek(0), "3-bit midpoint crossing flips the prediction");
        for _ in 0..10 {
            t.train(0, true);
        }
        assert_eq!(t.counter(0).value(), 7, "saturates at 2^3-1");
        assert_eq!(t.counter(1).value(), 3, "neighbors undisturbed");
        for _ in 0..10 {
            t.train(0, false);
        }
        assert_eq!(t.counter(0).value(), 0);
    }

    #[test]
    fn packed_layout_keeps_neighbors_independent() {
        // Drive every entry of a word-spanning table to a distinct state and
        // check no write bleeds into an adjacent slot.
        let mut t = PredictionTable::two_bit(64);
        for i in 0..64u64 {
            for _ in 0..(i % 4) {
                t.train(i, true);
            }
        }
        for i in 0..64u64 {
            let expect = (1 + i % 4).min(3) as u8;
            assert_eq!(t.counter(i).value(), expect, "entry {i}");
        }
    }

    #[test]
    fn lookup_train_equals_lookup_then_train() {
        let mut fused = PredictionTable::new(16, SaturatingCounter::new(3, 3));
        let mut split = fused.clone();
        let mut state = 0x5eed_0123_4567_89abu64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let index = state >> 7;
            let pc = BranchAddr((state >> 23) % 5 * 4);
            let taken = state & (1 << 40) != 0;
            let a = fused.lookup_train(index, pc, taken);
            let b = split.lookup(index, pc);
            split.train(index, taken);
            assert_eq!(a, b);
        }
        assert_eq!(fused.lookups(), split.lookups());
        assert_eq!(fused.collisions(), split.collisions());
        for i in 0..16u64 {
            assert_eq!(fused.counter(i).value(), split.counter(i).value());
        }
    }

    #[test]
    fn swar_lane_predicates_match_scalar_comparisons() {
        for max in [1u8, 3, 7, 0x7f] {
            let max_splat = swar::splat(max);
            let half = max / 2;
            let gt_bias = swar::splat(0x7f - half);
            for v in 0..=max {
                // Place `v` in each lane in turn, with a different in-range
                // value in every other lane, and check no cross-lane leak.
                for lane in 0..8 {
                    let other = (v ^ max) & COUNTER_MASK & max;
                    let mut word = swar::splat(other);
                    word &= !(0xffu64 << (lane * 8));
                    word |= u64::from(v) << (lane * 8);
                    let lt = swar::lanes_lt(word, max_splat);
                    let gz = swar::lanes_gt_zero(word);
                    let gt = swar::lanes_gt(word, gt_bias);
                    for k in 0..8 {
                        let lane_v = ((word >> (k * 8)) & 0xff) as u8;
                        assert_eq!((lt >> (k * 8)) & 0xff, u64::from(lane_v < max));
                        assert_eq!((gz >> (k * 8)) & 0xff, u64::from(lane_v > 0));
                        assert_eq!((gt >> (k * 8)) & 0xff, u64::from(lane_v > half));
                    }
                }
            }
        }
    }

    #[test]
    fn swar_step_matches_scalar_train_per_lane() {
        // Every (value, outcome, enable) combination across two lanes, with
        // the remaining lanes carrying independent state that must come back
        // untouched when disabled and correctly stepped when enabled.
        for max in [3u8, 7] {
            let max_splat = swar::splat(max);
            for v0 in 0..=max {
                for v1 in 0..=max {
                    for (t0, t1) in [(false, false), (false, true), (true, false), (true, true)] {
                        for (e0, e1) in [(false, false), (false, true), (true, false), (true, true)]
                        {
                            let word = u64::from(v0) | u64::from(v1) << 8;
                            let taken = u64::from(t0) | u64::from(t1) << 8;
                            let enable = u64::from(e0) | u64::from(e1) << 8;
                            let stepped = swar::step(word, taken, enable, max_splat);
                            let scalar = |v: u8, t: bool, e: bool| -> u8 {
                                if !e {
                                    return v;
                                }
                                let up = u8::from(t) & u8::from(v < max);
                                let down = u8::from(!t) & u8::from(v > 0);
                                v + up - down
                            };
                            assert_eq!((stepped & 0xff) as u8, scalar(v0, t0, e0));
                            assert_eq!(((stepped >> 8) & 0xff) as u8, scalar(v1, t1, e1));
                            assert_eq!(stepped >> 16, 0, "unpopulated lanes stay zero");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reference_table_matches_packed_on_the_doc_sequence() {
        let mut t = ReferenceTable::two_bit(16);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        assert!(!t.lookup(3, a).1);
        assert!(!t.lookup(3, a).1);
        assert!(t.lookup(3, b).1);
        assert!(!t.lookup(3, b).1);
        assert!(t.lookup(3, a).1);
        assert_eq!(t.lookups(), 5);
        assert_eq!(t.collisions(), 2);
        assert_eq!(t.size_bytes(), 4);
        assert_eq!(ReferenceTable::two_bit(16 * 1024).size_bytes(), 4096);
    }
}
