//! The bimodal (Smith) predictor.

use crate::index_spec::IndexSpec;
use crate::table::PredictionTable;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::BranchAddr;

/// The classic per-address 2-bit-counter predictor.
///
/// A table of saturating counters indexed by low branch-address bits. Works
/// on the principle that branches are *bimodally* distributed — mostly taken
/// or mostly not-taken. The paper notes there is very little aliasing in
/// bimodal tables above 2 KB because typical programs have fewer static
/// branches than counters.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{Bimodal, DynamicPredictor};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Bimodal::new(2048); // 2 KB => 8K counters
/// assert_eq!(p.size_bytes(), 2048);
/// let _ = p.predict(BranchAddr(0x10));
/// p.update(BranchAddr(0x10), false);
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: PredictionTable,
    latched: Option<Latched<u64>>,
}

impl Bimodal {
    /// Creates a bimodal predictor with a `size_bytes` counter budget.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two (4 counters per byte).
    pub fn new(size_bytes: usize) -> Self {
        Self {
            table: PredictionTable::two_bit(size_bytes * 4),
            latched: None,
        }
    }

    fn index(&self, pc: BranchAddr) -> u64 {
        pc.word_index() & self.table.index_mask()
    }
}

impl DynamicPredictor for Bimodal {
    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn size_bytes(&self) -> usize {
        self.table.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let index = self.index(pc);
        let (taken, collision) = self.table.lookup(index, pc);
        self.latched = Some(Latched { pc, ctx: index });
        Prediction { taken, collision }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let index = Latched::take_for(&mut self.latched, pc, "bimodal");
        self.table.train(index, taken);
    }

    #[inline]
    fn predict_update(&mut self, pc: BranchAddr, taken: bool) -> Prediction {
        let index = self.index(pc);
        let (predicted, collision) = self.table.lookup_train(index, pc, taken);
        Prediction {
            taken: predicted,
            collision,
        }
    }

    fn shift_history(&mut self, _taken: bool) {
        // Bimodal keeps no global history.
    }

    fn total_collisions(&self) -> u64 {
        self.table.collisions()
    }

    fn probe_indices(&self, pc: BranchAddr, _history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        out.push((0, self.index(pc)));
        true
    }

    fn index_spec(&self) -> Option<IndexSpec> {
        Some(IndexSpec::from_linear_probe(
            self,
            &[self.table.index_bits()],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Bimodal::new(1024);
        let pc = BranchAddr(0x1234 & !3);
        for _ in 0..4 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn adapts_to_direction_change() {
        let mut p = Bimodal::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..10 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        for _ in 0..3 {
            let _ = p.predict(pc);
            p.update(pc, false);
        }
        assert!(
            !p.predict(pc).taken,
            "three not-takens flip a saturated counter"
        );
        p.update(pc, false);
    }

    #[test]
    fn distinct_pcs_alias_only_when_indices_match() {
        let mut p = Bimodal::new(64); // 256 counters
        let a = BranchAddr(0x0);
        let b = BranchAddr(0x400); // 0x400>>2 = 0x100 = 256 ≡ 0 (mod 256): aliases a
        let c = BranchAddr(0x4); // index 1: no alias
        let _ = p.predict(a);
        p.update(a, true);
        assert!(p.predict(b).collision, "b aliases a's counter");
        p.update(b, true);
        assert!(!p.predict(c).collision);
        p.update(c, true);
        assert_eq!(p.total_collisions(), 1);
    }

    #[test]
    fn ignores_byte_offset_bits() {
        // Branch addresses are 4-byte aligned; the two offset bits must not
        // dilute the index.
        let p = Bimodal::new(64);
        assert_eq!(p.index(BranchAddr(0x100)), p.index(BranchAddr(0x100)));
        assert_ne!(p.index(BranchAddr(0x100)), p.index(BranchAddr(0x104)));
    }

    #[test]
    fn shift_history_is_a_noop() {
        let mut p = Bimodal::new(64);
        let pc = BranchAddr(0x8);
        let before = p.predict(pc);
        p.update(pc, before.taken);
        p.shift_history(true);
        p.shift_history(false);
        // Nothing observable changes; just must not panic.
        let _ = p.predict(pc);
        p.update(pc, true);
    }

    #[test]
    fn probe_indices_are_history_free() {
        let p = Bimodal::new(64);
        let pc = BranchAddr(0x1c0);
        let mut probes = Vec::new();
        assert!(p.probe_indices(pc, 0, &mut probes));
        assert_eq!(probes, vec![(0, p.index(pc))]);
        let mut with_history = Vec::new();
        assert!(p.probe_indices(pc, 0xffff, &mut with_history));
        assert_eq!(probes, with_history, "history must not affect the index");
        assert_eq!(p.history_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "without a preceding predict")]
    fn update_requires_predict() {
        let mut p = Bimodal::new(64);
        p.update(BranchAddr(0x8), true);
    }
}
