//! The TAGE-lite predictor: tagged geometric-history tables.

use crate::history::HistoryRegister;
use crate::table::{fold_tag, PredictionTable};
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent};

/// Number of tagged banks.
const BANKS: usize = 3;

/// Geometric history lengths, shortest first. The provider is the
/// longest-history bank whose partial tag matches.
const HIST_LENS: [u32; BANKS] = [4, 8, 16];

/// Bits per tagged entry: 3-bit counter + 8-bit partial tag + 2-bit useful.
const TAGGED_ENTRY_BITS: usize = 13;

/// One tagged bank: short saturating counters keyed by a partial tag, with
/// a useful counter guarding replacement. The `fold_tags`/`valid` side-band
/// mirrors `PredictionTable`'s collision instrumentation and costs no
/// modeled hardware.
#[derive(Debug, Clone)]
struct TaggedBank {
    /// 3-bit up/down counters, taken when `>= 4`.
    ctrs: Vec<u8>,
    /// 8-bit partial tags.
    tags: Vec<u8>,
    /// 2-bit useful counters; an entry is replaceable only at zero.
    useful: Vec<u8>,
    /// Instrumentation: the full fold tag of the entry's owner.
    fold_tags: Vec<u32>,
    /// Instrumentation: whether the entry was ever allocated.
    valid: Vec<bool>,
    /// Global-history bits folded into this bank's index and tag.
    hist_len: u32,
}

impl TaggedBank {
    fn new(entries: usize, hist_len: u32) -> Self {
        Self {
            ctrs: vec![0; entries],
            tags: vec![0; entries],
            useful: vec![0; entries],
            fold_tags: vec![0; entries],
            valid: vec![false; entries],
            hist_len,
        }
    }

    fn index_bits(&self) -> u32 {
        self.ctrs.len().trailing_zeros()
    }
}

/// Everything `predict` resolved that `update` needs: per-bank indices and
/// tags (recomputing them after the history shifted would probe the wrong
/// entries), the provider, and both predictions for the useful-bit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TageCtx {
    base_index: u64,
    indices: [u32; BANKS],
    tags: [u8; BANKS],
    /// Providing component: `-1` for the base table, else the bank number.
    provider: i8,
    /// The provider's prediction (the one returned).
    predicted: bool,
    /// The next-longest matching component's prediction.
    alt_predicted: bool,
}

/// A small TAGE predictor (Seznec & Michaud style): a bimodal base table
/// plus three tagged banks indexed by geometrically increasing history
/// lengths (4, 8, 16 bits). A bank *hits* when its 8-bit partial tag
/// matches; the longest-history hit provides the prediction, falling back
/// to the base table. On a misprediction the branch allocates an entry in
/// the next-longer bank whose `useful` counter is zero (decaying the
/// candidates' counters when none is) — deterministic useful-bit
/// replacement, no RNG.
///
/// Partial tags give TAGE its edge over the paper-era schemes: an aliasing
/// branch usually *misses* the tag and falls through to a shorter history
/// instead of destructively flipping a shared counter. The frontier grid
/// (`sdbp bench-frontier`) measures how much of the static-hint benefit
/// survives that.
///
/// Collision instrumentation counts provider probes only: a base-table
/// provider goes through [`PredictionTable`]'s fold-tag machinery, a tagged
/// provider through the bank's own side-band. Tag-miss fallthroughs are
/// TAGE working as designed, not aliasing.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, TageLite};
/// use sdbp_trace::BranchAddr;
///
/// let mut t = TageLite::new(4096);
/// let _ = t.predict(BranchAddr(0x40));
/// t.update(BranchAddr(0x40), true);
/// assert_eq!(t.name(), "tage-lite");
/// ```
#[derive(Debug, Clone)]
pub struct TageLite {
    base: PredictionTable,
    banks: [TaggedBank; BANKS],
    history: HistoryRegister,
    latched: Option<Latched<TageCtx>>,
    /// Provider probes against tagged banks (base probes are counted by
    /// the base table itself).
    tagged_lookups: u64,
    tagged_collisions: u64,
}

impl TageLite {
    /// Creates a TAGE-lite within a hardware budget of `size_bytes`.
    ///
    /// Half the budget goes to the 2-bit base table; the rest splits evenly
    /// across the tagged banks, each rounded down to a power-of-two entry
    /// count of 13-bit entries — so like e-gskew the realized size is below
    /// the request (SDBP004 territory) but within a factor of two.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two or is below 32 bytes
    /// (the smallest budget giving every tagged bank at least two entries).
    pub fn new(size_bytes: usize) -> Self {
        assert!(
            size_bytes.is_power_of_two() && size_bytes >= 32,
            "tage-lite budget {size_bytes} must be a power of two >= 32"
        );
        let base = PredictionTable::two_bit(size_bytes / 2 * 4);
        let tagged_bits = size_bytes / 2 * 8;
        let mut entries = 1usize;
        while entries * 2 * TAGGED_ENTRY_BITS * BANKS <= tagged_bits {
            entries *= 2;
        }
        Self {
            base,
            banks: HIST_LENS.map(|len| TaggedBank::new(entries, len)),
            history: HistoryRegister::new(*HIST_LENS.last().expect("non-empty")),
            latched: None,
            tagged_lookups: 0,
            tagged_collisions: 0,
        }
    }

    /// Entries per tagged bank.
    pub fn tagged_entries(&self) -> usize {
        self.banks[0].ctrs.len()
    }

    /// XOR-folds the low `take` bits of a raw history value into `into`
    /// bits — `HistoryRegister::folded` for a plain `u64`, so the batched
    /// path and [`DynamicPredictor::probe_indices`] can fold a local
    /// history snapshot.
    fn fold_bits(history: u64, take: u32, into: u32) -> u64 {
        debug_assert!(into > 0 && take <= 64);
        let take_mask = if take >= 64 {
            u64::MAX
        } else {
            (1u64 << take) - 1
        };
        let into_mask = (1u64 << into) - 1;
        let mut rest = history & take_mask;
        let mut acc = 0u64;
        let mut consumed = 0;
        while consumed < take {
            acc ^= rest & into_mask;
            rest >>= into;
            consumed += into;
        }
        acc & into_mask
    }

    /// The index of `pc` in bank `b` under `history` — pure.
    fn bank_index(&self, b: usize, pc: BranchAddr, history: u64) -> u64 {
        let bank = &self.banks[b];
        let bits = bank.index_bits();
        let folded = Self::fold_bits(history, bank.hist_len, bits);
        (pc.word_index() ^ folded) & (bank.ctrs.len() as u64 - 1)
    }

    /// The 8-bit partial tag of `pc` in bank `b` under `history` — pure,
    /// and deliberately a different hash than the index so index-sharing
    /// branches still usually differ in tag.
    fn bank_tag(&self, b: usize, pc: BranchAddr, history: u64) -> u8 {
        let w = pc.word_index();
        let folded = Self::fold_bits(history, self.banks[b].hist_len, 8);
        (w ^ (w >> 7) ^ (folded << 1) ^ b as u64) as u8
    }

    /// Resolves indices, tags, the provider and both predictions for one
    /// branch under `history`. Pure reads — shared verbatim by the scalar
    /// and batched paths, which is what makes them protocol-equivalent.
    fn compute_ctx(&self, pc: BranchAddr, history: u64) -> TageCtx {
        let base_index = pc.word_index() & self.base.index_mask();
        let mut indices = [0u32; BANKS];
        let mut tags = [0u8; BANKS];
        let mut provider: i8 = -1;
        let mut alt: i8 = -1;
        for b in 0..BANKS {
            let index = self.bank_index(b, pc, history);
            let tag = self.bank_tag(b, pc, history);
            indices[b] = index as u32;
            tags[b] = tag;
            let bank = &self.banks[b];
            if bank.valid[index as usize] && bank.tags[index as usize] == tag {
                alt = provider;
                provider = b as i8;
            }
        }
        let component_pred = |c: i8| {
            if c < 0 {
                self.base.peek(base_index)
            } else {
                self.banks[c as usize].ctrs[indices[c as usize] as usize] >= 4
            }
        };
        TageCtx {
            base_index,
            indices,
            tags,
            provider,
            predicted: component_pred(provider),
            alt_predicted: component_pred(alt),
        }
    }

    /// Books lookup/collision statistics for the provider probe and returns
    /// the prediction. The only mutation is instrumentation plus the base
    /// table's tag side-band — counter state is untouched.
    fn note_provider(&mut self, ctx: &TageCtx, pc: BranchAddr) -> Prediction {
        if ctx.provider < 0 {
            let (taken, collision) = self.base.lookup(ctx.base_index, pc);
            debug_assert_eq!(taken, ctx.predicted);
            Prediction { taken, collision }
        } else {
            let bank = &mut self.banks[ctx.provider as usize];
            let i = ctx.indices[ctx.provider as usize] as usize;
            let tag = fold_tag(pc);
            let collided = bank.valid[i] && bank.fold_tags[i] != tag;
            bank.fold_tags[i] = tag;
            self.tagged_lookups += 1;
            self.tagged_collisions += u64::from(collided);
            Prediction {
                taken: ctx.predicted,
                collision: collided,
            }
        }
    }

    /// Trains the provider, updates its useful counter, and on a
    /// misprediction allocates in a longer bank (or decays the candidates).
    fn train_tables(&mut self, ctx: &TageCtx, pc: BranchAddr, taken: bool) {
        if ctx.provider < 0 {
            self.base.train(ctx.base_index, taken);
        } else {
            let bank = &mut self.banks[ctx.provider as usize];
            let i = ctx.indices[ctx.provider as usize] as usize;
            let c = bank.ctrs[i];
            bank.ctrs[i] = if taken {
                c + u8::from(c < 7)
            } else {
                c - u8::from(c > 0)
            };
            // The useful counter tracks the provider beating its
            // alternative; when both agree the outcome says nothing.
            if ctx.predicted != ctx.alt_predicted {
                let u = bank.useful[i];
                bank.useful[i] = if ctx.predicted == taken {
                    u + u8::from(u < 3)
                } else {
                    u - u8::from(u > 0)
                };
            }
        }
        let next = (ctx.provider + 1) as usize;
        if ctx.predicted != taken && next < BANKS {
            let free = (next..BANKS).find(|&b| {
                let i = ctx.indices[b] as usize;
                self.banks[b].useful[i] == 0
            });
            if let Some(b) = free {
                let i = ctx.indices[b] as usize;
                let bank = &mut self.banks[b];
                bank.tags[i] = ctx.tags[b];
                bank.ctrs[i] = if taken { 4 } else { 3 };
                bank.useful[i] = 0;
                bank.fold_tags[i] = fold_tag(pc);
                bank.valid[i] = true;
            } else {
                for b in next..BANKS {
                    let i = ctx.indices[b] as usize;
                    let u = self.banks[b].useful[i];
                    self.banks[b].useful[i] = u - u8::from(u > 0);
                }
            }
        }
    }
}

impl DynamicPredictor for TageLite {
    fn name(&self) -> &'static str {
        "tage-lite"
    }

    fn size_bytes(&self) -> usize {
        let tagged: usize = self
            .banks
            .iter()
            .map(|b| (b.ctrs.len() * TAGGED_ENTRY_BITS).div_ceil(8))
            .sum();
        self.base.size_bytes() + tagged
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let ctx = self.compute_ctx(pc, self.history.value());
        let pred = self.note_provider(&ctx, pc);
        self.latched = Some(Latched { pc, ctx });
        pred
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "tage-lite");
        self.train_tables(&ctx, pc, taken);
        self.history.push(taken);
    }

    /// The batched path hoists the history register into a local and runs
    /// the same `compute_ctx`/`note_provider`/`train_tables` pipeline per
    /// event. TAGE's per-event work is pointer-chasing across four tables,
    /// so unlike the single-table schemes there is no further state to
    /// hoist profitably; equivalence with the scalar protocol is by
    /// construction (pinned by `batch_matches_scalar_protocol`).
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        let hist_mask = (1u64 << self.history.len()) - 1;
        let mut history = self.history.value();
        out.reserve(events.len());
        for e in events {
            let ctx = self.compute_ctx(e.pc, history);
            out.push(self.note_provider(&ctx, e.pc));
            self.train_tables(&ctx, e.pc, e.taken);
            history = ((history << 1) | u64::from(e.taken)) & hist_mask;
        }
        self.history.set_bits(history);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.base.collisions() + self.tagged_collisions
    }

    fn history_bits(&self) -> u32 {
        self.history.len()
    }

    fn probe_indices(&self, pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        out.push((0, pc.word_index() & self.base.index_mask()));
        for b in 0..BANKS {
            out.push((1 + b as u32, self.bank_index(b, pc, history)));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_fits_the_budget() {
        let t = TageLite::new(4096);
        assert_eq!(t.base.entries(), 8192);
        assert_eq!(t.tagged_entries(), 256);
        assert_eq!(t.size_bytes(), 2048 + 3 * (256 * 13usize).div_ceil(8));
        assert!(t.size_bytes() > 2048 && t.size_bytes() <= 4096);
        let tiny = TageLite::new(32);
        assert_eq!(tiny.tagged_entries(), 2, "every bank must be indexable");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn undersized_budget_rejected() {
        let _ = TageLite::new(16);
    }

    #[test]
    fn fold_bits_matches_history_register() {
        let mut reg = HistoryRegister::new(16);
        for i in 0..16 {
            reg.push(i % 3 == 0);
        }
        for (take, into) in [(4u32, 3u32), (8, 3), (16, 5), (16, 8), (3, 8)] {
            assert_eq!(
                TageLite::fold_bits(reg.value(), take, into),
                reg.folded(take, into),
                "take={take} into={into}"
            );
        }
    }

    #[test]
    fn learns_biased_branches() {
        let mut t = TageLite::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..50 {
            let _ = t.predict(pc);
            t.update(pc, true);
        }
        assert!(t.predict(pc).taken);
        t.update(pc, true);
    }

    #[test]
    fn learns_history_patterns_bimodal_cannot() {
        // Period-3 pattern: the base table thrashes toward "taken" but the
        // tagged banks separate the three history contexts.
        let mut t = TageLite::new(2048);
        let pc = BranchAddr(0x80);
        let pattern = [true, true, false];
        let mut correct = 0;
        for i in 0..6000 {
            let outcome = pattern[i % pattern.len()];
            let pred = t.predict(pc);
            if i >= 3000 && pred.taken == outcome {
                correct += 1;
            }
            t.update(pc, outcome);
        }
        assert!(correct as f64 / 3000.0 > 0.95, "{correct}");
    }

    #[test]
    fn allocation_requires_a_mispredict() {
        let mut t = TageLite::new(1024);
        let pc = BranchAddr(0x40);
        // First prediction comes from the (weakly not-taken) base table and
        // is wrong, so the outcome allocates into bank 0.
        let p = t.predict(pc);
        assert!(!p.taken);
        t.update(pc, true);
        let any_alloc = t.banks.iter().any(|b| b.valid.iter().any(|&v| v));
        assert!(any_alloc);
    }

    #[test]
    fn provider_prefers_longest_matching_history() {
        let mut t = TageLite::new(2048);
        let pc = BranchAddr(0x100);
        let pattern = [true, false, false, true, false, true, true, false];
        for i in 0..4000 {
            let _ = t.predict(pc);
            t.update(pc, pattern[i % pattern.len()]);
        }
        // After heavy training on a period-8 pattern, some predictions must
        // be provided by a tagged bank (ctx recomputed just to inspect).
        let ctx = t.compute_ctx(pc, t.history.value());
        assert!(ctx.provider >= 0, "tagged banks never engaged");
    }

    #[test]
    fn probe_indices_expose_all_tables() {
        let mut t = TageLite::new(1024);
        for bit in [true, false, true, true] {
            t.shift_history(bit);
        }
        let pc = BranchAddr(0x123c);
        let history = t.history.value();
        let mut probes = Vec::new();
        assert!(t.probe_indices(pc, history, &mut probes));
        assert_eq!(probes.len(), 1 + BANKS);
        assert_eq!(probes[0], (0, pc.word_index() & t.base.index_mask()));
        for b in 0..BANKS {
            assert_eq!(probes[1 + b], (1 + b as u32, t.bank_index(b, pc, history)));
        }
        let ctx = t.compute_ctx(pc, history);
        assert_eq!(ctx.indices[0] as u64, probes[1].1, "probe == live index");
    }

    #[test]
    fn batch_matches_scalar_protocol() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let events: Vec<BranchEvent> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                BranchEvent::new(
                    BranchAddr((state >> 17) % 701 * 4),
                    state & (1 << 40) != 0,
                    0,
                )
            })
            .collect();
        let mut batched = TageLite::new(1024);
        let mut scalar = TageLite::new(1024);
        let mut out = Vec::new();
        let mut start = 0;
        for (k, size) in [0usize, 1, 7, 256, 3000].iter().cycle().enumerate() {
            if start >= events.len() {
                break;
            }
            let chunk = &events[start..(start + size).min(events.len())];
            start += size;
            out.clear();
            batched.predict_update_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len(), "chunk {k}");
            for (e, got) in chunk.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                assert_eq!(*got, want);
            }
            assert_eq!(batched.total_collisions(), scalar.total_collisions());
            assert_eq!(batched.history.value(), scalar.history.value());
            for (b1, b2) in batched.banks.iter().zip(&scalar.banks) {
                assert_eq!(b1.ctrs, b2.ctrs);
                assert_eq!(b1.tags, b2.tags);
                assert_eq!(b1.useful, b2.useful);
            }
        }
        assert_eq!(batched.tagged_lookups, scalar.tagged_lookups);
        assert_eq!(batched.base.lookups(), scalar.base.lookups());
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut t = TageLite::new(512);
            let mut state = 7u64;
            for _ in 0..2000 {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                let pc = BranchAddr((state >> 9) % 97 * 4);
                let taken = state & (1 << 33) != 0;
                let _ = t.predict(pc);
                t.update(pc, taken);
            }
            (t.total_collisions(), t.history.value())
        };
        assert_eq!(run(), run());
    }
}
