//! Skewed indexing functions for multi-bank predictors.
//!
//! The e-gskew family (Michaud, Seznec & Uhlig; used inside 2bcgskew) indexes
//! each bank with a *different* hash of `(pc, history)` chosen so that two
//! branches colliding in one bank are very unlikely to collide in the others;
//! the majority vote then hides single-bank aliasing.
//!
//! The functions here follow the published construction: a bijective one-bit
//! feedback shift `h` (and its inverse), composed per bank as
//! `f_k(v1, v2, v3) = h^k(v1) ^ h⁻ᵏ(v2) ^ v3` over `n`-bit words.

/// One step of the bijective feedback shift `h` over `n`-bit values.
///
/// `h` shifts right by one and feeds `x₀ ⊕ x_{n-1}` into the top bit, which
/// is invertible (see [`h_inv`]) and mixes low-order bits upward.
pub fn h(x: u64, n: u32) -> u64 {
    debug_assert!((2..=63).contains(&n));
    let mask = (1u64 << n) - 1;
    let x = x & mask;
    let fb = (x ^ (x >> (n - 1))) & 1;
    (x >> 1) | (fb << (n - 1))
}

/// The inverse of [`h`]: `h_inv(h(x, n), n) == x` for all `n`-bit `x`.
pub fn h_inv(x: u64, n: u32) -> u64 {
    debug_assert!((2..=63).contains(&n));
    let mask = (1u64 << n) - 1;
    let x = x & mask;
    let top = (x >> (n - 1)) & 1;
    let second = (x >> (n - 2)) & 1;
    let b0 = top ^ second;
    ((x << 1) | b0) & mask
}

/// Applies [`h`] `k` times.
pub fn h_pow(mut x: u64, n: u32, k: u32) -> u64 {
    for _ in 0..k {
        x = h(x, n);
    }
    x
}

/// Applies [`h_inv`] `k` times.
pub fn h_inv_pow(mut x: u64, n: u32, k: u32) -> u64 {
    for _ in 0..k {
        x = h_inv(x, n);
    }
    x
}

/// The bank-`k` skewing function over `n`-bit words:
/// `f_k(v1, v2, v3) = h^k(v1) ^ h⁻ᵏ(v2) ^ v3`.
///
/// Distinct `k` give distinct inter-bank dispersions; `k = 0` degenerates to
/// a plain XOR hash. The three inputs are typically (pc-high, pc-low ^
/// history, history) slices prepared by the caller.
pub fn skew(k: u32, v1: u64, v2: u64, v3: u64, n: u32) -> u64 {
    let mask = (1u64 << n) - 1;
    (h_pow(v1 & mask, n, k) ^ h_inv_pow(v2 & mask, n, k) ^ (v3 & mask)) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_is_a_bijection() {
        let n = 8;
        let mut seen = vec![false; 1 << n];
        for x in 0u64..(1 << n) {
            let y = h(x, n as u32) as usize;
            assert!(!seen[y], "h not injective at {x}");
            seen[y] = true;
        }
    }

    #[test]
    fn h_inv_inverts_h() {
        for n in [2u32, 5, 8, 13, 20] {
            for x in 0..(1u64 << n.min(12)) {
                assert_eq!(h_inv(h(x, n), n), x, "n={n}, x={x}");
                assert_eq!(h(h_inv(x, n), n), x, "n={n}, x={x}");
            }
        }
    }

    #[test]
    fn h_pow_composes() {
        let n = 10;
        let x = 0x2a5;
        assert_eq!(h_pow(x, n, 3), h(h(h(x, n), n), n));
        assert_eq!(h_inv_pow(h_pow(x, n, 4), n, 4), x);
    }

    #[test]
    fn skew_banks_disperse_colliding_pairs() {
        // Two (v1, v2, v3) triples engineered to collide in bank 1 should
        // rarely collide in bank 2 — the whole point of skewed indexing.
        let n = 10;
        let mut bank1_collisions = 0;
        let mut both_collide = 0;
        for a in 0..200u64 {
            for b in (a + 1)..200u64 {
                let ia1 = skew(1, a, a * 7, a * 13, n);
                let ib1 = skew(1, b, b * 7, b * 13, n);
                if ia1 == ib1 {
                    bank1_collisions += 1;
                    let ia2 = skew(2, a, a * 7, a * 13, n);
                    let ib2 = skew(2, b, b * 7, b * 13, n);
                    if ia2 == ib2 {
                        both_collide += 1;
                    }
                }
            }
        }
        assert!(bank1_collisions > 0, "test needs some bank-1 collisions");
        assert!(
            both_collide * 4 <= bank1_collisions,
            "{both_collide}/{bank1_collisions} pairs collide in both banks"
        );
    }

    #[test]
    fn skew_zero_is_plain_xor() {
        let n = 12;
        assert_eq!(skew(0, 0xabc, 0x123, 0x456, n), 0xabc ^ 0x123 ^ 0x456);
    }

    #[test]
    fn skew_masks_inputs() {
        let n = 4;
        let v = skew(1, u64::MAX, u64::MAX, u64::MAX, n);
        assert!(v < 16);
    }
}
