//! The gselect predictor.

use crate::history::HistoryRegister;
use crate::index_spec::IndexSpec;
use crate::table::PredictionTable;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::BranchAddr;

/// McFarling's gselect: index = branch address bits **concatenated** with
/// global history bits.
///
/// The historical stepping stone between bimodal and gshare: concatenation
/// partitions the table rigidly (so few PC bits and few history bits each),
/// where gshare's XOR lets every counter serve any combination. Included to
/// make the classic McFarling comparison (bimodal < gselect < gshare)
/// runnable, and as another aliasing data point.
///
/// The index splits the table's bits evenly: ⌈n/2⌉ address bits and ⌊n/2⌋
/// history bits.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, Gselect};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Gselect::new(4096);
/// let _ = p.predict(BranchAddr(0x60));
/// p.update(BranchAddr(0x60), true);
/// ```
#[derive(Debug, Clone)]
pub struct Gselect {
    table: PredictionTable,
    history: HistoryRegister,
    history_bits: u32,
    latched: Option<Latched<u64>>,
}

impl Gselect {
    /// Creates a gselect with a `size_bytes` counter budget.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two, or yields fewer than 4
    /// counters (the index needs at least one bit of each component).
    pub fn new(size_bytes: usize) -> Self {
        let table = PredictionTable::two_bit(size_bytes * 4);
        assert!(table.index_bits() >= 2, "gselect needs at least 4 counters");
        let history_bits = table.index_bits() / 2;
        Self {
            history: HistoryRegister::new(history_bits.max(1)),
            table,
            history_bits,
            latched: None,
        }
    }

    /// The number of history bits in the index.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    fn index(&self, pc: BranchAddr) -> u64 {
        self.index_for(pc, self.history.bits(self.history_bits))
    }

    /// The table index for `pc` under a given raw history value — the pure
    /// form of the index function, shared by [`DynamicPredictor::predict`]
    /// and [`DynamicPredictor::probe_indices`].
    fn index_for(&self, pc: BranchAddr, history: u64) -> u64 {
        let address_bits = self.table.index_bits() - self.history_bits;
        let address_part = pc.word_index() & ((1u64 << address_bits) - 1);
        let history_part = history & ((1u64 << self.history_bits) - 1);
        (address_part << self.history_bits) | history_part
    }
}

impl DynamicPredictor for Gselect {
    fn name(&self) -> &'static str {
        "gselect"
    }

    fn size_bytes(&self) -> usize {
        self.table.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let index = self.index(pc);
        let (taken, collision) = self.table.lookup(index, pc);
        self.latched = Some(Latched { pc, ctx: index });
        Prediction { taken, collision }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let index = Latched::take_for(&mut self.latched, pc, "gselect");
        self.table.train(index, taken);
        self.history.push(taken);
    }

    #[inline]
    fn predict_update(&mut self, pc: BranchAddr, taken: bool) -> Prediction {
        let index = self.index(pc);
        let (predicted, collision) = self.table.lookup_train(index, pc, taken);
        self.history.push(taken);
        Prediction {
            taken: predicted,
            collision,
        }
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.table.collisions()
    }

    fn history_bits(&self) -> u32 {
        self.history_bits
    }

    fn probe_indices(&self, pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        out.push((0, self.index_for(pc, history)));
        true
    }

    fn index_spec(&self) -> Option<IndexSpec> {
        Some(IndexSpec::from_linear_probe(
            self,
            &[self.table.index_bits()],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_concatenates_address_and_history() {
        let mut p = Gselect::new(64); // 256 counters: 4 addr bits, 4 hist bits
        assert_eq!(p.history_bits(), 4);
        let pc = BranchAddr(0b0101 << 2); // word index 0b0101
        assert_eq!(p.index(pc), 0b0101_0000);
        p.shift_history(true);
        p.shift_history(true);
        assert_eq!(p.index(pc), 0b0101_0011);
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = Gselect::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..30 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn learns_short_patterns() {
        let mut p = Gselect::new(1024);
        let pc = BranchAddr(0x40);
        let mut correct = 0;
        for i in 0..3000 {
            let outcome = i % 2 == 0;
            let pred = p.predict(pc);
            if i >= 2000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(correct > 980, "alternation accuracy {correct}/1000");
    }

    #[test]
    fn distinct_low_address_bits_do_not_collide() {
        let mut p = Gselect::new(64);
        let a = BranchAddr(0x4);
        let b = BranchAddr(0x8);
        let _ = p.predict(a);
        p.update(a, true);
        let pred = p.predict(b);
        assert!(!pred.collision, "different address partitions");
        p.update(b, false);
    }

    #[test]
    fn probe_indices_concatenate_like_the_live_index() {
        let p = Gselect::new(64); // 4 addr bits, 4 hist bits
        let pc = BranchAddr(0b0101 << 2);
        let mut probes = Vec::new();
        assert!(p.probe_indices(pc, 0b0011, &mut probes));
        assert_eq!(probes, vec![(0, 0b0101_0011)]);
        assert_eq!(DynamicPredictor::history_bits(&p), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_sizes() {
        let _ = Gselect::new(3000);
    }
}
