//! The e-gskew majority-vote predictor.

use crate::history::{fold_bits, HistoryRegister};
use crate::index_lut::PackedIndexLut;
use crate::index_spec::IndexSpec;
use crate::skew::skew;
use crate::table::{fold_tag, pack_entry, swar, PredictionTable, COUNTER_MASK, TAG_SHIFT, VALID};
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent};

/// The enhanced skewed predictor (Michaud, Seznec & Uhlig).
///
/// Three equally sized banks — a PC-indexed bimodal bank and two
/// history-indexed banks hashed with *different* skewing functions
/// ([`crate::skew`]) — vote on the prediction. Two branches colliding in one
/// bank almost never collide in the others, so the majority vote masks
/// single-bank destructive aliasing.
///
/// Update is the partial policy that the 2bcgskew paper calls "enhanced":
/// on a misprediction all three banks train; on a correct prediction only
/// the banks that voted with the outcome train (banks that were outvoted are
/// left alone — they may be serving another branch).
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, EGskew};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = EGskew::new(3 * 1024); // three 1 KB banks
/// let _ = p.predict(BranchAddr(0x20));
/// p.update(BranchAddr(0x20), true);
/// ```
#[derive(Debug, Clone)]
pub struct EGskew {
    bim: PredictionTable,
    g0: PredictionTable,
    g1: PredictionTable,
    history: HistoryRegister,
    h0_len: u32,
    h1_len: u32,
    /// Byte-sliced GF(2) factorization of the three bank indices, packed
    /// 16 bits per bank; `None` only when a bank outgrows the 16-bit lanes.
    lut: Option<PackedIndexLut>,
    latched: Option<Latched<Ctx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    bim_index: u64,
    g0_index: u64,
    g1_index: u64,
    votes: [bool; 3],
    taken: bool,
}

impl EGskew {
    /// Creates an e-gskew predictor; each of the three banks receives one
    /// third of the `size_bytes` counter budget.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes / 3` rounds to a non-power-of-two table (pass
    /// `3 * 2^k` bytes) or is zero.
    pub fn new(size_bytes: usize) -> Self {
        let per_bank = size_bytes / 3;
        assert!(per_bank > 0, "e-gskew needs at least 3 bytes");
        let bim = PredictionTable::two_bit(per_bank * 4);
        let g0 = PredictionTable::two_bit(per_bank * 4);
        let g1 = PredictionTable::two_bit(per_bank * 4);
        let n = g0.index_bits();
        // Shorter history on g0, full-width history on g1: diversity in both
        // hash function *and* history reach.
        let h0_len = (n / 2).max(1);
        let h1_len = n;
        let mut p = Self {
            history: HistoryRegister::new(h1_len.max(1)),
            bim,
            g0,
            g1,
            h0_len,
            h1_len,
            lut: None,
            latched: None,
        };
        // The packed LUT gives each bank a 16-bit lane; every realistic
        // configuration fits (16 index bits = 256 Ki-counter banks).
        if n <= 16 && p.bim.index_bits() <= 16 {
            p.lut = Some(PackedIndexLut::build(2 * n, p.history.len(), |w, h| {
                let (ib, i0, i1) = p.indices_raw(w, h);
                ib | i0 << 16 | i1 << 32
            }));
        }
        p
    }

    fn indices(&self, pc: BranchAddr) -> (u64, u64, u64) {
        self.indices_for(pc, self.history.value())
    }

    /// The three bank indices for `pc` under a raw history value — the pure
    /// form of the index functions, shared by the predict path and
    /// [`DynamicPredictor::probe_indices`]. Every ingredient (bit selects,
    /// XOR folds, the [`crate::skew`] hashes) is GF(2)-linear, so the whole
    /// triple is too.
    fn indices_for(&self, pc: BranchAddr, history: u64) -> (u64, u64, u64) {
        self.indices_raw(pc.word_index(), history)
    }

    fn indices_raw(&self, w: u64, history: u64) -> (u64, u64, u64) {
        let n = self.g0.index_bits();
        let lo = w & self.g0.index_mask();
        let hi = (w >> n) & self.g0.index_mask();
        let f0 = fold_bits(history, self.h0_len, n);
        let f1 = fold_bits(history, self.h1_len, n);
        let bim_index = w & self.bim.index_mask();
        let g0_index = skew(1, lo ^ f0, hi, f0, n);
        let g1_index = skew(2, lo ^ f1, hi, f1, n);
        (bim_index, g0_index, g1_index)
    }
}

impl DynamicPredictor for EGskew {
    fn name(&self) -> &'static str {
        "e-gskew"
    }

    fn size_bytes(&self) -> usize {
        self.bim.size_bytes() + self.g0.size_bytes() + self.g1.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let (bim_index, g0_index, g1_index) = self.indices(pc);
        let (v0, c0) = self.bim.lookup(bim_index, pc);
        let (v1, c1) = self.g0.lookup(g0_index, pc);
        let (v2, c2) = self.g1.lookup(g1_index, pc);
        let votes = [v0, v1, v2];
        let taken = (u8::from(v0) + u8::from(v1) + u8::from(v2)) >= 2;
        self.latched = Some(Latched {
            pc,
            ctx: Ctx {
                bim_index,
                g0_index,
                g1_index,
                votes,
                taken,
            },
        });
        Prediction {
            taken,
            collision: c0 || c1 || c2,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "e-gskew");
        let mispredicted = ctx.taken != taken;
        let banks: [(&mut PredictionTable, u64, bool); 3] = [
            (&mut self.bim, ctx.bim_index, ctx.votes[0]),
            (&mut self.g0, ctx.g0_index, ctx.votes[1]),
            (&mut self.g1, ctx.g1_index, ctx.votes[2]),
        ];
        for (table, index, vote) in banks {
            if mispredicted || vote == taken {
                table.train(index, taken);
            }
        }
        self.history.push(taken);
    }

    /// The batched hot path: the three bank bytes are gathered into SWAR
    /// lanes, voted and saturated in one lane-parallel pass per event, and
    /// scattered back. Index formation factors through the packed GF(2)
    /// byte tables built in [`EGskew::new`] from `indices_for` (which stays
    /// the single source of truth for `probe_indices`/`index_spec`), so the
    /// per-event folds and skew hashes become a few L1 loads. Pinned by
    /// `batch_matches_scalar_protocol` below and the crate's
    /// batch-equivalence property tests.
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        let n = self.g0.index_bits();
        let bim_mask = self.bim.index_mask();
        let g_mask = self.g0.index_mask();
        let (h0_len, h1_len) = (self.h0_len, self.h1_len);
        let hist_len = self.history.len();
        let hist_mask = if hist_len >= 64 {
            u64::MAX
        } else {
            (1u64 << hist_len) - 1
        };
        let mut history = self.history.value();
        let mut collisions = [0u64; 3];
        {
            let lut = &self.lut;
            let (bim_s, max) = self.bim.batch_parts();
            let (g0_s, _) = self.g0.batch_parts();
            let (g1_s, _) = self.g1.batch_parts();
            // Masks derived from the slice lengths (powers of two), so the
            // compiler can prove every access in-bounds and skip the checks.
            let bm = bim_s.len() - 1;
            let gm = g0_s.len() - 1;
            let half = max / 2;
            let max_splat = swar::splat(max);
            let gt_bias = swar::splat(0x7f - half);
            out.extend(events.iter().map(|e| {
                let w = e.pc.word_index();
                let (ib, i0, i1) = match lut {
                    Some(lut) => {
                        let packed = lut.packed(w, history);
                        (
                            (packed & 0xffff) as usize & bm,
                            ((packed >> 16) & 0xffff) as usize & gm,
                            ((packed >> 32) & 0xffff) as usize & gm,
                        )
                    }
                    None => {
                        let lo = w & g_mask;
                        let hi = (w >> n) & g_mask;
                        let f0 = fold_bits(history, h0_len, n);
                        let f1 = fold_bits(history, h1_len, n);
                        (
                            (w & bim_mask) as usize & bm,
                            skew(1, lo ^ f0, hi, f0, n) as usize & gm,
                            skew(2, lo ^ f1, hi, f1, n) as usize & gm,
                        )
                    }
                };
                let tag = fold_tag(e.pc);
                let (eb, e0, e1) = (bim_s[ib], g0_s[i0], g1_s[i1]);
                let (cb, c0, c1) = (eb as u8, e0 as u8, e1 as u8);
                let collided = [
                    (cb & VALID != 0) & ((eb >> TAG_SHIFT) as u32 != tag),
                    (c0 & VALID != 0) & ((e0 >> TAG_SHIFT) as u32 != tag),
                    (c1 & VALID != 0) & ((e1 >> TAG_SHIFT) as u32 != tag),
                ];
                collisions[0] += u64::from(collided[0]);
                collisions[1] += u64::from(collided[1]);
                collisions[2] += u64::from(collided[2]);
                // SWAR lanes: [0] = BIM, [1] = G0, [2] = G1.
                let v = u64::from(cb & COUNTER_MASK)
                    | u64::from(c0 & COUNTER_MASK) << 8
                    | u64::from(c1 & COUNTER_MASK) << 16;
                let votes = swar::lanes_gt(v, gt_bias);
                let taken_pred = (votes & 0x01_0101).count_ones() >= 2;
                let taken = e.taken;
                let mispredicted = taken_pred != taken;
                let taken_lanes = u64::from(taken) * 0x01_0101;
                // Partial update: every bank on a misprediction, otherwise
                // only the banks whose vote matched the outcome.
                let agreeing = (votes ^ taken_lanes) ^ 0x01_0101;
                let enable = if mispredicted { 0x01_0101 } else { agreeing };
                let stepped = swar::step(v, taken_lanes, enable, max_splat);
                bim_s[ib] = pack_entry(VALID | (stepped as u8), tag);
                g0_s[i0] = pack_entry(VALID | ((stepped >> 8) as u8), tag);
                g1_s[i1] = pack_entry(VALID | ((stepped >> 16) as u8), tag);
                history = ((history << 1) | u64::from(taken)) & hist_mask;
                Prediction {
                    taken: taken_pred,
                    collision: collided[0] | collided[1] | collided[2],
                }
            }));
        }
        self.bim.add_batch_stats(events.len() as u64, collisions[0]);
        self.g0.add_batch_stats(events.len() as u64, collisions[1]);
        self.g1.add_batch_stats(events.len() as u64, collisions[2]);
        self.history.set_bits(history);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.bim.collisions() + self.g0.collisions() + self.g1.collisions()
    }

    fn history_bits(&self) -> u32 {
        self.h1_len
    }

    fn probe_indices(&self, pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        let (bim_index, g0_index, g1_index) = self.indices_for(pc, history);
        out.push((0, bim_index));
        out.push((1, g0_index));
        out.push((2, g1_index));
        true
    }

    fn index_spec(&self) -> Option<IndexSpec> {
        Some(IndexSpec::from_linear_probe(
            self,
            &[
                self.bim.index_bits(),
                self.g0.index_bits(),
                self.g1.index_bits(),
            ],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_share_budget_equally() {
        let p = EGskew::new(3 * 1024);
        assert_eq!(p.bim.size_bytes(), 1024);
        assert_eq!(p.g0.size_bytes(), 1024);
        assert_eq!(p.g1.size_bytes(), 1024);
    }

    #[test]
    fn learns_biased_and_pattern_branches() {
        let mut p = EGskew::new(3 * 256);
        let pc = BranchAddr(0x40);
        for _ in 0..30 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);

        let pattern = [true, false];
        let mut correct = 0;
        for i in 0..2000 {
            let outcome = pattern[i % 2];
            let pred = p.predict(pc);
            if i >= 1500 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(correct > 480, "pattern accuracy {correct}/500");
    }

    /// Drives all three banks at the branch's current indices to a known
    /// strong state: `dirs[k]` per bank.
    fn force_votes(p: &mut EGskew, pc: BranchAddr, dirs: [bool; 3]) {
        let (bi, g0i, g1i) = p.indices(pc);
        for _ in 0..4 {
            p.bim.train(bi, dirs[0]);
            p.g0.train(g0i, dirs[1]);
            p.g1.train(g1i, dirs[2]);
        }
    }

    #[test]
    fn majority_vote_masks_single_bank_corruption() {
        // With two banks strongly taken and one corrupted to not-taken, the
        // vote must still be taken.
        let mut p = EGskew::new(3 * 64);
        let victim = BranchAddr(0x100);
        force_votes(&mut p, victim, [true, false, true]);
        let pred = p.predict(victim);
        assert!(pred.taken, "two healthy banks outvote the corrupted one");
        p.update(victim, true);
    }

    #[test]
    fn partial_update_leaves_outvoted_banks_alone() {
        let mut p = EGskew::new(3 * 64);
        let pc = BranchAddr(0x200);
        force_votes(&mut p, pc, [true, false, true]);
        let (_, g0i, _) = p.indices(pc);
        let before = p.g0.counter(g0i).value();
        let pred = p.predict(pc);
        assert!(pred.taken);
        p.update(pc, true); // correct final prediction, g0 voted not-taken
        let after = p.g0.counter(g0i).value();
        assert_eq!(
            after, before,
            "outvoted bank must not train on a correct prediction"
        );
    }

    #[test]
    fn misprediction_retrains_all_banks() {
        let mut p = EGskew::new(3 * 64);
        let pc = BranchAddr(0x200);
        force_votes(&mut p, pc, [false, false, false]);
        let (bi, g0i, g1i) = p.indices(pc);
        let pred = p.predict(pc);
        assert!(!pred.taken);
        p.update(pc, true); // mispredicted
        assert!(p.bim.counter(bi).value() > 0);
        assert!(p.g0.counter(g0i).value() > 0);
        assert!(p.g1.counter(g1i).value() > 0);
    }

    #[test]
    fn probe_indices_match_the_live_index_functions() {
        let mut p = EGskew::new(3 * 256);
        for bit in [true, true, false, true, false, false, true] {
            p.shift_history(bit);
        }
        let pc = BranchAddr(0x1f3c);
        let (bi, g0i, g1i) = p.indices(pc);
        let mut probes = Vec::new();
        assert!(p.probe_indices(pc, p.history.value(), &mut probes));
        assert_eq!(probes, vec![(0, bi), (1, g0i), (2, g1i)]);
        assert_eq!(DynamicPredictor::history_bits(&p), p.h1_len);
    }

    #[test]
    fn batch_matches_scalar_protocol() {
        let mut state = 0x0dd5_eed5_1234_5678u64;
        let events: Vec<BranchEvent> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                BranchEvent::new(
                    BranchAddr((state >> 17) % 701 * 4),
                    state & (1 << 40) != 0,
                    0,
                )
            })
            .collect();
        let mut batched = EGskew::new(3 * 128);
        let mut scalar = EGskew::new(3 * 128);
        let mut out = Vec::new();
        let mut start = 0;
        for (k, size) in [0usize, 1, 7, 256, 3000].iter().cycle().enumerate() {
            if start >= events.len() {
                break;
            }
            let chunk = &events[start..(start + size).min(events.len())];
            start += size;
            out.clear();
            batched.predict_update_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len(), "chunk {k}");
            for (e, got) in chunk.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                assert_eq!(*got, want);
            }
            assert_eq!(batched.total_collisions(), scalar.total_collisions());
            assert_eq!(batched.history.value(), scalar.history.value());
        }
        for (b, s) in [
            (&batched.bim, &scalar.bim),
            (&batched.g0, &scalar.g0),
            (&batched.g1, &scalar.g1),
        ] {
            assert_eq!(b.lookups(), s.lookups());
            assert_eq!(b.collisions(), s.collisions());
        }
    }

    #[test]
    fn collisions_counted_across_banks() {
        let mut p = EGskew::new(3 * 16);
        for i in 0..500u64 {
            let pc = BranchAddr(i * 4 % 0x4000);
            let _ = p.predict(pc);
            p.update(pc, i % 3 == 0);
        }
        assert!(p.total_collisions() > 0);
    }
}
