//! The e-gskew majority-vote predictor.

use crate::history::{fold_bits, HistoryRegister};
use crate::index_spec::IndexSpec;
use crate::skew::skew;
use crate::table::PredictionTable;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::BranchAddr;

/// The enhanced skewed predictor (Michaud, Seznec & Uhlig).
///
/// Three equally sized banks — a PC-indexed bimodal bank and two
/// history-indexed banks hashed with *different* skewing functions
/// ([`crate::skew`]) — vote on the prediction. Two branches colliding in one
/// bank almost never collide in the others, so the majority vote masks
/// single-bank destructive aliasing.
///
/// Update is the partial policy that the 2bcgskew paper calls "enhanced":
/// on a misprediction all three banks train; on a correct prediction only
/// the banks that voted with the outcome train (banks that were outvoted are
/// left alone — they may be serving another branch).
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, EGskew};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = EGskew::new(3 * 1024); // three 1 KB banks
/// let _ = p.predict(BranchAddr(0x20));
/// p.update(BranchAddr(0x20), true);
/// ```
#[derive(Debug, Clone)]
pub struct EGskew {
    bim: PredictionTable,
    g0: PredictionTable,
    g1: PredictionTable,
    history: HistoryRegister,
    h0_len: u32,
    h1_len: u32,
    latched: Option<Latched<Ctx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    bim_index: u64,
    g0_index: u64,
    g1_index: u64,
    votes: [bool; 3],
    taken: bool,
}

impl EGskew {
    /// Creates an e-gskew predictor; each of the three banks receives one
    /// third of the `size_bytes` counter budget.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes / 3` rounds to a non-power-of-two table (pass
    /// `3 * 2^k` bytes) or is zero.
    pub fn new(size_bytes: usize) -> Self {
        let per_bank = size_bytes / 3;
        assert!(per_bank > 0, "e-gskew needs at least 3 bytes");
        let bim = PredictionTable::two_bit(per_bank * 4);
        let g0 = PredictionTable::two_bit(per_bank * 4);
        let g1 = PredictionTable::two_bit(per_bank * 4);
        let n = g0.index_bits();
        // Shorter history on g0, full-width history on g1: diversity in both
        // hash function *and* history reach.
        let h0_len = (n / 2).max(1);
        let h1_len = n;
        Self {
            history: HistoryRegister::new(h1_len.max(1)),
            bim,
            g0,
            g1,
            h0_len,
            h1_len,
            latched: None,
        }
    }

    fn indices(&self, pc: BranchAddr) -> (u64, u64, u64) {
        self.indices_for(pc, self.history.value())
    }

    /// The three bank indices for `pc` under a raw history value — the pure
    /// form of the index functions, shared by the predict path and
    /// [`DynamicPredictor::probe_indices`]. Every ingredient (bit selects,
    /// XOR folds, the [`crate::skew`] hashes) is GF(2)-linear, so the whole
    /// triple is too.
    fn indices_for(&self, pc: BranchAddr, history: u64) -> (u64, u64, u64) {
        let n = self.g0.index_bits();
        let w = pc.word_index();
        let lo = w & self.g0.index_mask();
        let hi = (w >> n) & self.g0.index_mask();
        let f0 = fold_bits(history, self.h0_len, n);
        let f1 = fold_bits(history, self.h1_len, n);
        let bim_index = w & self.bim.index_mask();
        let g0_index = skew(1, lo ^ f0, hi, f0, n);
        let g1_index = skew(2, lo ^ f1, hi, f1, n);
        (bim_index, g0_index, g1_index)
    }
}

impl DynamicPredictor for EGskew {
    fn name(&self) -> &'static str {
        "e-gskew"
    }

    fn size_bytes(&self) -> usize {
        self.bim.size_bytes() + self.g0.size_bytes() + self.g1.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let (bim_index, g0_index, g1_index) = self.indices(pc);
        let (v0, c0) = self.bim.lookup(bim_index, pc);
        let (v1, c1) = self.g0.lookup(g0_index, pc);
        let (v2, c2) = self.g1.lookup(g1_index, pc);
        let votes = [v0, v1, v2];
        let taken = (u8::from(v0) + u8::from(v1) + u8::from(v2)) >= 2;
        self.latched = Some(Latched {
            pc,
            ctx: Ctx {
                bim_index,
                g0_index,
                g1_index,
                votes,
                taken,
            },
        });
        Prediction {
            taken,
            collision: c0 || c1 || c2,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "e-gskew");
        let mispredicted = ctx.taken != taken;
        let banks: [(&mut PredictionTable, u64, bool); 3] = [
            (&mut self.bim, ctx.bim_index, ctx.votes[0]),
            (&mut self.g0, ctx.g0_index, ctx.votes[1]),
            (&mut self.g1, ctx.g1_index, ctx.votes[2]),
        ];
        for (table, index, vote) in banks {
            if mispredicted || vote == taken {
                table.train(index, taken);
            }
        }
        self.history.push(taken);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.bim.collisions() + self.g0.collisions() + self.g1.collisions()
    }

    fn history_bits(&self) -> u32 {
        self.h1_len
    }

    fn probe_indices(&self, pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        let (bim_index, g0_index, g1_index) = self.indices_for(pc, history);
        out.push((0, bim_index));
        out.push((1, g0_index));
        out.push((2, g1_index));
        true
    }

    fn index_spec(&self) -> Option<IndexSpec> {
        Some(IndexSpec::from_linear_probe(
            self,
            &[
                self.bim.index_bits(),
                self.g0.index_bits(),
                self.g1.index_bits(),
            ],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_share_budget_equally() {
        let p = EGskew::new(3 * 1024);
        assert_eq!(p.bim.size_bytes(), 1024);
        assert_eq!(p.g0.size_bytes(), 1024);
        assert_eq!(p.g1.size_bytes(), 1024);
    }

    #[test]
    fn learns_biased_and_pattern_branches() {
        let mut p = EGskew::new(3 * 256);
        let pc = BranchAddr(0x40);
        for _ in 0..30 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);

        let pattern = [true, false];
        let mut correct = 0;
        for i in 0..2000 {
            let outcome = pattern[i % 2];
            let pred = p.predict(pc);
            if i >= 1500 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(correct > 480, "pattern accuracy {correct}/500");
    }

    /// Drives all three banks at the branch's current indices to a known
    /// strong state: `dirs[k]` per bank.
    fn force_votes(p: &mut EGskew, pc: BranchAddr, dirs: [bool; 3]) {
        let (bi, g0i, g1i) = p.indices(pc);
        for _ in 0..4 {
            p.bim.train(bi, dirs[0]);
            p.g0.train(g0i, dirs[1]);
            p.g1.train(g1i, dirs[2]);
        }
    }

    #[test]
    fn majority_vote_masks_single_bank_corruption() {
        // With two banks strongly taken and one corrupted to not-taken, the
        // vote must still be taken.
        let mut p = EGskew::new(3 * 64);
        let victim = BranchAddr(0x100);
        force_votes(&mut p, victim, [true, false, true]);
        let pred = p.predict(victim);
        assert!(pred.taken, "two healthy banks outvote the corrupted one");
        p.update(victim, true);
    }

    #[test]
    fn partial_update_leaves_outvoted_banks_alone() {
        let mut p = EGskew::new(3 * 64);
        let pc = BranchAddr(0x200);
        force_votes(&mut p, pc, [true, false, true]);
        let (_, g0i, _) = p.indices(pc);
        let before = p.g0.counter(g0i).value();
        let pred = p.predict(pc);
        assert!(pred.taken);
        p.update(pc, true); // correct final prediction, g0 voted not-taken
        let after = p.g0.counter(g0i).value();
        assert_eq!(
            after, before,
            "outvoted bank must not train on a correct prediction"
        );
    }

    #[test]
    fn misprediction_retrains_all_banks() {
        let mut p = EGskew::new(3 * 64);
        let pc = BranchAddr(0x200);
        force_votes(&mut p, pc, [false, false, false]);
        let (bi, g0i, g1i) = p.indices(pc);
        let pred = p.predict(pc);
        assert!(!pred.taken);
        p.update(pc, true); // mispredicted
        assert!(p.bim.counter(bi).value() > 0);
        assert!(p.g0.counter(g0i).value() > 0);
        assert!(p.g1.counter(g1i).value() > 0);
    }

    #[test]
    fn probe_indices_match_the_live_index_functions() {
        let mut p = EGskew::new(3 * 256);
        for bit in [true, true, false, true, false, false, true] {
            p.shift_history(bit);
        }
        let pc = BranchAddr(0x1f3c);
        let (bi, g0i, g1i) = p.indices(pc);
        let mut probes = Vec::new();
        assert!(p.probe_indices(pc, p.history.value(), &mut probes));
        assert_eq!(probes, vec![(0, bi), (1, g0i), (2, g1i)]);
        assert_eq!(DynamicPredictor::history_bits(&p), p.h1_len);
    }

    #[test]
    fn collisions_counted_across_banks() {
        let mut p = EGskew::new(3 * 16);
        for i in 0..500u64 {
            let pc = BranchAddr(i * 4 % 0x4000);
            let _ = p.predict(pc);
            p.update(pc, i % 3 == 0);
        }
        assert!(p.total_collisions() > 0);
    }
}
