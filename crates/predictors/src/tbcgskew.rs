//! The 2bcgskew hybrid predictor.

use crate::history::{fold_bits, HistoryRegister};
use crate::index_lut::PackedIndexLut;
use crate::skew::skew;
use crate::table::{fold_tag, pack_entry, swar, PredictionTable, COUNTER_MASK, TAG_SHIFT, VALID};
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent};

/// Seznec & Michaud's 2bcgskew — the strongest dynamic predictor in the
/// paper's evaluation.
///
/// Four equally sized banks:
///
/// * **BIM** — a PC-indexed bimodal bank, used both as a standalone
///   component and as one voter of the skewed component,
/// * **G0, G1** — history-indexed banks hashed with distinct skewing
///   functions and different history lengths,
/// * **META** — a gshare-indexed chooser between BIM and the
///   majority-of-three (BIM, G0, G1) "c-gskew" vote.
///
/// Partial update exactly as the paper describes:
///
/// * on a **bad** overall prediction all three c-gskew banks train;
/// * on a **correct** overall prediction only the banks participating in the
///   correct prediction train (BIM when the meta chose BIM; the agreeing
///   voters when it chose the vote);
/// * META trains only when BIM and the vote disagree — reinforced on a good
///   prediction, pushed toward the other component on a bad one.
///
/// The per-bank history lengths are configurable
/// ([`TwoBcGskew::with_history_lens`]); the default sets G0 to half the
/// index width and G1/META to ~1.5× the index width (folded), which a sweep
/// over our workloads found competitive — the paper likewise selected the
/// best lengths per configuration.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, TwoBcGskew};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = TwoBcGskew::new(8 * 1024);
/// assert_eq!(p.size_bytes(), 8 * 1024);
/// let _ = p.predict(BranchAddr(0x77c));
/// p.update(BranchAddr(0x77c), false);
/// ```
#[derive(Debug, Clone)]
pub struct TwoBcGskew {
    bim: PredictionTable,
    g0: PredictionTable,
    g1: PredictionTable,
    meta: PredictionTable,
    history: HistoryRegister,
    h_g0: u32,
    h_g1: u32,
    h_meta: u32,
    /// Packed GF(2) byte tables collapsing all four bank indices into one
    /// lookup for the batch path; `None` when an index exceeds 16 bits.
    lut: Option<PackedIndexLut>,
    latched: Option<Latched<Ctx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    bim_index: u64,
    g0_index: u64,
    g1_index: u64,
    meta_index: u64,
    bim_pred: bool,
    g0_pred: bool,
    g1_pred: bool,
    vote_pred: bool,
    use_vote: bool,
    final_pred: bool,
}

impl TwoBcGskew {
    /// Creates a 2bcgskew with default per-bank history lengths.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes / 4` is not a positive power of two.
    pub fn new(size_bytes: usize) -> Self {
        let per_bank_bytes = size_bytes / 4;
        assert!(per_bank_bytes > 0, "2bcgskew needs at least 4 bytes");
        let n = PredictionTable::two_bit(per_bank_bytes * 4).index_bits();
        let h_g0 = (n / 2).max(1);
        let h_g1 = (n + n / 2).min(64);
        let h_meta = n.min(64);
        Self::with_history_lens(size_bytes, h_g0, h_g1, h_meta)
    }

    /// Creates a 2bcgskew with explicit per-bank history lengths
    /// (G0, G1, META). Lengths longer than the index width are XOR-folded.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes / 4` is not a positive power of two, or any
    /// length is zero or exceeds 64.
    pub fn with_history_lens(size_bytes: usize, h_g0: u32, h_g1: u32, h_meta: u32) -> Self {
        let per_bank_bytes = size_bytes / 4;
        assert!(per_bank_bytes > 0, "2bcgskew needs at least 4 bytes");
        let bim = PredictionTable::two_bit(per_bank_bytes * 4);
        let g0 = PredictionTable::two_bit(per_bank_bytes * 4);
        let g1 = PredictionTable::two_bit(per_bank_bytes * 4);
        let meta = PredictionTable::two_bit(per_bank_bytes * 4);
        let max_h = h_g0.max(h_g1).max(h_meta);
        assert!((1..=64).contains(&max_h), "history length out of range");
        let mut p = Self {
            history: HistoryRegister::new(max_h),
            bim,
            g0,
            g1,
            meta,
            h_g0,
            h_g1,
            h_meta,
            lut: None,
            latched: None,
        };
        let n = p.g0.index_bits();
        if n <= 16 && p.bim.index_bits() <= 16 {
            p.lut = Some(PackedIndexLut::build(2 * n, max_h, |w, h| {
                let (ib, i0, i1, im) = p.indices_raw(w, h);
                ib | i0 << 16 | i1 << 32 | im << 48
            }));
        }
        p
    }

    /// The (G0, G1, META) history lengths.
    pub fn history_lens(&self) -> (u32, u32, u32) {
        (self.h_g0, self.h_g1, self.h_meta)
    }

    fn indices(&self, pc: BranchAddr) -> (u64, u64, u64, u64) {
        self.indices_raw(pc.word_index(), self.history.value())
    }

    /// The four bank indices as a pure GF(2)-linear function of the PC word
    /// and a raw history value — the single source of truth that both the
    /// scalar path and the packed lookup tables are built from.
    fn indices_raw(&self, w: u64, history: u64) -> (u64, u64, u64, u64) {
        let n = self.g0.index_bits();
        let lo = w & self.g0.index_mask();
        let hi = (w >> n) & self.g0.index_mask();
        let f0 = fold_bits(history, self.h_g0, n);
        let f1 = fold_bits(history, self.h_g1, n);
        let fm = fold_bits(history, self.h_meta, n);
        let bim_index = w & self.bim.index_mask();
        let g0_index = skew(1, lo ^ f0, hi, f0, n);
        let g1_index = skew(2, lo ^ f1, hi, f1, n);
        let meta_index = (lo ^ fm) & self.meta.index_mask();
        (bim_index, g0_index, g1_index, meta_index)
    }
}

impl DynamicPredictor for TwoBcGskew {
    fn name(&self) -> &'static str {
        "2bcgskew"
    }

    fn size_bytes(&self) -> usize {
        self.bim.size_bytes() + self.g0.size_bytes() + self.g1.size_bytes() + self.meta.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let (bim_index, g0_index, g1_index, meta_index) = self.indices(pc);
        let (bim_pred, c_bim) = self.bim.lookup(bim_index, pc);
        let (g0_pred, c_g0) = self.g0.lookup(g0_index, pc);
        let (g1_pred, c_g1) = self.g1.lookup(g1_index, pc);
        let (use_vote, c_meta) = self.meta.lookup(meta_index, pc);
        let vote_pred = (u8::from(bim_pred) + u8::from(g0_pred) + u8::from(g1_pred)) >= 2;
        let final_pred = if use_vote { vote_pred } else { bim_pred };
        self.latched = Some(Latched {
            pc,
            ctx: Ctx {
                bim_index,
                g0_index,
                g1_index,
                meta_index,
                bim_pred,
                g0_pred,
                g1_pred,
                vote_pred,
                use_vote,
                final_pred,
            },
        });
        Prediction {
            taken: final_pred,
            collision: c_bim || c_g0 || c_g1 || c_meta,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "2bcgskew");
        let correct = ctx.final_pred == taken;
        if !correct {
            // Bad prediction: retrain all three c-gskew banks.
            self.bim.train(ctx.bim_index, taken);
            self.g0.train(ctx.g0_index, taken);
            self.g1.train(ctx.g1_index, taken);
        } else if ctx.use_vote {
            // Correct via the vote: train only the agreeing voters.
            if ctx.bim_pred == taken {
                self.bim.train(ctx.bim_index, taken);
            }
            if ctx.g0_pred == taken {
                self.g0.train(ctx.g0_index, taken);
            }
            if ctx.g1_pred == taken {
                self.g1.train(ctx.g1_index, taken);
            }
        } else {
            // Correct via BIM alone.
            self.bim.train(ctx.bim_index, taken);
        }
        // META trains only when the components disagree.
        if ctx.bim_pred != ctx.vote_pred {
            self.meta.train(ctx.meta_index, ctx.vote_pred == taken);
        }
        self.history.push(taken);
    }

    /// The batched hot path: all four bank bytes (BIM, G0, G1, META) are
    /// gathered into SWAR lanes and saturated in one lane-parallel pass per
    /// event. Index formation factors through the packed GF(2) byte tables
    /// built in [`TwoBcGskew::with_history_lens`] from `indices_raw`, so the
    /// three history folds and two skew hashes per event become a few L1
    /// loads. The paper's partial-update policy becomes a per-lane enable
    /// mask, and the META lane trains toward its own direction (`vote ==
    /// outcome`) rather than the branch outcome — which is why the step
    /// helper takes per-lane rather than broadcast outcomes. Pinned by
    /// `batch_matches_scalar_protocol` below and the crate's
    /// batch-equivalence property tests.
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        let n = self.g0.index_bits();
        let bim_mask = self.bim.index_mask();
        let g_mask = self.g0.index_mask();
        let meta_mask = self.meta.index_mask();
        let (h_g0, h_g1, h_meta) = (self.h_g0, self.h_g1, self.h_meta);
        let hist_len = self.history.len();
        let hist_mask = if hist_len >= 64 {
            u64::MAX
        } else {
            (1u64 << hist_len) - 1
        };
        let mut history = self.history.value();
        let mut collisions = [0u64; 4];
        {
            let lut = &self.lut;
            let (bim_s, max) = self.bim.batch_parts();
            let (g0_s, _) = self.g0.batch_parts();
            let (g1_s, _) = self.g1.batch_parts();
            let (meta_s, _) = self.meta.batch_parts();
            // Masks derived from the slice lengths (powers of two), so the
            // compiler can prove every access in-bounds and skip the checks.
            let bm = bim_s.len() - 1;
            let gm = g0_s.len() - 1;
            let mm = meta_s.len() - 1;
            let half = max / 2;
            let max_splat = swar::splat(max);
            let gt_bias = swar::splat(0x7f - half);
            out.extend(events.iter().map(|e| {
                let w = e.pc.word_index();
                let (ib, i0, i1, im) = match lut {
                    Some(lut) => {
                        let packed = lut.packed(w, history);
                        (
                            (packed & 0xffff) as usize & bm,
                            ((packed >> 16) & 0xffff) as usize & gm,
                            ((packed >> 32) & 0xffff) as usize & gm,
                            ((packed >> 48) & 0xffff) as usize & mm,
                        )
                    }
                    None => {
                        let lo = w & g_mask;
                        let hi = (w >> n) & g_mask;
                        let f0 = fold_bits(history, h_g0, n);
                        let f1 = fold_bits(history, h_g1, n);
                        let fm = fold_bits(history, h_meta, n);
                        (
                            (w & bim_mask) as usize & bm,
                            skew(1, lo ^ f0, hi, f0, n) as usize & gm,
                            skew(2, lo ^ f1, hi, f1, n) as usize & gm,
                            ((lo ^ fm) & meta_mask) as usize & mm,
                        )
                    }
                };
                let tag = fold_tag(e.pc);
                let (eb, e0, e1, em) = (bim_s[ib], g0_s[i0], g1_s[i1], meta_s[im]);
                let (cb, c0, c1, cm) = (eb as u8, e0 as u8, e1 as u8, em as u8);
                let collided = [
                    (cb & VALID != 0) & ((eb >> TAG_SHIFT) as u32 != tag),
                    (c0 & VALID != 0) & ((e0 >> TAG_SHIFT) as u32 != tag),
                    (c1 & VALID != 0) & ((e1 >> TAG_SHIFT) as u32 != tag),
                    (cm & VALID != 0) & ((em >> TAG_SHIFT) as u32 != tag),
                ];
                collisions[0] += u64::from(collided[0]);
                collisions[1] += u64::from(collided[1]);
                collisions[2] += u64::from(collided[2]);
                collisions[3] += u64::from(collided[3]);
                // SWAR lanes: [0] = BIM, [1] = G0, [2] = G1, [3] = META.
                let v = u64::from(cb & COUNTER_MASK)
                    | u64::from(c0 & COUNTER_MASK) << 8
                    | u64::from(c1 & COUNTER_MASK) << 16
                    | u64::from(cm & COUNTER_MASK) << 24;
                let preds = swar::lanes_gt(v, gt_bias);
                let bim_pred = preds & 0x01 != 0;
                let use_vote = preds & 0x0100_0000 != 0;
                let vote_pred = (preds & 0x01_0101).count_ones() >= 2;
                let final_pred = if use_vote { vote_pred } else { bim_pred };
                let taken = e.taken;
                let correct = final_pred == taken;
                let taken_lanes3 = u64::from(taken) * 0x01_0101;
                // The paper's partial update as a 3-lane enable mask: all
                // c-gskew banks on a misprediction; only the agreeing voters
                // on a correct vote-routed prediction; BIM alone otherwise.
                let agreeing = ((preds & 0x01_0101) ^ taken_lanes3) ^ 0x01_0101;
                let enable3 = if !correct {
                    0x01_0101
                } else if use_vote {
                    agreeing
                } else {
                    0x01
                };
                // META trains only when the components disagree, toward
                // "the vote was right".
                let meta_trains = bim_pred != vote_pred;
                let meta_dir = vote_pred == taken;
                let enable = enable3 | u64::from(meta_trains) << 24;
                let taken_lanes = taken_lanes3 | u64::from(meta_dir) << 24;
                let stepped = swar::step(v, taken_lanes, enable, max_splat);
                bim_s[ib] = pack_entry(VALID | (stepped as u8), tag);
                g0_s[i0] = pack_entry(VALID | ((stepped >> 8) as u8), tag);
                g1_s[i1] = pack_entry(VALID | ((stepped >> 16) as u8), tag);
                meta_s[im] = pack_entry(VALID | ((stepped >> 24) as u8), tag);
                history = ((history << 1) | u64::from(taken)) & hist_mask;
                Prediction {
                    taken: final_pred,
                    collision: collided[0] | collided[1] | collided[2] | collided[3],
                }
            }));
        }
        self.bim.add_batch_stats(events.len() as u64, collisions[0]);
        self.g0.add_batch_stats(events.len() as u64, collisions[1]);
        self.g1.add_batch_stats(events.len() as u64, collisions[2]);
        self.meta
            .add_batch_stats(events.len() as u64, collisions[3]);
        self.history.set_bits(history);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.bim.collisions() + self.g0.collisions() + self.g1.collisions() + self.meta.collisions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_equal_banks() {
        let p = TwoBcGskew::new(8192);
        assert_eq!(p.bim.size_bytes(), 2048);
        assert_eq!(p.meta.size_bytes(), 2048);
        assert_eq!(p.size_bytes(), 8192);
    }

    #[test]
    fn default_history_lengths_are_graded() {
        let p = TwoBcGskew::new(8192);
        let (h0, h1, hm) = p.history_lens();
        assert!(h0 < h1, "G0 uses a shorter history than G1");
        assert!(hm >= 1);
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = TwoBcGskew::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..30 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn learns_alternation_via_history_banks() {
        let mut p = TwoBcGskew::new(1024);
        let pc = BranchAddr(0x40);
        let mut correct = 0;
        for i in 0..4000 {
            let outcome = i % 2 == 0;
            let pred = p.predict(pc);
            if i >= 3000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(correct > 980, "alternation accuracy {correct}/1000");
    }

    #[test]
    fn meta_learns_to_prefer_bimodal_for_noisy_biased_branches() {
        // A branch that is 85% taken with no pattern: BIM is the right
        // component. After training, the meta should mostly route to BIM
        // when the components disagree. We check overall accuracy ~ bias.
        let mut p = TwoBcGskew::new(2048);
        let pc = BranchAddr(0x80);
        let mut correct = 0;
        let mut measured = 0;
        let mut state = 0x12345678u64;
        for i in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let outcome = (state >> 33) % 100 < 85;
            let pred = p.predict(pc);
            if i >= 10_000 {
                measured += 1;
                if pred.taken == outcome {
                    correct += 1;
                }
            }
            p.update(pc, outcome);
        }
        let acc = correct as f64 / measured as f64;
        assert!(acc > 0.80, "noisy-bias accuracy {acc}");
    }

    #[test]
    fn update_sequencing_is_enforced() {
        let mut p = TwoBcGskew::new(256);
        let _ = p.predict(BranchAddr(0x4));
        p.update(BranchAddr(0x4), true);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.update(BranchAddr(0x4), true);
        }));
        assert!(result.is_err(), "double update must panic");
    }

    #[test]
    fn batch_matches_scalar_protocol() {
        let mut state = 0x2bc6_5e00_0ff0_beefu64;
        let events: Vec<BranchEvent> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                BranchEvent::new(
                    BranchAddr((state >> 17) % 701 * 4),
                    state & (1 << 40) != 0,
                    0,
                )
            })
            .collect();
        let mut batched = TwoBcGskew::new(512);
        let mut scalar = TwoBcGskew::new(512);
        let mut out = Vec::new();
        let mut start = 0;
        for (k, size) in [0usize, 1, 7, 256, 3000].iter().cycle().enumerate() {
            if start >= events.len() {
                break;
            }
            let chunk = &events[start..(start + size).min(events.len())];
            start += size;
            out.clear();
            batched.predict_update_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len(), "chunk {k}");
            for (e, got) in chunk.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                assert_eq!(*got, want);
            }
            assert_eq!(batched.total_collisions(), scalar.total_collisions());
            assert_eq!(batched.history.value(), scalar.history.value());
        }
        for (b, s) in [
            (&batched.bim, &scalar.bim),
            (&batched.g0, &scalar.g0),
            (&batched.g1, &scalar.g1),
            (&batched.meta, &scalar.meta),
        ] {
            assert_eq!(b.lookups(), s.lookups());
            assert_eq!(b.collisions(), s.collisions());
        }
    }

    #[test]
    fn collisions_and_history_shift() {
        let mut p = TwoBcGskew::new(64);
        for i in 0..500u64 {
            let pc = BranchAddr((i * 4) % 0x1000);
            let _ = p.predict(pc);
            p.update(pc, i % 2 == 0);
        }
        assert!(p.total_collisions() > 0);
        let before = p.history.value();
        p.shift_history(true);
        assert_ne!(p.history.value(), before);
    }
}
