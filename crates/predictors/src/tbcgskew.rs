//! The 2bcgskew hybrid predictor.

use crate::history::HistoryRegister;
use crate::skew::skew;
use crate::table::PredictionTable;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::BranchAddr;

/// Seznec & Michaud's 2bcgskew — the strongest dynamic predictor in the
/// paper's evaluation.
///
/// Four equally sized banks:
///
/// * **BIM** — a PC-indexed bimodal bank, used both as a standalone
///   component and as one voter of the skewed component,
/// * **G0, G1** — history-indexed banks hashed with distinct skewing
///   functions and different history lengths,
/// * **META** — a gshare-indexed chooser between BIM and the
///   majority-of-three (BIM, G0, G1) "c-gskew" vote.
///
/// Partial update exactly as the paper describes:
///
/// * on a **bad** overall prediction all three c-gskew banks train;
/// * on a **correct** overall prediction only the banks participating in the
///   correct prediction train (BIM when the meta chose BIM; the agreeing
///   voters when it chose the vote);
/// * META trains only when BIM and the vote disagree — reinforced on a good
///   prediction, pushed toward the other component on a bad one.
///
/// The per-bank history lengths are configurable
/// ([`TwoBcGskew::with_history_lens`]); the default sets G0 to half the
/// index width and G1/META to ~1.5× the index width (folded), which a sweep
/// over our workloads found competitive — the paper likewise selected the
/// best lengths per configuration.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, TwoBcGskew};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = TwoBcGskew::new(8 * 1024);
/// assert_eq!(p.size_bytes(), 8 * 1024);
/// let _ = p.predict(BranchAddr(0x77c));
/// p.update(BranchAddr(0x77c), false);
/// ```
#[derive(Debug, Clone)]
pub struct TwoBcGskew {
    bim: PredictionTable,
    g0: PredictionTable,
    g1: PredictionTable,
    meta: PredictionTable,
    history: HistoryRegister,
    h_g0: u32,
    h_g1: u32,
    h_meta: u32,
    latched: Option<Latched<Ctx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    bim_index: u64,
    g0_index: u64,
    g1_index: u64,
    meta_index: u64,
    bim_pred: bool,
    g0_pred: bool,
    g1_pred: bool,
    vote_pred: bool,
    use_vote: bool,
    final_pred: bool,
}

impl TwoBcGskew {
    /// Creates a 2bcgskew with default per-bank history lengths.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes / 4` is not a positive power of two.
    pub fn new(size_bytes: usize) -> Self {
        let per_bank_bytes = size_bytes / 4;
        assert!(per_bank_bytes > 0, "2bcgskew needs at least 4 bytes");
        let n = PredictionTable::two_bit(per_bank_bytes * 4).index_bits();
        let h_g0 = (n / 2).max(1);
        let h_g1 = (n + n / 2).min(64);
        let h_meta = n.min(64);
        Self::with_history_lens(size_bytes, h_g0, h_g1, h_meta)
    }

    /// Creates a 2bcgskew with explicit per-bank history lengths
    /// (G0, G1, META). Lengths longer than the index width are XOR-folded.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes / 4` is not a positive power of two, or any
    /// length is zero or exceeds 64.
    pub fn with_history_lens(size_bytes: usize, h_g0: u32, h_g1: u32, h_meta: u32) -> Self {
        let per_bank_bytes = size_bytes / 4;
        assert!(per_bank_bytes > 0, "2bcgskew needs at least 4 bytes");
        let bim = PredictionTable::two_bit(per_bank_bytes * 4);
        let g0 = PredictionTable::two_bit(per_bank_bytes * 4);
        let g1 = PredictionTable::two_bit(per_bank_bytes * 4);
        let meta = PredictionTable::two_bit(per_bank_bytes * 4);
        let max_h = h_g0.max(h_g1).max(h_meta);
        assert!((1..=64).contains(&max_h), "history length out of range");
        Self {
            history: HistoryRegister::new(max_h),
            bim,
            g0,
            g1,
            meta,
            h_g0,
            h_g1,
            h_meta,
            latched: None,
        }
    }

    /// The (G0, G1, META) history lengths.
    pub fn history_lens(&self) -> (u32, u32, u32) {
        (self.h_g0, self.h_g1, self.h_meta)
    }

    fn indices(&self, pc: BranchAddr) -> (u64, u64, u64, u64) {
        let n = self.g0.index_bits();
        let w = pc.word_index();
        let lo = w & self.g0.index_mask();
        let hi = (w >> n) & self.g0.index_mask();
        let f0 = self.history.folded(self.h_g0, n);
        let f1 = self.history.folded(self.h_g1, n);
        let fm = self.history.folded(self.h_meta, n);
        let bim_index = w & self.bim.index_mask();
        let g0_index = skew(1, lo ^ f0, hi, f0, n);
        let g1_index = skew(2, lo ^ f1, hi, f1, n);
        let meta_index = (lo ^ fm) & self.meta.index_mask();
        (bim_index, g0_index, g1_index, meta_index)
    }
}

impl DynamicPredictor for TwoBcGskew {
    fn name(&self) -> &'static str {
        "2bcgskew"
    }

    fn size_bytes(&self) -> usize {
        self.bim.size_bytes() + self.g0.size_bytes() + self.g1.size_bytes() + self.meta.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let (bim_index, g0_index, g1_index, meta_index) = self.indices(pc);
        let (bim_pred, c_bim) = self.bim.lookup(bim_index, pc);
        let (g0_pred, c_g0) = self.g0.lookup(g0_index, pc);
        let (g1_pred, c_g1) = self.g1.lookup(g1_index, pc);
        let (use_vote, c_meta) = self.meta.lookup(meta_index, pc);
        let vote_pred = (u8::from(bim_pred) + u8::from(g0_pred) + u8::from(g1_pred)) >= 2;
        let final_pred = if use_vote { vote_pred } else { bim_pred };
        self.latched = Some(Latched {
            pc,
            ctx: Ctx {
                bim_index,
                g0_index,
                g1_index,
                meta_index,
                bim_pred,
                g0_pred,
                g1_pred,
                vote_pred,
                use_vote,
                final_pred,
            },
        });
        Prediction {
            taken: final_pred,
            collision: c_bim || c_g0 || c_g1 || c_meta,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "2bcgskew");
        let correct = ctx.final_pred == taken;
        if !correct {
            // Bad prediction: retrain all three c-gskew banks.
            self.bim.train(ctx.bim_index, taken);
            self.g0.train(ctx.g0_index, taken);
            self.g1.train(ctx.g1_index, taken);
        } else if ctx.use_vote {
            // Correct via the vote: train only the agreeing voters.
            if ctx.bim_pred == taken {
                self.bim.train(ctx.bim_index, taken);
            }
            if ctx.g0_pred == taken {
                self.g0.train(ctx.g0_index, taken);
            }
            if ctx.g1_pred == taken {
                self.g1.train(ctx.g1_index, taken);
            }
        } else {
            // Correct via BIM alone.
            self.bim.train(ctx.bim_index, taken);
        }
        // META trains only when the components disagree.
        if ctx.bim_pred != ctx.vote_pred {
            self.meta.train(ctx.meta_index, ctx.vote_pred == taken);
        }
        self.history.push(taken);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.bim.collisions() + self.g0.collisions() + self.g1.collisions() + self.meta.collisions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_equal_banks() {
        let p = TwoBcGskew::new(8192);
        assert_eq!(p.bim.size_bytes(), 2048);
        assert_eq!(p.meta.size_bytes(), 2048);
        assert_eq!(p.size_bytes(), 8192);
    }

    #[test]
    fn default_history_lengths_are_graded() {
        let p = TwoBcGskew::new(8192);
        let (h0, h1, hm) = p.history_lens();
        assert!(h0 < h1, "G0 uses a shorter history than G1");
        assert!(hm >= 1);
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = TwoBcGskew::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..30 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn learns_alternation_via_history_banks() {
        let mut p = TwoBcGskew::new(1024);
        let pc = BranchAddr(0x40);
        let mut correct = 0;
        for i in 0..4000 {
            let outcome = i % 2 == 0;
            let pred = p.predict(pc);
            if i >= 3000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(correct > 980, "alternation accuracy {correct}/1000");
    }

    #[test]
    fn meta_learns_to_prefer_bimodal_for_noisy_biased_branches() {
        // A branch that is 85% taken with no pattern: BIM is the right
        // component. After training, the meta should mostly route to BIM
        // when the components disagree. We check overall accuracy ~ bias.
        let mut p = TwoBcGskew::new(2048);
        let pc = BranchAddr(0x80);
        let mut correct = 0;
        let mut measured = 0;
        let mut state = 0x12345678u64;
        for i in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let outcome = (state >> 33) % 100 < 85;
            let pred = p.predict(pc);
            if i >= 10_000 {
                measured += 1;
                if pred.taken == outcome {
                    correct += 1;
                }
            }
            p.update(pc, outcome);
        }
        let acc = correct as f64 / measured as f64;
        assert!(acc > 0.80, "noisy-bias accuracy {acc}");
    }

    #[test]
    fn update_sequencing_is_enforced() {
        let mut p = TwoBcGskew::new(256);
        let _ = p.predict(BranchAddr(0x4));
        p.update(BranchAddr(0x4), true);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.update(BranchAddr(0x4), true);
        }));
        assert!(result.is_err(), "double update must panic");
    }

    #[test]
    fn collisions_and_history_shift() {
        let mut p = TwoBcGskew::new(64);
        for i in 0..500u64 {
            let pc = BranchAddr((i * 4) % 0x1000);
            let _ = p.predict(pc);
            p.update(pc, i % 2 == 0);
        }
        assert!(p.total_collisions() > 0);
        let before = p.history.value();
        p.shift_history(true);
        assert_ne!(p.history.value(), before);
    }
}
