//! The common interface of all dynamic predictor simulators.

use crate::index_spec::IndexSpec;
use sdbp_trace::{BranchAddr, BranchEvent};

/// The result of one predictor lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prediction {
    /// The predicted direction.
    pub taken: bool,
    /// Whether any table consulted for this prediction aliased — i.e. its
    /// last user was a different branch (the paper's collision event).
    pub collision: bool,
}

/// A dynamic branch predictor simulator.
///
/// # Protocol
///
/// For every dynamically predicted branch the simulator calls, in order:
///
/// 1. [`DynamicPredictor::predict`] with the branch address — the predictor
///    reads its tables and internally latches the lookup context (indices,
///    bank predictions),
/// 2. [`DynamicPredictor::update`] with the resolved outcome — the predictor
///    trains its tables *using the latched context* and shifts the outcome
///    into its global history, if it keeps one.
///
/// For a **statically predicted** branch the dynamic tables must stay
/// untouched (that is the aliasing-relief mechanism of the paper); the
/// simulator instead optionally calls [`DynamicPredictor::shift_history`] so
/// the outcome still enters the global history register — §4/Table 4 of the
/// paper study exactly this choice.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{Bimodal, DynamicPredictor};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Bimodal::new(1024);
/// let pc = BranchAddr(0x400);
/// for _ in 0..3 {
///     let _ = p.predict(pc);
///     p.update(pc, true);
/// }
/// assert!(p.predict(pc).taken, "a mostly-taken branch trains the counter up");
/// ```
pub trait DynamicPredictor {
    /// A short scheme name (`"gshare"`, `"2bcgskew"`, …) used in reports.
    fn name(&self) -> &'static str;

    /// The architectural storage budget in bytes (counters only).
    fn size_bytes(&self) -> usize;

    /// Looks up a prediction for the branch at `pc`, latching the lookup
    /// context for the subsequent [`DynamicPredictor::update`] call.
    fn predict(&mut self, pc: BranchAddr) -> Prediction;

    /// Trains the predictor with the resolved outcome of the branch last
    /// passed to [`DynamicPredictor::predict`], then shifts the outcome into
    /// the global history (when the scheme keeps one).
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding `predict` for the
    /// same branch — that is a simulator sequencing bug.
    fn update(&mut self, pc: BranchAddr, taken: bool);

    /// Fused [`predict`](DynamicPredictor::predict) +
    /// [`update`](DynamicPredictor::update) for one resolved branch — the
    /// simulator's per-event hot path.
    ///
    /// Must be observably equivalent to calling `predict(pc)` then
    /// `update(pc, taken)`. The default does exactly that; single-table
    /// schemes override it to collapse the lookup/train pair into one
    /// read-modify-write of the table entry.
    #[inline]
    fn predict_update(&mut self, pc: BranchAddr, taken: bool) -> Prediction {
        let prediction = self.predict(pc);
        self.update(pc, taken);
        prediction
    }

    /// Runs a batch of resolved branches through the fused
    /// [`predict_update`](DynamicPredictor::predict_update) path, appending
    /// one [`Prediction`] per event to `out` in order.
    ///
    /// Must be observably equivalent to calling `predict_update` once per
    /// event — the default does exactly that. Hot schemes override it to
    /// hoist loop-carried state (the history register, statistics counters,
    /// table array pointers) into locals for the whole batch: in the
    /// per-event protocol every table store can alias the predictor's own
    /// scalar fields, forcing the compiler to reload them each iteration,
    /// and that reload chain — not the table accesses — dominates the
    /// simulation inner loop.
    #[inline]
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        out.extend(events.iter().map(|e| self.predict_update(e.pc, e.taken)));
    }

    /// Shifts `taken` into the global history register **without** touching
    /// any table. A no-op for history-free schemes (e.g. bimodal).
    fn shift_history(&mut self, taken: bool);

    /// Total collisions observed across all tables since construction.
    fn total_collisions(&self) -> u64;

    /// The number of global-history bits that participate in index
    /// formation (`0` for history-free schemes such as bimodal).
    ///
    /// Static analyzers use this to enumerate the history values worth
    /// probing through [`DynamicPredictor::probe_indices`].
    fn history_bits(&self) -> u32 {
        0
    }

    /// Appends the `(bank, index)` table probes this predictor would make
    /// for a branch at `pc` given the raw global-history value `history`
    /// (newest outcome in bit 0), **without touching any predictor state**.
    ///
    /// Returns `true` when the scheme exposes its index function this way;
    /// the default returns `false`, marking the scheme opaque to static
    /// aliasing analysis (e.g. schemes whose index depends on mutable
    /// per-branch state rather than `(pc, history)` alone).
    ///
    /// # Out-vector contract
    ///
    /// Implementations **append** and must never clear, truncate or
    /// otherwise disturb what `out` already holds — the buffer belongs to
    /// the caller, who reuses one scratch vector across many probes and
    /// clears it between them. Bank ids must be numbered contiguously from
    /// 0 in a fixed per-scheme order. A dispatch-level test pins this
    /// contract for every predictor in the crate.
    fn probe_indices(&self, pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        let _ = (pc, history, out);
        false
    }

    /// The symbolic GF(2) description of this predictor's index functions,
    /// when every probed index bit is an XOR of fixed PC bits, fixed
    /// history bits and a constant (see [`IndexSpec`]).
    ///
    /// The default returns `None`, which keeps the sampling path: schemes
    /// that hash non-linearly (the perceptron's segmented hash, TAGE's
    /// tag/useful logic) or expose no index function at all stay analyzable
    /// only through [`DynamicPredictor::probe_indices`] — or not at all.
    ///
    /// When `Some`, the spec's [`IndexSpec::evaluate`] must agree with
    /// `probe_indices` on every `(pc, history)` pair; the crate's property
    /// tests enforce that equivalence for all linear schemes.
    fn index_spec(&self) -> Option<IndexSpec> {
        None
    }
}

/// Latched per-branch lookup context shared by the predictor
/// implementations in this crate.
///
/// Stored by `predict`, consumed by `update`. Public only for reuse across
/// the sibling modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Latched<T> {
    pub pc: BranchAddr,
    pub ctx: T,
}

impl<T> Latched<T> {
    pub(crate) fn take_for(slot: &mut Option<Self>, pc: BranchAddr, scheme: &str) -> T {
        match slot.take() {
            Some(l) if l.pc == pc => l.ctx,
            Some(l) => panic!(
                "{scheme}: update({pc}) does not match latched predict({})",
                l.pc
            ),
            None => panic!("{scheme}: update({pc}) without a preceding predict"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latched_roundtrip() {
        let mut slot = Some(Latched {
            pc: BranchAddr(8),
            ctx: 42u32,
        });
        let ctx = Latched::take_for(&mut slot, BranchAddr(8), "test");
        assert_eq!(ctx, 42);
        assert!(slot.is_none());
    }

    #[test]
    #[should_panic(expected = "without a preceding predict")]
    fn update_without_predict_panics() {
        let mut slot: Option<Latched<()>> = None;
        Latched::take_for(&mut slot, BranchAddr(8), "test");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_pc_panics() {
        let mut slot = Some(Latched {
            pc: BranchAddr(8),
            ctx: (),
        });
        Latched::take_for(&mut slot, BranchAddr(12), "test");
    }
}
