//! The agree predictor (related-work ablation).

use crate::history::HistoryRegister;
use crate::table::{fold_tag, pack_entry, PredictionTable, COUNTER_MASK, TAG_SHIFT, VALID};
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent};

/// Sprangle et al.'s *agree mechanism*, cited by the paper as an alternative
/// alias-reduction technique.
///
/// A PC-indexed **bias table** stores each branch's likely direction (set to
/// the branch's first observed outcome, the hardware-only variant). The
/// gshare-indexed counter table then predicts whether the branch will
/// **agree** with its bias bit instead of predicting taken/not-taken
/// directly. Two mostly-biased branches sharing a counter now push it the
/// same way ("agree"), converting destructive aliasing into constructive
/// aliasing — the dynamic analogue of what the paper does with static hints.
///
/// Storage split: the counter table gets the full byte budget; the bias table
/// (1 bit per entry, same entry count as the counter table) is counted into
/// [`DynamicPredictor::size_bytes`] as well.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{Agree, DynamicPredictor};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Agree::new(1024);
/// let _ = p.predict(BranchAddr(0x10));
/// p.update(BranchAddr(0x10), true);
/// ```
#[derive(Debug, Clone)]
pub struct Agree {
    counters: PredictionTable,
    bias: Vec<Option<bool>>,
    history: HistoryRegister,
    latched: Option<Latched<Ctx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    counter_index: u64,
    bias_index: usize,
    bias_bit: bool,
    agree_pred: bool,
}

impl Agree {
    /// Creates an agree predictor with a `size_bytes` budget: 8/9 of the bit
    /// budget in 2-bit agreement counters, 1/9 in bias bits (bias entries =
    /// half the counter entries, rounded to powers of two).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two.
    pub fn new(size_bytes: usize) -> Self {
        // Keep the paper-style convention simple: counters use the full byte
        // budget, the 1-bit bias table piggybacks with entries equal to the
        // counter count (documented storage overhead of 1/16 of the budget
        // in bytes is ignored in size accounting comparisons elsewhere, but
        // reported by size_bytes()).
        let counters = PredictionTable::two_bit(size_bytes * 4);
        let entries = counters.entries();
        let history = HistoryRegister::new(counters.index_bits());
        Self {
            counters,
            bias: vec![None; entries],
            history,
            latched: None,
        }
    }

    fn counter_index(&self, pc: BranchAddr) -> u64 {
        (pc.word_index() ^ self.history.bits(self.counters.index_bits()))
            & self.counters.index_mask()
    }

    fn bias_index(&self, pc: BranchAddr) -> usize {
        (pc.word_index() & (self.bias.len() as u64 - 1)) as usize
    }
}

impl DynamicPredictor for Agree {
    fn name(&self) -> &'static str {
        "agree"
    }

    fn size_bytes(&self) -> usize {
        self.counters.size_bytes() + self.bias.len() / 8
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let counter_index = self.counter_index(pc);
        let bias_index = self.bias_index(pc);
        let (agree_pred, collision) = self.counters.lookup(counter_index, pc);
        // An unset bias defaults to taken (backward-taken heuristics would
        // slot in here); it is fixed at the branch's first update.
        let bias_bit = self.bias[bias_index].unwrap_or(true);
        let taken = if agree_pred { bias_bit } else { !bias_bit };
        self.latched = Some(Latched {
            pc,
            ctx: Ctx {
                counter_index,
                bias_index,
                bias_bit,
                agree_pred,
            },
        });
        Prediction { taken, collision }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "agree");
        // First-execution bias capture.
        let bias_bit = match self.bias[ctx.bias_index] {
            Some(b) => b,
            None => {
                self.bias[ctx.bias_index] = Some(taken);
                taken
            }
        };
        // The counter learns agreement with the (possibly just-set) bias.
        self.counters.train(ctx.counter_index, taken == bias_bit);
        let _ = ctx.bias_bit;
        let _ = ctx.agree_pred;
        self.history.push(taken);
    }

    /// The batched hot path: one fused read-modify-write of the counter
    /// entry per event with the history register and statistics hoisted into
    /// locals, threading the bias table's first-outcome latching
    /// sequentially through the batch. Pinned by
    /// `batch_matches_scalar_protocol` below and the crate's
    /// batch-equivalence property tests.
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        let index_mask = self.counters.index_mask();
        let bias_mask = self.bias.len() as u64 - 1;
        // The register is sized to exactly the counter index width.
        let hist_len = self.history.len();
        let hist_mask = if hist_len >= 64 {
            u64::MAX
        } else {
            (1u64 << hist_len) - 1
        };
        let mut history = self.history.value();
        let mut collisions = 0u64;
        {
            let (slots, max) = self.counters.batch_parts();
            let bias = &mut self.bias;
            let half = max / 2;
            out.extend(events.iter().map(|e| {
                let w = e.pc.word_index();
                let i = ((w ^ history) & index_mask) as usize;
                let bi = (w & bias_mask) as usize;
                let tag = fold_tag(e.pc);
                let entry = slots[i];
                let c = entry as u8;
                let collided = (c & VALID != 0) & ((entry >> TAG_SHIFT) as u32 != tag);
                collisions += u64::from(collided);
                let v = c & COUNTER_MASK;
                let agree_pred = v > half;
                let predicted = if agree_pred {
                    bias[bi].unwrap_or(true)
                } else {
                    !bias[bi].unwrap_or(true)
                };
                let taken = e.taken;
                // First-execution bias capture, then train agreement.
                let bias_bit = match bias[bi] {
                    Some(b) => b,
                    None => {
                        bias[bi] = Some(taken);
                        taken
                    }
                };
                let agree = taken == bias_bit;
                let up = u8::from(agree) & u8::from(v < max);
                let down = u8::from(!agree) & u8::from(v > 0);
                slots[i] = pack_entry(VALID | (v + up - down), tag);
                history = ((history << 1) | u64::from(taken)) & hist_mask;
                Prediction {
                    taken: predicted,
                    collision: collided,
                }
            }));
        }
        self.counters
            .add_batch_stats(events.len() as u64, collisions);
        self.history.set_bits(history);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.counters.collisions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut p = Agree::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..20 {
            let _ = p.predict(pc);
            p.update(pc, false);
        }
        assert!(!p.predict(pc).taken);
        p.update(pc, false);
    }

    #[test]
    fn opposite_bias_branches_agree_in_shared_counters() {
        // The agree mechanism's claim: branches with opposite directions but
        // both strongly biased drive shared counters the SAME way. Simulate
        // a mostly-taken and a mostly-not-taken branch and require high
        // accuracy on both despite a tiny table.
        let mut p = Agree::new(16); // 64 counters: plenty of sharing
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x104);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..3000 {
            let pa = p.predict(a);
            if i >= 1000 {
                total += 1;
                if pa.taken {
                    correct += 1;
                }
            }
            p.update(a, true);
            let pb = p.predict(b);
            if i >= 1000 {
                total += 1;
                if !pb.taken {
                    correct += 1;
                }
            }
            p.update(b, false);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.97, "agree accuracy with heavy sharing: {acc}");
    }

    #[test]
    fn bias_is_fixed_at_first_outcome() {
        let mut p = Agree::new(64);
        let pc = BranchAddr(0x10);
        let _ = p.predict(pc);
        p.update(pc, false); // bias latches not-taken
        assert_eq!(p.bias[p.bias_index(pc)], Some(false));
        for _ in 0..10 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        // Bias bit itself never changes; the counters learned to DISagree.
        assert_eq!(p.bias[p.bias_index(pc)], Some(false));
        assert!(p.predict(pc).taken, "disagree-with-bias yields taken");
        p.update(pc, true);
    }

    #[test]
    fn batch_matches_scalar_protocol() {
        let mut state = 0xa62e_e0a6_2ee0_a62eu64;
        let events: Vec<BranchEvent> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                BranchEvent::new(
                    BranchAddr((state >> 17) % 701 * 4),
                    state & (1 << 40) != 0,
                    0,
                )
            })
            .collect();
        let mut batched = Agree::new(64);
        let mut scalar = Agree::new(64);
        let mut out = Vec::new();
        let mut start = 0;
        for (k, size) in [0usize, 1, 7, 256, 3000].iter().cycle().enumerate() {
            if start >= events.len() {
                break;
            }
            let chunk = &events[start..(start + size).min(events.len())];
            start += size;
            out.clear();
            batched.predict_update_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len(), "chunk {k}");
            for (e, got) in chunk.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                assert_eq!(*got, want);
            }
            assert_eq!(batched.total_collisions(), scalar.total_collisions());
            assert_eq!(batched.history.value(), scalar.history.value());
            assert_eq!(batched.bias, scalar.bias);
        }
        assert_eq!(batched.counters.lookups(), scalar.counters.lookups());
    }

    #[test]
    fn size_includes_bias_bits() {
        let p = Agree::new(1024);
        assert_eq!(p.size_bytes(), 1024 + 4096 / 8);
    }
}
