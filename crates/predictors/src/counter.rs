//! Saturating up/down counters — the storage cell of every table-based
//! predictor in this crate.

/// An `n`-bit saturating up/down counter (1 ≤ n ≤ 7).
///
/// The counter increments on taken outcomes and decrements on not-taken
/// outcomes, saturating at the ends of its range. The most significant bit
/// is the prediction: values in the upper half predict taken.
///
/// The canonical 2-bit flavor starts "weakly not-taken" (value 1) so a single
/// taken outcome flips the prediction — the same neutral initialization used
/// by the classic simulators.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::SaturatingCounter;
///
/// let mut c = SaturatingCounter::two_bit();
/// assert!(!c.predict_taken());
/// c.train(true);
/// assert!(c.predict_taken(), "weakly not-taken flips after one taken");
/// c.train(true);
/// c.train(true);
/// c.train(false);
/// assert!(c.predict_taken(), "saturated counters tolerate one anomaly");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an `n`-bit counter initialized to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if `value` does not fit
    /// in `bits`.
    pub fn new(bits: u8, value: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width {bits} out of range");
        let max = (1u8 << bits) - 1;
        assert!(value <= max, "initial value {value} exceeds {max}");
        Self { value, max }
    }

    /// The classic 2-bit counter initialized weakly not-taken.
    pub fn two_bit() -> Self {
        Self::new(2, 1)
    }

    /// A 2-bit counter biased toward the given initial direction (weak).
    pub fn two_bit_toward(taken: bool) -> Self {
        Self::new(2, if taken { 2 } else { 1 })
    }

    /// Current raw value.
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Largest representable value.
    pub fn max(&self) -> u8 {
        self.max
    }

    /// The predicted direction: the counter's most significant bit.
    pub fn predict_taken(&self) -> bool {
        self.value > self.max / 2
    }

    /// Whether the counter is one step from changing its prediction.
    pub fn is_weak(&self) -> bool {
        let mid = self.max / 2;
        self.value == mid || self.value == mid + 1
    }

    /// Trains the counter toward `taken`, saturating at the limits.
    pub fn train(&mut self, taken: bool) {
        if taken {
            if self.value < self.max {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
        debug_assert!(
            self.value <= self.max,
            "counter {} escaped its saturation bound {}",
            self.value,
            self.max
        );
    }

    /// Resets the counter to a weak state leaning toward `taken`.
    pub fn reset_toward(&mut self, taken: bool) {
        let mid = self.max / 2;
        self.value = if taken { mid + 1 } else { mid };
        debug_assert!(self.is_weak(), "reset_toward must land on a weak state");
    }
}

impl Default for SaturatingCounter {
    /// Equivalent to [`SaturatingCounter::two_bit`].
    fn default() -> Self {
        Self::two_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_starts_weak_not_taken() {
        let c = SaturatingCounter::two_bit();
        assert_eq!(c.value(), 1);
        assert!(!c.predict_taken());
        assert!(c.is_weak());
    }

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SaturatingCounter::two_bit();
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.value(), 3);
        for _ in 0..10 {
            c.train(false);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn msb_is_the_prediction() {
        let mut c = SaturatingCounter::new(2, 0);
        assert!(!c.predict_taken()); // 0: strong not-taken
        c.train(true);
        assert!(!c.predict_taken()); // 1: weak not-taken
        c.train(true);
        assert!(c.predict_taken()); // 2: weak taken
        c.train(true);
        assert!(c.predict_taken()); // 3: strong taken
    }

    #[test]
    fn hysteresis_filters_single_anomaly() {
        let mut c = SaturatingCounter::new(2, 3);
        c.train(false);
        assert!(
            c.predict_taken(),
            "one not-taken should not flip a strong counter"
        );
        c.train(false);
        assert!(!c.predict_taken());
    }

    #[test]
    fn three_bit_counter_behaves() {
        let mut c = SaturatingCounter::new(3, 3);
        assert!(!c.predict_taken());
        c.train(true);
        assert!(c.predict_taken());
        assert!(c.is_weak());
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.value(), 7);
        assert!(!c.is_weak());
    }

    #[test]
    fn reset_toward_is_weak() {
        let mut c = SaturatingCounter::new(2, 0);
        c.reset_toward(true);
        assert!(c.predict_taken());
        assert!(c.is_weak());
        c.reset_toward(false);
        assert!(!c.predict_taken());
        assert!(c.is_weak());
    }

    #[test]
    fn two_bit_toward_leans_correctly() {
        assert!(SaturatingCounter::two_bit_toward(true).predict_taken());
        assert!(!SaturatingCounter::two_bit_toward(false).predict_taken());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_value_rejected() {
        let _ = SaturatingCounter::new(2, 4);
    }
}
