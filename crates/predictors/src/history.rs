//! The global branch history ("ghist") register.

/// A shift register recording the outcomes of the most recent conditional
/// branches, newest outcome in the least significant bit.
///
/// This is the paper's "ghist register": history-indexed predictors read some
/// or all of it to form table indices, and §4 of the paper studies whether
/// statically predicted branches should shift their outcomes into it.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::HistoryRegister;
///
/// let mut h = HistoryRegister::new(8);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.bits(3), 0b101, "newest outcome in bit 0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryRegister {
    bits: u64,
    len: u32,
}

impl HistoryRegister {
    /// Creates an all-zeros history of `len` bits (1 ≤ `len` ≤ 64).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds 64.
    pub fn new(len: u32) -> Self {
        assert!((1..=64).contains(&len), "history length {len} out of range");
        Self { bits: 0, len }
    }

    /// The register length in bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the register is zero-length (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shifts one branch outcome into the register.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.bits = (self.bits << 1) | u64::from(taken);
        if self.len < 64 {
            self.bits &= (1u64 << self.len) - 1;
        }
        debug_assert!(
            self.len >= 64 || self.bits < (1u64 << self.len),
            "history register holds bits beyond its {}-bit length",
            self.len
        );
    }

    /// The newest `n` history bits (`n` ≤ length), newest in bit 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the register length.
    #[inline]
    pub fn bits(&self, n: u32) -> u64 {
        assert!(
            n <= self.len,
            "requested {n} bits of a {}-bit history",
            self.len
        );
        if n == 0 {
            0
        } else if n == 64 {
            self.bits
        } else {
            self.bits & ((1u64 << n) - 1)
        }
    }

    /// The full register contents.
    #[inline]
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// The newest `take` bits XOR-folded down to `into` bits.
    ///
    /// Used when a predictor wants a longer history than its index width
    /// (e.g. the long-history banks of 2bcgskew): the history is split into
    /// `into`-bit chunks that are XORed together, preserving entropy from
    /// every position.
    ///
    /// # Panics
    ///
    /// Panics if `into` is zero or `take` exceeds the register length.
    pub fn folded(&self, take: u32, into: u32) -> u64 {
        fold_bits(self.bits(take), take, into)
    }

    /// Clears the register to all zeros.
    pub fn clear(&mut self) {
        self.bits = 0;
    }

    /// Restores the register contents from a batch loop's local copy. The
    /// value must already be masked to the register length (batch loops
    /// apply the same mask as [`push`](HistoryRegister::push)).
    pub(crate) fn set_bits(&mut self, bits: u64) {
        debug_assert!(
            self.len >= 64 || bits < (1u64 << self.len),
            "batch history value exceeds the {}-bit register length",
            self.len
        );
        self.bits = bits;
    }
}

/// XOR-folds the newest `take` bits of a raw history value down to `into`
/// bits — the pure form of [`HistoryRegister::folded`], shared with static
/// analyzers that probe index functions under arbitrary history values.
/// Bits of `history` at or beyond `take` are ignored.
///
/// # Panics
///
/// Panics if `into` is zero.
pub fn fold_bits(history: u64, take: u32, into: u32) -> u64 {
    assert!(into > 0, "cannot fold into zero bits");
    let mut remaining = if take == 0 {
        0
    } else if take >= 64 {
        history
    } else {
        history & ((1u64 << take) - 1)
    };
    let mask = if into >= 64 {
        u64::MAX
    } else {
        (1u64 << into) - 1
    };
    let mut acc = 0u64;
    let mut consumed = 0;
    while consumed < take {
        acc ^= remaining & mask;
        remaining >>= into.min(63);
        consumed += into;
    }
    acc & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_bits_masks_beyond_take() {
        // Bits above `take` must not leak into the fold.
        assert_eq!(fold_bits(0xff0f, 8, 4), fold_bits(0x0f, 8, 4));
        assert_eq!(fold_bits(0b1010_0110, 8, 4), 0b1100);
        assert_eq!(fold_bits(0xdead, 0, 4), 0);
    }

    #[test]
    fn push_order_is_newest_in_lsb() {
        let mut h = HistoryRegister::new(4);
        h.push(true); // 0001
        h.push(true); // 0011
        h.push(false); // 0110
        assert_eq!(h.value(), 0b110);
        assert_eq!(h.bits(2), 0b10);
    }

    #[test]
    fn history_wraps_at_length() {
        let mut h = HistoryRegister::new(3);
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.value(), 0b111, "only 3 bits retained");
        h.push(false);
        assert_eq!(h.value(), 0b110);
    }

    #[test]
    fn full_64_bit_history_works() {
        let mut h = HistoryRegister::new(64);
        for i in 0..70 {
            h.push(i % 2 == 0);
        }
        // Must not panic and must keep exactly 64 bits.
        let v = h.bits(64);
        assert_eq!(v, h.value());
    }

    #[test]
    fn bits_zero_is_zero() {
        let mut h = HistoryRegister::new(8);
        h.push(true);
        assert_eq!(h.bits(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_length_rejected() {
        let _ = HistoryRegister::new(0);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn oversized_bits_rejected() {
        let h = HistoryRegister::new(4);
        let _ = h.bits(5);
    }

    #[test]
    fn folding_preserves_short_history() {
        let mut h = HistoryRegister::new(16);
        h.push(true);
        h.push(false);
        h.push(true);
        // take <= into: folding is the identity on the taken bits.
        assert_eq!(h.folded(3, 8), 0b101);
    }

    #[test]
    fn folding_xors_chunks() {
        let mut h = HistoryRegister::new(8);
        // Build 1010_0110.
        for bit in [true, false, true, false, false, true, true, false] {
            h.push(bit);
        }
        assert_eq!(h.value(), 0b1010_0110);
        // Fold 8 bits into 4: 0110 ^ 1010 = 1100.
        assert_eq!(h.folded(8, 4), 0b1100);
    }

    #[test]
    fn clear_zeroes_the_register() {
        let mut h = HistoryRegister::new(8);
        h.push(true);
        h.clear();
        assert_eq!(h.value(), 0);
    }
}
