//! The ghist (GAg) global-history predictor.

use crate::history::HistoryRegister;
use crate::index_spec::IndexSpec;
use crate::table::PredictionTable;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::BranchAddr;

/// The pure global-history predictor (GAg in Yeh & Patt's taxonomy).
///
/// The counter table is indexed *only* by the global history register — the
/// branch address does not participate at all. It captures the "branch
/// correlation" principle: the outcome of a branch often depends on the
/// outcomes of the branches leading up to it. Because many branches share
/// each history value, ghist suffers heavy aliasing — which makes it the
/// predictor that benefits most from the paper's static filtering (up to 75%
/// MISPs/KI improvement on m88ksim).
///
/// History length equals the table index width, as in the paper.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, Ghist};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Ghist::new(1024); // 4K counters => 12 bits of history
/// let _ = p.predict(BranchAddr(0x77c));
/// p.update(BranchAddr(0x77c), true);
/// ```
#[derive(Debug, Clone)]
pub struct Ghist {
    table: PredictionTable,
    history: HistoryRegister,
    latched: Option<Latched<u64>>,
}

impl Ghist {
    /// Creates a ghist predictor with a `size_bytes` counter budget.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two.
    pub fn new(size_bytes: usize) -> Self {
        let table = PredictionTable::two_bit(size_bytes * 4);
        let history = HistoryRegister::new(table.index_bits());
        Self {
            table,
            history,
            latched: None,
        }
    }

    /// The history length in bits (equals the index width).
    pub fn history_len(&self) -> u32 {
        self.history.len()
    }
}

impl DynamicPredictor for Ghist {
    fn name(&self) -> &'static str {
        "ghist"
    }

    fn size_bytes(&self) -> usize {
        self.table.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let index = self.history.bits(self.table.index_bits());
        let (taken, collision) = self.table.lookup(index, pc);
        self.latched = Some(Latched { pc, ctx: index });
        Prediction { taken, collision }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let index = Latched::take_for(&mut self.latched, pc, "ghist");
        self.table.train(index, taken);
        self.history.push(taken);
        debug_assert_eq!(self.history.len(), self.table.index_bits());
    }

    #[inline]
    fn predict_update(&mut self, pc: BranchAddr, taken: bool) -> Prediction {
        let index = self.history.bits(self.table.index_bits());
        let (predicted, collision) = self.table.lookup_train(index, pc, taken);
        self.history.push(taken);
        Prediction {
            taken: predicted,
            collision,
        }
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.table.collisions()
    }

    fn history_bits(&self) -> u32 {
        self.table.index_bits()
    }

    fn probe_indices(&self, _pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        out.push((0, history & self.table.index_mask()));
        true
    }

    fn index_spec(&self) -> Option<IndexSpec> {
        Some(IndexSpec::from_linear_probe(
            self,
            &[self.table.index_bits()],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `pattern` cyclically through the predictor and returns the
    /// accuracy over the last `measure` branches.
    fn run_pattern(p: &mut Ghist, pc: u64, pattern: &[bool], total: usize, measure: usize) -> f64 {
        let pc = BranchAddr(pc);
        let mut correct = 0usize;
        for i in 0..total {
            let outcome = pattern[i % pattern.len()];
            let pred = p.predict(pc);
            if i >= total - measure && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        correct as f64 / measure as f64
    }

    #[test]
    fn learns_history_patterns_a_bimodal_cannot() {
        // Alternating T/N: bimodal oscillates at ~0%, ghist should nail it.
        let mut p = Ghist::new(256);
        let acc = run_pattern(&mut p, 0x40, &[true, false], 2000, 500);
        assert!(acc > 0.99, "ghist accuracy on alternation: {acc}");
    }

    #[test]
    fn learns_loop_exit_patterns() {
        // T T T N repeating (a 4-iteration loop): needs >= 3 bits of history.
        let mut p = Ghist::new(256);
        let acc = run_pattern(&mut p, 0x40, &[true, true, true, false], 4000, 1000);
        assert!(acc > 0.99, "ghist accuracy on loop pattern: {acc}");
    }

    #[test]
    fn captures_cross_branch_correlation() {
        // Branch B's outcome equals branch A's last outcome. ghist sees A's
        // outcome in the history when predicting B.
        let mut p = Ghist::new(1024);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        let mut correct = 0;
        let mut measured = 0;
        let mut a_outcome;
        for i in 0..4000u64 {
            a_outcome = (i * 2654435761) % 3 == 0; // pseudo-random-ish
            let _ = p.predict(a);
            p.update(a, a_outcome);
            let pred = p.predict(b);
            if i >= 3000 {
                measured += 1;
                if pred.taken == a_outcome {
                    correct += 1;
                }
            }
            p.update(b, a_outcome);
        }
        let acc = correct as f64 / measured as f64;
        assert!(acc > 0.95, "correlation accuracy: {acc}");
    }

    #[test]
    fn aliasing_is_heavy_between_unrelated_branches() {
        // With pseudo-random outcomes the two branches wander over the whole
        // history-indexed table and repeatedly reuse each other's counters —
        // the GAg aliasing problem the paper targets.
        let mut p = Ghist::new(64);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x900);
        let mut state = 0xdead_beefu64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let _ = p.predict(a);
            p.update(a, state & (1 << 40) != 0);
            let _ = p.predict(b);
            p.update(b, state & (1 << 41) != 0);
        }
        assert!(
            p.total_collisions() > 500,
            "collisions: {}",
            p.total_collisions()
        );
    }

    #[test]
    fn shift_history_changes_future_indices() {
        let mut p = Ghist::new(256);
        let pc = BranchAddr(0x40);
        let _ = p.predict(pc);
        p.update(pc, true);
        let before = p.history.value();
        p.shift_history(false);
        assert_ne!(p.history.value(), before);
        assert_eq!(
            p.history.value(),
            before << 1 & ((1 << p.history_len()) - 1)
        );
    }

    #[test]
    fn probe_indices_ignore_the_pc() {
        let p = Ghist::new(256);
        let mut a = Vec::new();
        let mut b = Vec::new();
        assert!(p.probe_indices(BranchAddr(0x100), 0b1011, &mut a));
        assert!(p.probe_indices(BranchAddr(0x900), 0b1011, &mut b));
        assert_eq!(a, b, "GAg indexes by history alone");
        assert_eq!(a, vec![(0, 0b1011)]);
        assert_eq!(p.history_bits(), p.history_len());
    }

    #[test]
    fn history_len_tracks_table_size() {
        assert_eq!(Ghist::new(256).history_len(), 10); // 1K counters
        assert_eq!(Ghist::new(4096).history_len(), 14); // 16K counters
    }
}
