//! Dynamic branch predictor simulators with aliasing instrumentation.
//!
//! This crate implements the five dynamic predictors evaluated by Patil &
//! Emer (HPCA 2000) — [`Bimodal`], [`Ghist`] (GAg), [`Gshare`], [`BiMode`]
//! and [`TwoBcGskew`] — plus five period-appropriate designs used for
//! ablations: the related-work alias reducers [`Agree`], [`Yags`] and the
//! raw [`EGskew`] majority-vote hybrid, the 21264-style [`Tournament`]
//! combiner, and the two-level [`Local`] (PAg) predictor. Two post-paper
//! designs — the hashed [`Perceptron`] and the tagged [`TageLite`] — close
//! the "do static hints survive modern predictors?" frontier question
//! (ROADMAP item 4); see `docs/predictors.md` for the full handbook.
//!
//! All predictors:
//!
//! * are parameterized by their **hardware budget in bytes** exactly like the
//!   paper (2-bit saturating counters, so a 4 KB predictor holds 16K
//!   counters),
//! * share the [`DynamicPredictor`] trait — `predict` then `update`, plus
//!   `shift_history` so a combined static/dynamic scheme can decide whether
//!   statically predicted branches enter the global history (§4 of the
//!   paper),
//! * carry **collision instrumentation**: every counter has a tag recording
//!   the last branch that used it, and each lookup reports whether it aliased
//!   (the paper's simplified Young-et-al. collision definition).
//!
//! # Examples
//!
//! ```
//! use sdbp_predictors::{DynamicPredictor, Gshare};
//! use sdbp_trace::BranchAddr;
//!
//! let mut p = Gshare::new(4096); // a 4 KB gshare
//! let pc = BranchAddr(0x1200);
//! let pred = p.predict(pc);
//! p.update(pc, true);
//! assert!(pred.taken || !pred.taken); // some prediction was produced
//! assert_eq!(p.size_bytes(), 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agree;
pub mod bimodal;
pub mod bimode;
pub mod config;
pub mod counter;
pub mod dispatch;
pub mod ghist;
pub mod gselect;
pub mod gshare;
pub mod gskew;
pub mod history;
mod index_lut;
pub mod index_spec;
pub mod local;
pub mod perceptron;
pub mod skew;
pub mod table;
pub mod tage;
pub mod tbcgskew;
pub mod tournament;
pub mod traits;
pub mod yags;

pub use agree::Agree;
pub use bimodal::Bimodal;
pub use bimode::BiMode;
pub use config::{parse_size_bytes, ConfigError, IndexCapability, PredictorConfig, PredictorKind};
pub use counter::SaturatingCounter;
pub use dispatch::AnyPredictor;
pub use ghist::Ghist;
pub use gselect::Gselect;
pub use gshare::Gshare;
pub use gskew::EGskew;
pub use history::{fold_bits, HistoryRegister};
pub use index_spec::{IndexSpec, TableSpec, XorClause, MODELED_PC_BITS};
pub use local::Local;
pub use perceptron::Perceptron;
pub use table::{PredictionTable, ReferenceTable};
pub use tage::TageLite;
pub use tbcgskew::TwoBcGskew;
pub use tournament::Tournament;
pub use traits::{DynamicPredictor, Prediction};
pub use yags::Yags;

#[cfg(test)]
mod proptests;
