//! The hashed perceptron predictor.

use crate::history::HistoryRegister;
use crate::table::fold_tag;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent};

/// Context latched between `predict` and `update`: the weight row, the
/// computed dot product, and the history snapshot the product was formed
/// under (training must sign each weight by the *lookup-time* history).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PerceptronCtx {
    row: u32,
    sum: i32,
    history: u64,
}

/// A hashed perceptron predictor (Jiménez & Lin style).
///
/// Each branch hashes to a row of signed 8-bit weights: one bias weight plus
/// one weight per global-history bit. The prediction is the sign of
/// `w₀ + Σ wᵢ·hᵢ` with history outcomes mapped to ±1; training bumps each
/// weight toward agreement with the outcome, but only when the prediction
/// was wrong or the magnitude of the sum was below the threshold
/// [`Perceptron::THRESHOLD`] (the classic `⌊1.93·H + 14⌋` rule). Unlike the
/// paper-era counter tables, a weight row learns *which* history bits
/// correlate with the branch instead of memorizing one counter per history
/// pattern — the frontier the paper's future-work section points toward.
///
/// The row index depends on the PC alone (history enters through the
/// weights, not the index), so the index function is exposed to static
/// aliasing analysis via [`DynamicPredictor::probe_indices`]. Collisions are
/// instrumented exactly like the counter tables: a fold tag per row records
/// the last branch that used it.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, Perceptron};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Perceptron::new(4096);
/// let _ = p.predict(BranchAddr(0x40));
/// p.update(BranchAddr(0x40), true);
/// assert_eq!(p.name(), "perceptron");
/// ```
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// `rows × (HISTORY_LEN + 1)` signed weights, row-major.
    weights: Vec<i8>,
    /// Instrumentation fold tag per row (see `table::fold_tag`).
    tags: Vec<u32>,
    /// Whether the row was ever used (first touch is not a collision).
    valid: Vec<bool>,
    history: HistoryRegister,
    rows: usize,
    latched: Option<Latched<PerceptronCtx>>,
    lookups: u64,
    collisions: u64,
}

impl Perceptron {
    /// Global-history bits each weight row correlates against.
    pub const HISTORY_LEN: u32 = 16;

    /// Training threshold `⌊1.93·H + 14⌋` for `H = 16`.
    pub const THRESHOLD: i32 = 44;

    /// Weights per row: one bias weight plus one per history bit.
    const ROW_WEIGHTS: usize = Self::HISTORY_LEN as usize + 1;

    /// Creates a perceptron within a hardware budget of `size_bytes`.
    ///
    /// The row count is the largest power of two whose weight storage
    /// (`rows × 17` bytes) fits the budget, so the realized
    /// [`size_bytes`](DynamicPredictor::size_bytes) is within a factor of
    /// two of the request — the same rounding e-gskew applies to its banks.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two or is below 32 bytes
    /// (one full weight row).
    pub fn new(size_bytes: usize) -> Self {
        assert!(
            size_bytes.is_power_of_two() && size_bytes >= 32,
            "perceptron budget {size_bytes} must be a power of two >= 32"
        );
        let mut rows = 1usize;
        while rows * 2 * Self::ROW_WEIGHTS <= size_bytes {
            rows *= 2;
        }
        Self {
            weights: vec![0; rows * Self::ROW_WEIGHTS],
            tags: vec![0; rows],
            valid: vec![false; rows],
            history: HistoryRegister::new(Self::HISTORY_LEN),
            rows,
            latched: None,
            lookups: 0,
            collisions: 0,
        }
    }

    /// Number of weight rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The weight row for `pc` — the pure index function, shared by the
    /// live paths and [`DynamicPredictor::probe_indices`].
    #[inline]
    fn row_for(&self, pc: BranchAddr) -> usize {
        (pc.word_index() & (self.rows as u64 - 1)) as usize
    }

    /// The dot product of row `base..` against the ±1-mapped history.
    #[inline]
    fn sum_row(weights: &[i8], base: usize, history: u64) -> i32 {
        let row = &weights[base..base + Self::ROW_WEIGHTS];
        let mut sum = i32::from(row[0]);
        for (i, &w) in row[1..].iter().enumerate() {
            let w = i32::from(w);
            // +w when history bit i was taken, -w when not-taken.
            sum += if (history >> i) & 1 != 0 { w } else { -w };
        }
        sum
    }

    /// One perceptron training step on row `base..` toward `taken`.
    #[inline]
    fn train_row(weights: &mut [i8], base: usize, history: u64, taken: bool) {
        let row = &mut weights[base..base + Self::ROW_WEIGHTS];
        row[0] = row[0].saturating_add(if taken { 1 } else { -1 });
        for (i, w) in row[1..].iter_mut().enumerate() {
            let agrees = ((history >> i) & 1 != 0) == taken;
            *w = w.saturating_add(if agrees { 1 } else { -1 });
        }
    }

    /// Whether the outcome must train the row: mispredicted, or predicted
    /// with a margin at or below the threshold.
    #[inline]
    fn must_train(sum: i32, taken: bool) -> bool {
        ((sum >= 0) != taken) || sum.abs() <= Self::THRESHOLD
    }
}

impl DynamicPredictor for Perceptron {
    fn name(&self) -> &'static str {
        "perceptron"
    }

    fn size_bytes(&self) -> usize {
        self.rows * Self::ROW_WEIGHTS
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let row = self.row_for(pc);
        let history = self.history.value();
        let sum = Self::sum_row(&self.weights, row * Self::ROW_WEIGHTS, history);
        let tag = fold_tag(pc);
        self.lookups += 1;
        let collided = self.valid[row] && self.tags[row] != tag;
        self.collisions += u64::from(collided);
        self.valid[row] = true;
        self.tags[row] = tag;
        self.latched = Some(Latched {
            pc,
            ctx: PerceptronCtx {
                row: row as u32,
                sum,
                history,
            },
        });
        Prediction {
            taken: sum >= 0,
            collision: collided,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "perceptron");
        if Self::must_train(ctx.sum, taken) {
            Self::train_row(
                &mut self.weights,
                ctx.row as usize * Self::ROW_WEIGHTS,
                ctx.history,
                taken,
            );
        }
        self.history.push(taken);
    }

    /// The batched hot path: the history register and the statistics
    /// counters live in locals for the whole batch; the per-row work goes
    /// through the same `sum_row`/`train_row` helpers as the scalar
    /// protocol, so equivalence holds by construction (and is pinned by
    /// `batch_matches_scalar_protocol` below).
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        let mask = self.rows as u64 - 1;
        let hist_mask = (1u64 << Self::HISTORY_LEN) - 1;
        let mut history = self.history.value();
        let mut collisions = 0u64;
        {
            let weights = &mut self.weights;
            let tags = &mut self.tags;
            let valid = &mut self.valid;
            out.extend(events.iter().map(|e| {
                let row = (e.pc.word_index() & mask) as usize;
                let base = row * Self::ROW_WEIGHTS;
                let sum = Self::sum_row(weights, base, history);
                let tag = fold_tag(e.pc);
                let collided = valid[row] && tags[row] != tag;
                collisions += u64::from(collided);
                valid[row] = true;
                tags[row] = tag;
                let taken = e.taken;
                if Self::must_train(sum, taken) {
                    Self::train_row(weights, base, history, taken);
                }
                history = ((history << 1) | u64::from(taken)) & hist_mask;
                Prediction {
                    taken: sum >= 0,
                    collision: collided,
                }
            }));
        }
        self.lookups += events.len() as u64;
        self.collisions += collisions;
        self.history.set_bits(history);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.collisions
    }

    fn history_bits(&self) -> u32 {
        Self::HISTORY_LEN
    }

    fn probe_indices(&self, pc: BranchAddr, _history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        // The row index is history-independent: history enters through the
        // weights. One probe per branch, under every history.
        out.push((0, self.row_for(pc) as u64));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_fits_the_budget() {
        let p = Perceptron::new(4096);
        assert_eq!(p.rows(), 128);
        assert_eq!(p.size_bytes(), 128 * 17);
        assert!(p.size_bytes() > 2048 && p.size_bytes() <= 4096);
        let tiny = Perceptron::new(32);
        assert_eq!(tiny.rows(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn undersized_budget_rejected() {
        let _ = Perceptron::new(16);
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = Perceptron::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..60 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn learns_single_history_bit_correlation() {
        // taken ⇔ previous outcome not taken: a pure alternation that
        // defeats bimodal but is linearly separable on history bit 0.
        let mut p = Perceptron::new(1024);
        let pc = BranchAddr(0x40);
        let mut correct = 0;
        for i in 0..2000 {
            let outcome = i % 2 == 0;
            let pred = p.predict(pc);
            if i >= 1000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(correct > 990, "{correct}");
    }

    #[test]
    fn learns_longer_periodic_patterns() {
        let mut p = Perceptron::new(1024);
        let pc = BranchAddr(0x80);
        let pattern = [true, true, false, true, false, false];
        let mut correct = 0;
        for i in 0..6000 {
            let outcome = pattern[i % pattern.len()];
            let pred = p.predict(pc);
            if i >= 3000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(correct as f64 / 3000.0 > 0.95, "{correct}");
    }

    #[test]
    fn collisions_follow_row_sharing() {
        let mut p = Perceptron::new(32); // one row: everything collides
        assert_eq!(p.rows(), 1);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x200);
        let _ = p.predict(a);
        p.update(a, true);
        assert_eq!(p.total_collisions(), 0, "first touch is free");
        let _ = p.predict(b);
        p.update(b, false);
        assert_eq!(p.total_collisions(), 1);
        let _ = p.predict(b);
        p.update(b, false);
        assert_eq!(p.total_collisions(), 1, "b owns the row now");
    }

    #[test]
    fn probe_indices_match_the_live_index_function() {
        let mut p = Perceptron::new(2048);
        for bit in [true, false, true] {
            p.shift_history(bit);
        }
        let pc = BranchAddr(0x123c);
        let mut probes = Vec::new();
        assert!(p.probe_indices(pc, p.history.value(), &mut probes));
        assert_eq!(probes, vec![(0, p.row_for(pc) as u64)]);
        assert_eq!(p.history_bits(), Perceptron::HISTORY_LEN);
    }

    #[test]
    fn weights_saturate_at_i8_bounds() {
        // Drive a row past both i8 rails; saturating_add must clamp.
        let mut weights = vec![120i8; Perceptron::ROW_WEIGHTS];
        for _ in 0..20 {
            Perceptron::train_row(&mut weights, 0, u64::MAX, true);
        }
        assert!(weights.iter().all(|&w| w == 127));
        let mut weights = vec![-120i8; Perceptron::ROW_WEIGHTS];
        for _ in 0..20 {
            Perceptron::train_row(&mut weights, 0, u64::MAX, false);
        }
        assert!(weights.iter().all(|&w| w == -128));
    }

    #[test]
    fn batch_matches_scalar_protocol() {
        // The hoisted batch loop against the predict/update protocol, event
        // for event, across batch sizes covering empty, single-event and
        // multi-event calls.
        let mut state = 0xfeed_face_cafe_beefu64;
        let events: Vec<BranchEvent> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                BranchEvent::new(
                    BranchAddr((state >> 17) % 701 * 4),
                    state & (1 << 40) != 0,
                    0,
                )
            })
            .collect();
        let mut batched = Perceptron::new(1024);
        let mut scalar = Perceptron::new(1024);
        let mut out = Vec::new();
        let mut start = 0;
        for (k, size) in [0usize, 1, 7, 256, 3000].iter().cycle().enumerate() {
            if start >= events.len() {
                break;
            }
            let chunk = &events[start..(start + size).min(events.len())];
            start += size;
            out.clear();
            batched.predict_update_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len(), "chunk {k}");
            for (e, got) in chunk.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                assert_eq!(*got, want);
            }
            assert_eq!(batched.total_collisions(), scalar.total_collisions());
            assert_eq!(batched.history.value(), scalar.history.value());
            assert_eq!(batched.weights, scalar.weights);
        }
        assert_eq!(batched.lookups, scalar.lookups);
    }
}
