//! Declarative predictor configuration.
//!
//! The experiment harness sweeps predictor kind × size; [`PredictorConfig`]
//! is the serializable description of one point of that grid and
//! [`PredictorConfig::build`] instantiates the simulator.

use crate::{
    Agree, AnyPredictor, BiMode, Bimodal, DynamicPredictor, EGskew, Ghist, Gselect, Gshare, Local,
    Perceptron, TageLite, Tournament, TwoBcGskew, Yags,
};
use sdbp_trace::BranchAddr;
use std::fmt;
use std::str::FromStr;

/// The dynamic prediction schemes available to experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Per-address 2-bit counters ([`Bimodal`]).
    Bimodal,
    /// Pure global-history GAg ([`Ghist`]).
    Ghist,
    /// PC ⊕ history indexing ([`Gshare`]).
    Gshare,
    /// Choice + two direction banks ([`BiMode`]).
    BiMode,
    /// Bimodal + skewed vote + meta chooser ([`TwoBcGskew`]).
    TwoBcGskew,
    /// Bias-bit agreement counters ([`Agree`]).
    Agree,
    /// Tagged exception caches ([`Yags`]).
    Yags,
    /// Raw three-bank majority vote ([`EGskew`]).
    EGskew,
    /// Bimodal + gshare with a chooser, 21264-style ([`Tournament`]).
    Tournament,
    /// Two-level per-address history, PAg ([`Local`]).
    Local,
    /// Address ∥ history concatenated index ([`Gselect`]).
    Gselect,
    /// Hashed perceptron over global history ([`Perceptron`]).
    Perceptron,
    /// Tagged geometric-history tables ([`TageLite`]).
    TageLite,
}

impl PredictorKind {
    /// All kinds, in the order the paper's figures present them followed by
    /// the related-work extensions and the post-paper frontier designs.
    pub const ALL: [PredictorKind; 13] = [
        PredictorKind::Bimodal,
        PredictorKind::Ghist,
        PredictorKind::Gshare,
        PredictorKind::BiMode,
        PredictorKind::TwoBcGskew,
        PredictorKind::Agree,
        PredictorKind::Yags,
        PredictorKind::EGskew,
        PredictorKind::Tournament,
        PredictorKind::Local,
        PredictorKind::Gselect,
        PredictorKind::Perceptron,
        PredictorKind::TageLite,
    ];

    /// The five schemes evaluated in the paper (Figures 7–12, Table 2).
    pub const PAPER: [PredictorKind; 5] = [
        PredictorKind::Bimodal,
        PredictorKind::Ghist,
        PredictorKind::Gshare,
        PredictorKind::BiMode,
        PredictorKind::TwoBcGskew,
    ];

    /// The scheme name used in reports and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Bimodal => "bimodal",
            PredictorKind::Ghist => "ghist",
            PredictorKind::Gshare => "gshare",
            PredictorKind::BiMode => "bi-mode",
            PredictorKind::TwoBcGskew => "2bcgskew",
            PredictorKind::Agree => "agree",
            PredictorKind::Yags => "yags",
            PredictorKind::EGskew => "e-gskew",
            PredictorKind::Tournament => "tournament",
            PredictorKind::Local => "local",
            PredictorKind::Gselect => "gselect",
            PredictorKind::Perceptron => "perceptron",
            PredictorKind::TageLite => "tage-lite",
        }
    }

    /// Whether the scheme keeps a global history register (and therefore
    /// participates in the paper's shift-vs-no-shift question).
    pub fn uses_global_history(self) -> bool {
        !matches!(self, PredictorKind::Bimodal | PredictorKind::Local)
    }
}

impl fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PredictorKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bimodal" => Ok(PredictorKind::Bimodal),
            "ghist" | "gag" => Ok(PredictorKind::Ghist),
            "gshare" => Ok(PredictorKind::Gshare),
            "bi-mode" | "bimode" => Ok(PredictorKind::BiMode),
            "2bcgskew" | "tbcgskew" => Ok(PredictorKind::TwoBcGskew),
            "agree" => Ok(PredictorKind::Agree),
            "yags" => Ok(PredictorKind::Yags),
            "e-gskew" | "egskew" => Ok(PredictorKind::EGskew),
            "tournament" | "21264" => Ok(PredictorKind::Tournament),
            "local" | "pag" => Ok(PredictorKind::Local),
            "gselect" => Ok(PredictorKind::Gselect),
            "perceptron" => Ok(PredictorKind::Perceptron),
            "tage-lite" | "tagelite" | "tage" => Ok(PredictorKind::TageLite),
            other => Err(ConfigError::UnknownKind(other.to_string())),
        }
    }
}

/// How far static aliasing analysis can see into a predictor's index
/// functions — the one capability source consulted by `sdbp check`, the
/// profiles crate and the CLI (see
/// [`PredictorConfig::index_capability`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexCapability {
    /// Every index bit is an XOR of PC/history bits plus a constant
    /// ([`DynamicPredictor::index_spec`] is `Some`): exact GF(2) analysis
    /// applies — collision classes can be *proven*, not sampled.
    Linear,
    /// Indices are pure functions of `(pc, history)` exposed through
    /// [`DynamicPredictor::probe_indices`] but hashed non-linearly
    /// (perceptron segment hashing, TAGE tag folding): only the sampled
    /// analysis applies.
    SampledOnly,
    /// No index function exposed at all — chooser-based hybrids and
    /// schemes indexed by mutable per-branch state.
    Opaque,
}

impl IndexCapability {
    /// Whether *any* static index analysis (exact or sampled) applies.
    pub fn is_analyzable(self) -> bool {
        !matches!(self, IndexCapability::Opaque)
    }

    /// Whether the exact GF(2) analysis applies.
    pub fn is_linear(self) -> bool {
        matches!(self, IndexCapability::Linear)
    }

    /// The capability name used in diagnostics (`linear`, `sampled-only`,
    /// `opaque`).
    pub fn name(self) -> &'static str {
        match self {
            IndexCapability::Linear => "linear",
            IndexCapability::SampledOnly => "sampled-only",
            IndexCapability::Opaque => "opaque",
        }
    }
}

impl fmt::Display for IndexCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from predictor configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The scheme name was not recognized.
    UnknownKind(String),
    /// The size is invalid for the scheme (must be a power of two and large
    /// enough for the scheme's bank split).
    BadSize {
        /// The scheme.
        kind: PredictorKind,
        /// The rejected size in bytes.
        size_bytes: usize,
    },
    /// A size value that is not a byte count at all (e.g. `--size huge`).
    BadSizeLiteral(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownKind(s) => write!(f, "unknown predictor kind '{s}'"),
            ConfigError::BadSize { kind, size_bytes } => {
                write!(f, "invalid size {size_bytes} bytes for {kind}")
            }
            ConfigError::BadSizeLiteral(s) => {
                write!(f, "size '{s}' is not a byte count")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// One predictor configuration: scheme plus byte budget.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{PredictorConfig, PredictorKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = PredictorConfig::new(PredictorKind::Gshare, 16 * 1024)?;
/// let p = cfg.build();
/// assert_eq!(p.size_bytes(), 16 * 1024);
/// assert_eq!(p.name(), "gshare");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredictorConfig {
    kind: PredictorKind,
    size_bytes: usize,
}

impl PredictorConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadSize`] when `size_bytes` is not a power of two or
    /// is below the scheme's minimum (16 bytes for the multi-bank hybrids,
    /// so every bank has at least a handful of entries; 32 bytes for the
    /// frontier designs — one full perceptron weight row, or two entries in
    /// every tagged TAGE bank).
    pub fn new(kind: PredictorKind, size_bytes: usize) -> Result<Self, ConfigError> {
        let min = match kind {
            PredictorKind::Bimodal
            | PredictorKind::Ghist
            | PredictorKind::Gshare
            | PredictorKind::Gselect => 1,
            PredictorKind::Perceptron | PredictorKind::TageLite => 32,
            _ => 16,
        };
        if !size_bytes.is_power_of_two() || size_bytes < min {
            return Err(ConfigError::BadSize { kind, size_bytes });
        }
        Ok(Self { kind, size_bytes })
    }

    /// Parses a `(kind, size)` pair of command-line strings into a validated
    /// configuration — the one helper behind both the CLI's
    /// `--predictor`/`--size` options and `sdbp check`'s spec fields, so the
    /// two surfaces cannot drift.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownKind`] for an unrecognized scheme name,
    /// [`ConfigError::BadSizeLiteral`] when `size_bytes` is not an unsigned
    /// integer, and [`ConfigError::BadSize`] when the byte count is invalid
    /// for the scheme.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdbp_predictors::{PredictorConfig, PredictorKind};
    ///
    /// let cfg = PredictorConfig::parse("gshare", "16384").unwrap();
    /// assert_eq!(cfg.kind(), PredictorKind::Gshare);
    /// assert!(PredictorConfig::parse("gshare", "huge").is_err());
    /// ```
    pub fn parse(kind: &str, size_bytes: &str) -> Result<Self, ConfigError> {
        let kind: PredictorKind = kind.parse()?;
        let size = parse_size_bytes(size_bytes)?;
        Self::new(kind, size)
    }

    /// The scheme.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// The byte budget.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Classifies how much of this configuration's index structure static
    /// analysis can see, by building the predictor and interrogating
    /// [`DynamicPredictor::index_spec`] / [`DynamicPredictor::probe_indices`]
    /// — so the classification can never drift from what the simulators
    /// actually expose.
    pub fn index_capability(&self) -> IndexCapability {
        let predictor = self.build_any();
        if predictor.index_spec().is_some() {
            return IndexCapability::Linear;
        }
        let mut scratch = Vec::new();
        if predictor.probe_indices(BranchAddr(0), 0, &mut scratch) {
            IndexCapability::SampledOnly
        } else {
            IndexCapability::Opaque
        }
    }

    /// Instantiates the predictor simulator.
    ///
    /// For [`PredictorKind::EGskew`] the three banks split the power-of-two
    /// budget as closely as representable (each bank gets the largest power
    /// of two ≤ budget/3), so `size_bytes()` of the result may be slightly
    /// below the configured budget; every other scheme matches it exactly.
    pub fn build(&self) -> Box<dyn DynamicPredictor> {
        self.build_any().into_boxed()
    }

    /// Instantiates the predictor behind the enum-dispatched
    /// [`AnyPredictor`], the form the simulation hot path wants: the inner
    /// loop then resolves `predict`/`update` by discriminant match instead
    /// of virtual calls. Sizing rules are identical to
    /// [`PredictorConfig::build`].
    pub fn build_any(&self) -> AnyPredictor {
        match self.kind {
            PredictorKind::Bimodal => Bimodal::new(self.size_bytes).into(),
            PredictorKind::Ghist => Ghist::new(self.size_bytes).into(),
            PredictorKind::Gshare => Gshare::new(self.size_bytes).into(),
            PredictorKind::BiMode => BiMode::new(self.size_bytes).into(),
            PredictorKind::TwoBcGskew => TwoBcGskew::new(self.size_bytes).into(),
            PredictorKind::Agree => Agree::new(self.size_bytes).into(),
            PredictorKind::Yags => Yags::new(self.size_bytes).into(),
            PredictorKind::Gselect => Gselect::new(self.size_bytes).into(),
            PredictorKind::Tournament => Tournament::new(self.size_bytes).into(),
            PredictorKind::Local => Local::new(self.size_bytes).into(),
            PredictorKind::Perceptron => Perceptron::new(self.size_bytes).into(),
            PredictorKind::TageLite => TageLite::new(self.size_bytes).into(),
            PredictorKind::EGskew => {
                // Largest power-of-two bank that fits three times in budget.
                let per_bank = (self.size_bytes / 3).max(1);
                let per_bank = if per_bank.is_power_of_two() {
                    per_bank
                } else {
                    per_bank.next_power_of_two() >> 1
                };
                EGskew::new(3 * per_bank).into()
            }
        }
    }
}

/// Parses a byte-count literal (`"8192"`), rejecting anything that is not a
/// plain unsigned integer. Used by [`PredictorConfig::parse`] and by spec
/// parsers that need the raw count before validating it against a kind.
///
/// # Errors
///
/// [`ConfigError::BadSizeLiteral`] naming the rejected text.
pub fn parse_size_bytes(s: &str) -> Result<usize, ConfigError> {
    s.trim()
        .parse::<usize>()
        .map_err(|_| ConfigError::BadSizeLiteral(s.to_string()))
}

impl fmt::Display for PredictorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.size_bytes >= 1024 && self.size_bytes.is_multiple_of(1024) {
            write!(f, "{} {}KB", self.kind, self.size_bytes / 1024)
        } else {
            write!(f, "{} {}B", self.kind, self.size_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_trace::BranchAddr;

    #[test]
    fn parses_all_kind_names() {
        for kind in PredictorKind::ALL {
            let parsed: PredictorKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!(
            "GAg".parse::<PredictorKind>().unwrap(),
            PredictorKind::Ghist
        );
        assert!("nonsense".parse::<PredictorKind>().is_err());
    }

    #[test]
    fn build_produces_working_predictors_of_declared_size() {
        for kind in PredictorKind::ALL {
            let cfg = PredictorConfig::new(kind, 4096).unwrap();
            let mut p = cfg.build();
            assert_eq!(p.name(), kind.name());
            // EGskew rounds its three banks down to powers of two and YAGS
            // spends part of its budget on tags; both stay within a factor
            // of two of the request. The plain table schemes match exactly.
            assert!(
                p.size_bytes() >= 2048 && p.size_bytes() <= 8192,
                "{kind}: {} bytes",
                p.size_bytes()
            );
            // Every predictor must run the basic protocol.
            for i in 0..100u64 {
                let pc = BranchAddr(0x1000 + 4 * (i % 10));
                let _ = p.predict(pc);
                p.update(pc, i % 2 == 0);
                p.shift_history(i % 3 == 0);
            }
        }
    }

    #[test]
    fn parse_helper_matches_the_constructor() {
        assert_eq!(
            PredictorConfig::parse("gshare", "4096").unwrap(),
            PredictorConfig::new(PredictorKind::Gshare, 4096).unwrap()
        );
        assert_eq!(
            PredictorConfig::parse("nonsense", "4096").unwrap_err(),
            ConfigError::UnknownKind("nonsense".into())
        );
        assert_eq!(
            PredictorConfig::parse("gshare", "huge").unwrap_err(),
            ConfigError::BadSizeLiteral("huge".into())
        );
        assert!(matches!(
            PredictorConfig::parse("gshare", "3000").unwrap_err(),
            ConfigError::BadSize { .. }
        ));
        assert_eq!(parse_size_bytes(" 512 "), Ok(512));
        assert!(parse_size_bytes("-1").is_err());
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(PredictorConfig::new(PredictorKind::Gshare, 3000).is_err());
        assert!(PredictorConfig::new(PredictorKind::TwoBcGskew, 8).is_err());
        assert!(PredictorConfig::new(PredictorKind::Gshare, 0).is_err());
        assert!(PredictorConfig::new(PredictorKind::BiMode, 16).is_ok());
    }

    #[test]
    fn index_capability_classification() {
        // Linear: every index bit an XOR clause. Sampled-only: pure
        // (pc, history) functions with non-linear hashing. Opaque:
        // chooser-based hybrids and per-branch mutable state.
        for (kind, capability) in [
            (PredictorKind::Bimodal, IndexCapability::Linear),
            (PredictorKind::Ghist, IndexCapability::Linear),
            (PredictorKind::Gshare, IndexCapability::Linear),
            (PredictorKind::Gselect, IndexCapability::Linear),
            (PredictorKind::EGskew, IndexCapability::Linear),
            (PredictorKind::Perceptron, IndexCapability::SampledOnly),
            (PredictorKind::TageLite, IndexCapability::SampledOnly),
            (PredictorKind::BiMode, IndexCapability::Opaque),
            (PredictorKind::TwoBcGskew, IndexCapability::Opaque),
            (PredictorKind::Agree, IndexCapability::Opaque),
            (PredictorKind::Yags, IndexCapability::Opaque),
            (PredictorKind::Tournament, IndexCapability::Opaque),
            (PredictorKind::Local, IndexCapability::Opaque),
        ] {
            let config = PredictorConfig::new(kind, 4096).unwrap();
            assert_eq!(config.index_capability(), capability, "{kind}");
        }
        assert!(IndexCapability::Linear.is_analyzable());
        assert!(IndexCapability::SampledOnly.is_analyzable());
        assert!(!IndexCapability::Opaque.is_analyzable());
        assert!(IndexCapability::Linear.is_linear());
        assert!(!IndexCapability::SampledOnly.is_linear());
        assert_eq!(IndexCapability::SampledOnly.to_string(), "sampled-only");
    }

    #[test]
    fn history_usage_classification() {
        assert!(!PredictorKind::Bimodal.uses_global_history());
        assert!(PredictorKind::Gshare.uses_global_history());
        assert!(PredictorKind::TwoBcGskew.uses_global_history());
    }

    #[test]
    fn display_formats_sizes() {
        let cfg = PredictorConfig::new(PredictorKind::Gshare, 16 * 1024).unwrap();
        assert_eq!(cfg.to_string(), "gshare 16KB");
        let cfg = PredictorConfig::new(PredictorKind::Gshare, 512).unwrap();
        assert_eq!(cfg.to_string(), "gshare 512B");
    }

    #[test]
    fn paper_set_is_the_published_five() {
        let names: Vec<&str> = PredictorKind::PAPER.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["bimodal", "ghist", "gshare", "bi-mode", "2bcgskew"]);
    }
}
