//! The two-level local-history (PAg) predictor.

use crate::table::PredictionTable;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::BranchAddr;

/// Yeh & Patt's PAg: per-address history registers indexing a shared
/// pattern table.
///
/// Level one is a PC-indexed table of *local* history registers (each
/// recording the recent outcomes of one branch); level two is a shared
/// table of 2-bit counters indexed by the selected local history. Local
/// history captures per-branch periodicity (loop trip counts, toggles) that
/// global history dilutes — and, being shared, the second level aliases
/// across branches exactly like ghist does, so it participates in the
/// paper's aliasing story.
///
/// Storage split of the byte budget: half to the history table (10-bit
/// registers), half to the pattern table.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, Local};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Local::new(4096);
/// let _ = p.predict(BranchAddr(0x24));
/// p.update(BranchAddr(0x24), false);
/// ```
#[derive(Debug, Clone)]
pub struct Local {
    histories: Vec<u16>,
    history_bits: u32,
    pattern: PredictionTable,
    latched: Option<Latched<Ctx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    history_index: usize,
    pattern_index: u64,
}

impl Local {
    /// Creates a PAg predictor with a `size_bytes` budget: half in 10-bit
    /// local history registers, half in 2-bit pattern counters.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is smaller than 8 bytes or not a power of two.
    pub fn new(size_bytes: usize) -> Self {
        assert!(
            size_bytes >= 8 && size_bytes.is_power_of_two(),
            "local size {size_bytes} must be a power of two >= 8"
        );
        // Half the bit budget in 10-bit registers, rounded to a power of two.
        let half_bits = size_bytes * 8 / 2;
        let raw_entries = (half_bits / 10).max(2);
        let history_entries = if raw_entries.is_power_of_two() {
            raw_entries
        } else {
            raw_entries.next_power_of_two() >> 1
        };
        let pattern = PredictionTable::two_bit(size_bytes / 2 * 4);
        let history_bits = 10u32.min(pattern.index_bits());
        Self {
            histories: vec![0; history_entries],
            history_bits,
            pattern,
            latched: None,
        }
    }

    fn history_index(&self, pc: BranchAddr) -> usize {
        (pc.word_index() & (self.histories.len() as u64 - 1)) as usize
    }
}

impl DynamicPredictor for Local {
    fn name(&self) -> &'static str {
        "local"
    }

    fn size_bytes(&self) -> usize {
        (self.histories.len() * self.history_bits as usize).div_ceil(8) + self.pattern.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let history_index = self.history_index(pc);
        // The pattern table masks internally; the raw local history is a
        // valid index as-is.
        let pattern_index = self.histories[history_index] as u64;
        let (taken, collision) = self.pattern.lookup(pattern_index, pc);
        self.latched = Some(Latched {
            pc,
            ctx: Ctx {
                history_index,
                pattern_index,
            },
        });
        Prediction { taken, collision }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "local");
        self.pattern.train(ctx.pattern_index, taken);
        let mask = (1u16 << self.history_bits) - 1;
        self.histories[ctx.history_index] =
            ((self.histories[ctx.history_index] << 1) | u16::from(taken)) & mask;
    }

    fn shift_history(&mut self, _taken: bool) {
        // Local histories are per-branch: a statically predicted branch
        // that bypasses the tables has no register to shift. (Its own
        // register simply stops updating — faithful to the mechanism.)
    }

    fn total_collisions(&self) -> u64 {
        self.pattern.collisions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_per_branch_periodicity_global_noise_cannot_hide() {
        // Branch A cycles T T T N; branch B is random noise interleaved.
        // A local predictor isolates A's own history and nails the cycle.
        let mut p = Local::new(2048);
        let a = BranchAddr(0x40);
        let b = BranchAddr(0x80);
        let mut state = 3u64;
        let mut correct = 0;
        let mut measured = 0;
        for i in 0..8000 {
            let outcome_a = i % 4 != 3;
            let pred = p.predict(a);
            if i >= 6000 {
                measured += 1;
                correct += u64::from(pred.taken == outcome_a);
            }
            p.update(a, outcome_a);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let outcome_b = state & (1 << 40) != 0;
            let _ = p.predict(b);
            p.update(b, outcome_b);
        }
        let acc = correct as f64 / measured as f64;
        assert!(acc > 0.95, "local accuracy on the cycle: {acc}");
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = Local::new(512);
        let pc = BranchAddr(0x10);
        for _ in 0..30 {
            let _ = p.predict(pc);
            p.update(pc, false);
        }
        assert!(!p.predict(pc).taken);
        p.update(pc, false);
    }

    #[test]
    fn pattern_table_aliases_across_branches() {
        // Two branches with identical local histories share pattern entries.
        let mut p = Local::new(64);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x104);
        let mut state = 11u64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let o = state & (1 << 35) != 0;
            let _ = p.predict(a);
            p.update(a, o);
            let _ = p.predict(b);
            p.update(b, !o);
        }
        assert!(
            p.total_collisions() > 100,
            "collisions {}",
            p.total_collisions()
        );
    }

    #[test]
    fn size_accounting_within_budget() {
        let p = Local::new(4096);
        assert!(p.size_bytes() <= 4096, "{} bytes", p.size_bytes());
        assert!(p.size_bytes() >= 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_sizes() {
        let _ = Local::new(5000);
    }
}
