//! The YAGS predictor (related-work ablation).

use crate::counter::SaturatingCounter;
use crate::history::HistoryRegister;
use crate::table::{fold_tag, pack_entry, PredictionTable, COUNTER_MASK, TAG_SHIFT, VALID};
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent};

/// Eden & Mudge's *Yet Another Global Scheme* — a tagged refinement of
/// bi-mode used here as an extra alias-reduction baseline.
///
/// A PC-indexed bimodal **choice** table supplies the default direction. Two
/// small tagged **exception caches** (a taken-cache and a not-taken-cache)
/// store only the branches that *deviate* from their choice-table direction:
/// when the choice says taken, the not-taken cache is probed for an
/// exception, and vice versa. Tags (partial, 8-bit) make the caches
/// conflict-evident, so aliasing mostly turns into capacity misses instead
/// of silent corruption.
///
/// Storage split of the byte budget: half to the choice table, a quarter to
/// each exception cache (whose entries cost 10 bits: 8-bit tag + 2-bit
/// counter, all counted by [`DynamicPredictor::size_bytes`]).
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, Yags};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Yags::new(2048);
/// let _ = p.predict(BranchAddr(0x5c));
/// p.update(BranchAddr(0x5c), true);
/// ```
#[derive(Debug, Clone)]
pub struct Yags {
    choice: PredictionTable,
    taken_cache: ExceptionCache,
    not_taken_cache: ExceptionCache,
    history: HistoryRegister,
    latched: Option<Latched<Ctx>>,
}

/// A direct-mapped tagged cache of 2-bit exception counters.
#[derive(Debug, Clone)]
struct ExceptionCache {
    tags: Vec<Option<u8>>,
    counters: Vec<SaturatingCounter>,
    collisions: u64,
}

impl ExceptionCache {
    fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "cache entries must be 2^k");
        Self {
            tags: vec![None; entries],
            counters: vec![SaturatingCounter::two_bit(); entries],
            collisions: 0,
        }
    }

    fn index_mask(&self) -> u64 {
        self.tags.len() as u64 - 1
    }

    /// Probes the cache; on a tag hit returns the counter's direction.
    fn probe(&self, index: u64, tag: u8) -> Option<bool> {
        let i = index as usize;
        (self.tags[i] == Some(tag)).then(|| self.counters[i].predict_taken())
    }

    /// Trains a hit entry.
    fn train(&mut self, index: u64, taken: bool) {
        self.counters[index as usize].train(taken);
    }

    /// Allocates (replaces) an entry for `tag`, counting displacement of a
    /// different branch as a collision, and initializes the counter weakly
    /// toward `taken`.
    fn allocate(&mut self, index: u64, tag: u8, taken: bool) {
        let i = index as usize;
        if let Some(prev) = self.tags[i] {
            if prev != tag {
                self.collisions += 1;
            }
        }
        self.tags[i] = Some(tag);
        self.counters[i].reset_toward(taken);
    }

    /// Storage: 8-bit tag + 2-bit counter per entry.
    fn size_bytes(&self) -> usize {
        (self.tags.len() * 10).div_ceil(8)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    choice_index: u64,
    choice_taken: bool,
    cache_index: u64,
    tag: u8,
    cache_hit: Option<bool>,
    final_pred: bool,
}

impl Yags {
    /// Creates a YAGS predictor with roughly a `size_bytes` budget (choice
    /// table uses half of it; each exception cache holds
    /// `size_bytes * 8 / 4 / 10`-rounded-down-to-power-of-two entries).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes < 16` or not a power of two.
    pub fn new(size_bytes: usize) -> Self {
        assert!(
            size_bytes >= 16 && size_bytes.is_power_of_two(),
            "yags size {size_bytes} must be a power of two >= 16"
        );
        let choice = PredictionTable::two_bit(size_bytes / 2 * 4);
        // A quarter of the bit budget per cache, 10 bits per entry, rounded
        // down to a power of two.
        let per_cache_bits = size_bytes * 8 / 4;
        let raw_entries = (per_cache_bits / 10).max(2);
        let entries = if raw_entries.is_power_of_two() {
            raw_entries
        } else {
            raw_entries.next_power_of_two() >> 1
        };
        let taken_cache = ExceptionCache::new(entries);
        let not_taken_cache = ExceptionCache::new(entries);
        let history = HistoryRegister::new(entries.trailing_zeros().max(1));
        Self {
            choice,
            taken_cache,
            not_taken_cache,
            history,
            latched: None,
        }
    }

    fn tag_of(pc: BranchAddr) -> u8 {
        (pc.word_index() & 0xff) as u8
    }

    fn cache_index(&self, pc: BranchAddr) -> u64 {
        (pc.word_index() ^ self.history.bits(self.history.len())) & self.taken_cache.index_mask()
    }
}

impl DynamicPredictor for Yags {
    fn name(&self) -> &'static str {
        "yags"
    }

    fn size_bytes(&self) -> usize {
        self.choice.size_bytes() + self.taken_cache.size_bytes() + self.not_taken_cache.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let choice_index = pc.word_index() & self.choice.index_mask();
        let (choice_taken, choice_collision) = self.choice.lookup(choice_index, pc);
        let cache_index = self.cache_index(pc);
        let tag = Self::tag_of(pc);
        // Probe the cache of exceptions to the chosen direction.
        let cache_hit = if choice_taken {
            self.not_taken_cache.probe(cache_index, tag)
        } else {
            self.taken_cache.probe(cache_index, tag)
        };
        let final_pred = cache_hit.unwrap_or(choice_taken);
        self.latched = Some(Latched {
            pc,
            ctx: Ctx {
                choice_index,
                choice_taken,
                cache_index,
                tag,
                cache_hit,
                final_pred,
            },
        });
        Prediction {
            taken: final_pred,
            collision: choice_collision,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "yags");
        let cache = if ctx.choice_taken {
            &mut self.not_taken_cache
        } else {
            &mut self.taken_cache
        };
        if ctx.cache_hit.is_some() {
            cache.train(ctx.cache_index, taken);
        } else if taken != ctx.choice_taken {
            // The branch deviated from its choice direction: record the
            // exception.
            cache.allocate(ctx.cache_index, ctx.tag, taken);
        }
        // Choice table: bi-mode-style exception — don't punish the choice
        // when it opposed the outcome but the cache fixed it.
        let final_correct = ctx.final_pred == taken;
        let choice_opposed = ctx.choice_taken != taken;
        if !(choice_opposed && final_correct) {
            self.choice.train(ctx.choice_index, taken);
        }
        self.history.push(taken);
    }

    /// The batched hot path: the choice table's read-modify-write is fused
    /// over its raw arrays with the history and statistics in locals; the
    /// tagged exception caches, whose entries are not plain counter lanes,
    /// keep their scalar probe/train/allocate calls inside the loop. Pinned
    /// by `batch_matches_scalar_protocol` below and the crate's
    /// batch-equivalence property tests.
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        let choice_mask = self.choice.index_mask();
        let cache_mask = self.taken_cache.index_mask();
        // The register is sized to exactly the cache index width.
        let hist_len = self.history.len();
        let hist_mask = if hist_len >= 64 {
            u64::MAX
        } else {
            (1u64 << hist_len) - 1
        };
        let mut history = self.history.value();
        let mut collisions = 0u64;
        {
            let (choice_s, max) = self.choice.batch_parts();
            let taken_cache = &mut self.taken_cache;
            let not_taken_cache = &mut self.not_taken_cache;
            let half = max / 2;
            out.extend(events.iter().map(|e| {
                let w = e.pc.word_index();
                let ci = (w & choice_mask) as usize;
                let cache_index = (w ^ history) & cache_mask;
                let tag8 = (w & 0xff) as u8;
                let tag = fold_tag(e.pc);
                let entry = choice_s[ci];
                let c = entry as u8;
                let collided = (c & VALID != 0) & ((entry >> TAG_SHIFT) as u32 != tag);
                collisions += u64::from(collided);
                let v = c & COUNTER_MASK;
                let choice_taken = v > half;
                // Probe the cache of exceptions to the chosen direction.
                let cache = if choice_taken {
                    &mut *not_taken_cache
                } else {
                    &mut *taken_cache
                };
                let cache_hit = cache.probe(cache_index, tag8);
                let final_pred = cache_hit.unwrap_or(choice_taken);
                let taken = e.taken;
                if cache_hit.is_some() {
                    cache.train(cache_index, taken);
                } else if taken != choice_taken {
                    cache.allocate(cache_index, tag8, taken);
                }
                // Choice trains unless it opposed the outcome but the cache
                // fixed the prediction.
                let final_correct = final_pred == taken;
                let choice_opposed = choice_taken != taken;
                let train = u8::from(!(choice_opposed & final_correct));
                let up = u8::from(taken) & u8::from(v < max) & train;
                let down = u8::from(!taken) & u8::from(v > 0) & train;
                choice_s[ci] = pack_entry(VALID | (v + up - down), tag);
                history = ((history << 1) | u64::from(taken)) & hist_mask;
                Prediction {
                    taken: final_pred,
                    collision: collided,
                }
            }));
        }
        self.choice.add_batch_stats(events.len() as u64, collisions);
        self.history.set_bits(history);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.choice.collisions() + self.taken_cache.collisions + self.not_taken_cache.collisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut p = Yags::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..20 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn exception_cache_handles_deviating_history_contexts() {
        // A loop-exit branch: taken 7 times, then not-taken once. The choice
        // table says taken; the not-taken cache learns the exit context.
        let mut p = Yags::new(1024);
        let pc = BranchAddr(0x80);
        let mut correct = 0;
        let mut measured = 0;
        for i in 0..8000 {
            let outcome = i % 8 != 7;
            let pred = p.predict(pc);
            if i >= 6000 {
                measured += 1;
                if pred.taken == outcome {
                    correct += 1;
                }
            }
            p.update(pc, outcome);
        }
        let acc = correct as f64 / measured as f64;
        assert!(acc > 0.95, "loop-exit accuracy {acc}");
    }

    #[test]
    fn caches_store_only_exceptions() {
        let mut p = Yags::new(1024);
        let pc = BranchAddr(0x40);
        // Perfectly-taken branch: no exceptions should ever be allocated.
        for _ in 0..50 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        let allocated = p
            .not_taken_cache
            .tags
            .iter()
            .chain(p.taken_cache.tags.iter())
            .filter(|t| t.is_some())
            .count();
        // The very first outcome may deviate from the untrained choice table
        // and allocate once; after that a perfectly biased branch must never
        // touch the caches again.
        assert!(
            allocated <= 1,
            "biased branch polluted the caches with {allocated} entries"
        );
    }

    #[test]
    fn batch_matches_scalar_protocol() {
        let mut state = 0x7a65_7a65_7a65_7a65u64;
        let events: Vec<BranchEvent> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                BranchEvent::new(
                    BranchAddr((state >> 17) % 701 * 4),
                    state & (1 << 40) != 0,
                    0,
                )
            })
            .collect();
        let mut batched = Yags::new(256);
        let mut scalar = Yags::new(256);
        let mut out = Vec::new();
        let mut start = 0;
        for (k, size) in [0usize, 1, 7, 256, 3000].iter().cycle().enumerate() {
            if start >= events.len() {
                break;
            }
            let chunk = &events[start..(start + size).min(events.len())];
            start += size;
            out.clear();
            batched.predict_update_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len(), "chunk {k}");
            for (e, got) in chunk.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                assert_eq!(*got, want);
            }
            assert_eq!(batched.total_collisions(), scalar.total_collisions());
            assert_eq!(batched.history.value(), scalar.history.value());
            assert_eq!(batched.taken_cache.tags, scalar.taken_cache.tags);
            assert_eq!(batched.not_taken_cache.tags, scalar.not_taken_cache.tags);
        }
        assert_eq!(batched.choice.lookups(), scalar.choice.lookups());
    }

    #[test]
    fn displacement_counts_as_collision() {
        let mut c = ExceptionCache::new(4);
        c.allocate(1, 0xaa, true);
        assert_eq!(c.collisions, 0);
        c.allocate(1, 0xbb, false);
        assert_eq!(c.collisions, 1);
        c.allocate(1, 0xbb, true);
        assert_eq!(c.collisions, 1, "same tag is not a collision");
    }

    #[test]
    fn size_accounts_tags() {
        let p = Yags::new(1024);
        assert!(p.size_bytes() >= 512, "at least the choice table");
        assert!(p.size_bytes() <= 1200, "within ~budget: {}", p.size_bytes());
    }
}
