//! Symbolic GF(2) descriptions of predictor index functions.
//!
//! Every classic two-level predictor in this crate forms its table indices
//! from XORs, shifts and bit selections of the branch address and the
//! global history — functions that are *affine over GF(2)*: each output
//! index bit is the XOR of a fixed set of PC bits, a fixed set of history
//! bits, and a constant. [`IndexSpec`] captures that structure explicitly,
//! emitted by [`DynamicPredictor::index_spec`], so static analyzers
//! (the `sdbp-index-analysis` crate) can *prove* collision structure with
//! exact linear algebra — rank, null space, cosets — instead of sampling
//! [`DynamicPredictor::probe_indices`] over histories.
//!
//! The model covers the low [`MODELED_PC_BITS`] bits of the branch *word
//! index* (`pc >> 2`); every table in this crate indexes with far fewer
//! bits, so higher PC bits provably never reach an index.

use crate::traits::DynamicPredictor;
use sdbp_trace::BranchAddr;

/// How many low bits of the branch word index (`pc >> 2`) the symbolic
/// model tracks. All tables in this crate index with at most ~22 bits, so
/// 32 covers every configuration with room to spare.
pub const MODELED_PC_BITS: u32 = 32;

/// One output index bit as an XOR clause: `bit = parity(pc & pc_mask) ^
/// parity(history & hist_mask) ^ constant`, with `pc_mask` over word-index
/// bits (bit `j` is address bit `j + 2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorClause {
    /// Participating branch word-index bits.
    pub pc_mask: u64,
    /// Participating global-history bits (newest outcome in bit 0).
    pub hist_mask: u64,
    /// The affine constant term.
    pub constant: bool,
}

/// The affine index function of one predictor table (bank), stored
/// column-major: `index(pc, h) = constant ⊕ A·pc ⊕ B·h` where column `j`
/// of `A` ([`TableSpec::pc_columns`]) is the index-bit mask toggled by PC
/// word-index bit `j`, and likewise for history columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// The bank id this table reports through `probe_indices`.
    pub bank: u32,
    /// The index width: produced indices lie in `0..2^index_bits`.
    pub index_bits: u32,
    /// The constant term `c` — the index of `(pc = 0, history = 0)`.
    pub constant: u64,
    /// Column `j`: the index bits toggled by PC word-index bit `j`.
    /// Always [`MODELED_PC_BITS`] entries.
    pub pc_columns: Vec<u64>,
    /// Column `k`: the index bits toggled by history bit `k`. One entry
    /// per history bit the predictor consumes.
    pub hist_columns: Vec<u64>,
}

impl TableSpec {
    /// `A·pc`: the linear PC contribution for a branch word index. Word
    /// bits at or above [`MODELED_PC_BITS`] are outside the model and
    /// ignored.
    pub fn pc_image(&self, word_index: u64) -> u64 {
        let mut acc = 0u64;
        for (j, &column) in self.pc_columns.iter().enumerate() {
            if (word_index >> j) & 1 == 1 {
                acc ^= column;
            }
        }
        acc
    }

    /// `B·h`: the linear history contribution for a raw history value
    /// (newest outcome in bit 0).
    pub fn hist_image(&self, history: u64) -> u64 {
        let mut acc = 0u64;
        for (k, &column) in self.hist_columns.iter().enumerate() {
            if (history >> k) & 1 == 1 {
                acc ^= column;
            }
        }
        acc
    }

    /// The full index `constant ⊕ A·pc ⊕ B·h` for a branch word index and
    /// raw history value.
    pub fn evaluate(&self, word_index: u64, history: u64) -> u64 {
        self.constant ^ self.pc_image(word_index) ^ self.hist_image(history)
    }

    /// The row view of output index bit `bit` as an [`XorClause`] — the
    /// transpose of the stored columns.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not below [`TableSpec::index_bits`].
    pub fn clause(&self, bit: u32) -> XorClause {
        assert!(
            bit < self.index_bits,
            "bit {bit} outside {}",
            self.index_bits
        );
        let mut pc_mask = 0u64;
        for (j, &column) in self.pc_columns.iter().enumerate() {
            pc_mask |= ((column >> bit) & 1) << j;
        }
        let mut hist_mask = 0u64;
        for (k, &column) in self.hist_columns.iter().enumerate() {
            hist_mask |= ((column >> bit) & 1) << k;
        }
        XorClause {
            pc_mask,
            hist_mask,
            constant: (self.constant >> bit) & 1 == 1,
        }
    }
}

/// The symbolic index function of a whole predictor: one [`TableSpec`] per
/// probed bank, in `probe_indices` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// The predictor's consumed history length
    /// ([`DynamicPredictor::history_bits`]).
    pub history_bits: u32,
    /// One affine table description per probed bank.
    pub tables: Vec<TableSpec>,
}

impl IndexSpec {
    /// Evaluates the symbolic model, appending one `(bank, index)` pair per
    /// table exactly like [`DynamicPredictor::probe_indices`] (the proptest
    /// suite pins the two equal over arbitrary inputs).
    pub fn evaluate(&self, pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) {
        let word_index = pc.word_index();
        for table in &self.tables {
            out.push((table.bank, table.evaluate(word_index, history)));
        }
    }

    /// Derives the symbolic model of an affine predictor by basis probing:
    /// the constant is the probe of `(pc = 0, history = 0)` and each matrix
    /// column is the XOR of a one-hot probe against it. `index_widths`
    /// gives the index width of each probed bank, in bank order.
    ///
    /// Only sound for predictors whose index functions *are* affine in the
    /// PC/history bits — which the caller (each `index_spec` override)
    /// guarantees and the crate's property tests verify at random points.
    ///
    /// # Panics
    ///
    /// Panics if the predictor does not support `probe_indices`, probes a
    /// different number of banks than `index_widths` describes, numbers its
    /// banks non-contiguously, or produces an index outside a declared
    /// width.
    pub fn from_linear_probe(predictor: &dyn DynamicPredictor, index_widths: &[u32]) -> Self {
        let base = probe_one(predictor, BranchAddr(0), 0, index_widths.len());
        let mut tables: Vec<TableSpec> = index_widths
            .iter()
            .zip(&base)
            .enumerate()
            .map(|(bank, (&index_bits, &constant))| TableSpec {
                bank: bank as u32,
                index_bits,
                constant,
                pc_columns: Vec::with_capacity(MODELED_PC_BITS as usize),
                hist_columns: Vec::new(),
            })
            .collect();
        for j in 0..MODELED_PC_BITS {
            let probed = probe_one(predictor, BranchAddr(1u64 << (j + 2)), 0, tables.len());
            for (table, (&index, &constant)) in tables.iter_mut().zip(probed.iter().zip(&base)) {
                table.pc_columns.push(index ^ constant);
            }
        }
        let history_bits = predictor.history_bits();
        for k in 0..history_bits {
            let probed = probe_one(predictor, BranchAddr(0), 1u64 << k, tables.len());
            for (table, (&index, &constant)) in tables.iter_mut().zip(probed.iter().zip(&base)) {
                table.hist_columns.push(index ^ constant);
            }
        }
        for table in &tables {
            let mask = if table.index_bits >= 64 {
                u64::MAX
            } else {
                (1u64 << table.index_bits) - 1
            };
            assert!(
                table.constant & !mask == 0
                    && table.pc_columns.iter().all(|c| c & !mask == 0)
                    && table.hist_columns.iter().all(|c| c & !mask == 0),
                "bank {} probes outside its declared {}-bit width",
                table.bank,
                table.index_bits
            );
        }
        Self {
            history_bits,
            tables,
        }
    }
}

/// One probe returning just the indices, after checking the bank layout:
/// `expected` banks, numbered contiguously from 0.
fn probe_one(
    predictor: &dyn DynamicPredictor,
    pc: BranchAddr,
    history: u64,
    expected: usize,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(expected);
    assert!(
        predictor.probe_indices(pc, history, &mut out),
        "{}: index_spec requires probe_indices support",
        predictor.name()
    );
    assert_eq!(
        out.len(),
        expected,
        "{}: probed {} banks, expected {expected}",
        predictor.name(),
        out.len()
    );
    for (position, &(bank, _)) in out.iter().enumerate() {
        assert_eq!(
            bank,
            position as u32,
            "{}: bank ids must be contiguous from 0",
            predictor.name()
        );
    }
    out.into_iter().map(|(_, index)| index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bimodal, Gselect, Gshare};

    #[test]
    fn gshare_spec_matches_probes_pointwise() {
        let p = Gshare::new(1024); // 12 index bits, 12-bit history
        let spec = p.index_spec().unwrap();
        assert_eq!(spec.history_bits, 12);
        assert_eq!(spec.tables.len(), 1);
        for (pc, history) in [(0u64, 0u64), (0x1234 & !3, 0xabc), (0xfffc, 0xfff)] {
            let mut probed = Vec::new();
            assert!(p.probe_indices(BranchAddr(pc), history, &mut probed));
            let mut symbolic = Vec::new();
            spec.evaluate(BranchAddr(pc), history, &mut symbolic);
            assert_eq!(probed, symbolic, "pc={pc:#x} history={history:#x}");
        }
    }

    #[test]
    fn gselect_clauses_transpose_the_concatenation() {
        // 256 counters: index = 4 PC word bits ∥ 4 history bits, so bit 0
        // is history bit 0 alone and bit 4 is PC word bit 0 alone.
        let spec = Gselect::new(64).index_spec().unwrap();
        let table = &spec.tables[0];
        assert_eq!(
            table.clause(0),
            XorClause {
                pc_mask: 0,
                hist_mask: 1,
                constant: false
            }
        );
        assert_eq!(
            table.clause(4),
            XorClause {
                pc_mask: 1,
                hist_mask: 0,
                constant: false
            }
        );
    }

    #[test]
    fn bimodal_spec_is_history_free() {
        let spec = Bimodal::new(64).index_spec().unwrap();
        assert_eq!(spec.history_bits, 0);
        assert!(spec.tables[0].hist_columns.is_empty());
        // The low 8 word bits each map to their own index bit; the rest die.
        for (j, &column) in spec.tables[0].pc_columns.iter().enumerate() {
            let expected = if j < 8 { 1u64 << j } else { 0 };
            assert_eq!(column, expected, "word bit {j}");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn clause_rejects_out_of_range_bits() {
        let spec = Bimodal::new(64).index_spec().unwrap();
        let _ = spec.tables[0].clause(8);
    }
}
