//! The bi-mode hybrid predictor.

use crate::history::HistoryRegister;
use crate::table::PredictionTable;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::BranchAddr;

/// The bi-mode predictor (Lee, Chen & Mudge).
///
/// Destructive aliasing is worst when a mostly-taken branch shares a counter
/// with a mostly-not-taken branch. Bi-mode channels the two populations into
/// **separate gshare direction tables**: a bimodal *choice* table (indexed by
/// PC) picks which direction table predicts, so branches sharing a direction
/// table tend to agree and collisions become constructive.
///
/// Storage split: half the counter budget goes to the choice table, one
/// quarter to each direction table. Direction tables use as many global
/// history bits as their index width (the configuration the paper simulated).
///
/// Update is partial, as in the paper:
/// * only the *selected* direction table is trained;
/// * the choice table is trained with the outcome **except** when its choice
///   opposed the outcome and the selected direction table still predicted
///   correctly (that exception preserves a useful channeling).
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{BiMode, DynamicPredictor};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = BiMode::new(4096);
/// assert_eq!(p.size_bytes(), 4096);
/// let _ = p.predict(BranchAddr(0x44));
/// p.update(BranchAddr(0x44), true);
/// ```
#[derive(Debug, Clone)]
pub struct BiMode {
    choice: PredictionTable,
    taken_bank: PredictionTable,
    not_taken_bank: PredictionTable,
    history: HistoryRegister,
    latched: Option<Latched<BiModeCtx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BiModeCtx {
    choice_index: u64,
    choice_taken: bool,
    dir_index: u64,
    dir_taken: bool,
}

impl BiMode {
    /// Creates a bi-mode predictor with a `size_bytes` counter budget.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is smaller than 2 bytes or not a power of two
    /// (each of the four storage quarters must be a power-of-two table).
    pub fn new(size_bytes: usize) -> Self {
        assert!(
            size_bytes >= 2 && size_bytes.is_power_of_two(),
            "bi-mode size {size_bytes} must be a power of two >= 2"
        );
        let counters = size_bytes * 4;
        let choice = PredictionTable::two_bit(counters / 2);
        let taken_bank = PredictionTable::two_bit(counters / 4);
        let not_taken_bank = PredictionTable::two_bit(counters / 4);
        let history = HistoryRegister::new(taken_bank.index_bits());
        Self {
            choice,
            taken_bank,
            not_taken_bank,
            history,
            latched: None,
        }
    }

    fn choice_index(&self, pc: BranchAddr) -> u64 {
        pc.word_index() & self.choice.index_mask()
    }

    fn direction_index(&self, pc: BranchAddr) -> u64 {
        (pc.word_index() ^ self.history.bits(self.taken_bank.index_bits()))
            & self.taken_bank.index_mask()
    }
}

impl DynamicPredictor for BiMode {
    fn name(&self) -> &'static str {
        "bi-mode"
    }

    fn size_bytes(&self) -> usize {
        self.choice.size_bytes() + self.taken_bank.size_bytes() + self.not_taken_bank.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let choice_index = self.choice_index(pc);
        let (choice_taken, choice_collision) = self.choice.lookup(choice_index, pc);
        let dir_index = self.direction_index(pc);
        let bank = if choice_taken {
            &mut self.taken_bank
        } else {
            &mut self.not_taken_bank
        };
        let (dir_taken, dir_collision) = bank.lookup(dir_index, pc);
        self.latched = Some(Latched {
            pc,
            ctx: BiModeCtx {
                choice_index,
                choice_taken,
                dir_index,
                dir_taken,
            },
        });
        Prediction {
            taken: dir_taken,
            collision: choice_collision || dir_collision,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "bi-mode");
        // Partial update: only the selected direction bank trains.
        let bank = if ctx.choice_taken {
            &mut self.taken_bank
        } else {
            &mut self.not_taken_bank
        };
        bank.train(ctx.dir_index, taken);
        // Choice trains except when it opposed the outcome but the selected
        // bank still got it right.
        let final_correct = ctx.dir_taken == taken;
        let choice_opposed = ctx.choice_taken != taken;
        if !(choice_opposed && final_correct) {
            self.choice.train(ctx.choice_index, taken);
        }
        self.history.push(taken);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.choice.collisions() + self.taken_bank.collisions() + self.not_taken_bank.collisions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_split_is_half_quarter_quarter() {
        let p = BiMode::new(4096);
        assert_eq!(p.choice.size_bytes(), 2048);
        assert_eq!(p.taken_bank.size_bytes(), 1024);
        assert_eq!(p.not_taken_bank.size_bytes(), 1024);
        assert_eq!(p.size_bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = BiMode::new(3000);
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = BiMode::new(1024);
        let pc = BranchAddr(0x80);
        for _ in 0..20 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn learns_history_patterns() {
        let mut p = BiMode::new(1024);
        let pc = BranchAddr(0x80);
        let pattern = [true, true, false, false];
        let mut correct = 0;
        for i in 0..4000 {
            let outcome = pattern[i % pattern.len()];
            let pred = p.predict(pc);
            if i >= 3000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(
            correct as f64 / 1000.0 > 0.95,
            "accuracy {}",
            correct as f64 / 1000.0
        );
    }

    #[test]
    fn opposite_bias_branches_coexist() {
        // The signature bi-mode win: one mostly-taken and one mostly-not-taken
        // branch that would fight over a shared gshare counter get channeled
        // into different banks.
        let mut p = BiMode::new(256);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x104);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000 {
            let pa = p.predict(a);
            if i >= 500 {
                total += 1;
                if pa.taken {
                    correct += 1;
                }
            }
            p.update(a, true);
            let pb = p.predict(b);
            if i >= 500 {
                total += 1;
                if !pb.taken {
                    correct += 1;
                }
            }
            p.update(b, false);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.97, "bi-mode channeling accuracy {acc}");
    }

    #[test]
    fn choice_update_exception_preserves_channeling() {
        let mut p = BiMode::new(256);
        let pc = BranchAddr(0x40);
        // Train the choice strongly toward taken.
        for _ in 0..8 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        let choice_idx = p.choice_index(pc);
        let strong = p.choice.counter(choice_idx).value();
        // Now feed not-taken outcomes that the taken-bank learns to predict
        // correctly; once it does, the choice must stop being degraded.
        for _ in 0..20 {
            let _ = p.predict(pc);
            p.update(pc, false);
        }
        let after = p.choice.counter(choice_idx).value();
        // The choice was pushed down at most a couple of steps while the
        // direction bank was still wrong, then held.
        assert!(after >= 1, "choice collapsed from {strong} to {after}");
    }

    #[test]
    fn collisions_accumulate_across_banks() {
        let mut p = BiMode::new(64);
        for i in 0..200u64 {
            let pc = BranchAddr(i * 64);
            let _ = p.predict(pc);
            p.update(pc, i % 2 == 0);
        }
        assert!(p.total_collisions() > 0);
    }
}
