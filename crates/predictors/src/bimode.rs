//! The bi-mode hybrid predictor.

use crate::history::HistoryRegister;
use crate::table::{fold_tag, pack_entry, swar, PredictionTable, COUNTER_MASK, TAG_SHIFT, VALID};
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent};

/// The bi-mode predictor (Lee, Chen & Mudge).
///
/// Destructive aliasing is worst when a mostly-taken branch shares a counter
/// with a mostly-not-taken branch. Bi-mode channels the two populations into
/// **separate gshare direction tables**: a bimodal *choice* table (indexed by
/// PC) picks which direction table predicts, so branches sharing a direction
/// table tend to agree and collisions become constructive.
///
/// Storage split: half the counter budget goes to the choice table, one
/// quarter to each direction table. Direction tables use as many global
/// history bits as their index width (the configuration the paper simulated).
///
/// Update is partial, as in the paper:
/// * only the *selected* direction table is trained;
/// * the choice table is trained with the outcome **except** when its choice
///   opposed the outcome and the selected direction table still predicted
///   correctly (that exception preserves a useful channeling).
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{BiMode, DynamicPredictor};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = BiMode::new(4096);
/// assert_eq!(p.size_bytes(), 4096);
/// let _ = p.predict(BranchAddr(0x44));
/// p.update(BranchAddr(0x44), true);
/// ```
#[derive(Debug, Clone)]
pub struct BiMode {
    choice: PredictionTable,
    taken_bank: PredictionTable,
    not_taken_bank: PredictionTable,
    history: HistoryRegister,
    latched: Option<Latched<BiModeCtx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BiModeCtx {
    choice_index: u64,
    choice_taken: bool,
    dir_index: u64,
    dir_taken: bool,
}

impl BiMode {
    /// Creates a bi-mode predictor with a `size_bytes` counter budget.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is smaller than 2 bytes or not a power of two
    /// (each of the four storage quarters must be a power-of-two table).
    pub fn new(size_bytes: usize) -> Self {
        assert!(
            size_bytes >= 2 && size_bytes.is_power_of_two(),
            "bi-mode size {size_bytes} must be a power of two >= 2"
        );
        let counters = size_bytes * 4;
        let choice = PredictionTable::two_bit(counters / 2);
        let taken_bank = PredictionTable::two_bit(counters / 4);
        let not_taken_bank = PredictionTable::two_bit(counters / 4);
        let history = HistoryRegister::new(taken_bank.index_bits());
        Self {
            choice,
            taken_bank,
            not_taken_bank,
            history,
            latched: None,
        }
    }

    fn choice_index(&self, pc: BranchAddr) -> u64 {
        pc.word_index() & self.choice.index_mask()
    }

    fn direction_index(&self, pc: BranchAddr) -> u64 {
        (pc.word_index() ^ self.history.bits(self.taken_bank.index_bits()))
            & self.taken_bank.index_mask()
    }
}

impl DynamicPredictor for BiMode {
    fn name(&self) -> &'static str {
        "bi-mode"
    }

    fn size_bytes(&self) -> usize {
        self.choice.size_bytes() + self.taken_bank.size_bytes() + self.not_taken_bank.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let choice_index = self.choice_index(pc);
        let (choice_taken, choice_collision) = self.choice.lookup(choice_index, pc);
        let dir_index = self.direction_index(pc);
        let bank = if choice_taken {
            &mut self.taken_bank
        } else {
            &mut self.not_taken_bank
        };
        let (dir_taken, dir_collision) = bank.lookup(dir_index, pc);
        self.latched = Some(Latched {
            pc,
            ctx: BiModeCtx {
                choice_index,
                choice_taken,
                dir_index,
                dir_taken,
            },
        });
        Prediction {
            taken: dir_taken,
            collision: choice_collision || dir_collision,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "bi-mode");
        // Partial update: only the selected direction bank trains.
        let bank = if ctx.choice_taken {
            &mut self.taken_bank
        } else {
            &mut self.not_taken_bank
        };
        bank.train(ctx.dir_index, taken);
        // Choice trains except when it opposed the outcome but the selected
        // bank still got it right.
        let final_correct = ctx.dir_taken == taken;
        let choice_opposed = ctx.choice_taken != taken;
        if !(choice_opposed && final_correct) {
            self.choice.train(ctx.choice_index, taken);
        }
        self.history.push(taken);
    }

    /// The batched hot path: per event, the choice byte and the *selected*
    /// direction byte are gathered into two SWAR lanes, thresholded and
    /// saturated in one pass, and scattered back. The unselected bank stays
    /// completely untouched (counters, tags and statistics), exactly as in
    /// the scalar protocol. Pinned by `batch_matches_scalar_protocol` below
    /// and the crate's batch-equivalence property tests.
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        let choice_mask = self.choice.index_mask();
        let dir_mask = self.taken_bank.index_mask();
        // The register is sized to exactly the direction index width, so its
        // raw value is the full history ingredient.
        let hist_len = self.history.len();
        let hist_mask = if hist_len >= 64 {
            u64::MAX
        } else {
            (1u64 << hist_len) - 1
        };
        let mut history = self.history.value();
        let mut choice_collisions = 0u64;
        // Direction-bank statistics, indexed by the selection bit
        // (`[not-taken, taken]`): only the selected bank's lookup counts.
        let mut dir_lookups = [0u64; 2];
        let mut dir_collisions = [0u64; 2];
        {
            let (choice_s, max) = self.choice.batch_parts();
            let (tk_s, _) = self.taken_bank.batch_parts();
            let (nt_s, _) = self.not_taken_bank.batch_parts();
            let half = max / 2;
            let max_splat = swar::splat(max);
            out.extend(events.iter().map(|e| {
                let w = e.pc.word_index();
                let ci = (w & choice_mask) as usize;
                let di = ((w ^ history) & dir_mask) as usize;
                let tag = fold_tag(e.pc);
                let ce = choice_s[ci];
                let cc = ce as u8;
                let choice_collided = (cc & VALID != 0) & ((ce >> TAG_SHIFT) as u32 != tag);
                choice_collisions += u64::from(choice_collided);
                let choice_taken = cc & COUNTER_MASK > half;
                let sel = usize::from(choice_taken);
                let bank_s = if choice_taken { &mut *tk_s } else { &mut *nt_s };
                let de = bank_s[di];
                let dc = de as u8;
                let dir_collided = (dc & VALID != 0) & ((de >> TAG_SHIFT) as u32 != tag);
                dir_collisions[sel] += u64::from(dir_collided);
                dir_lookups[sel] += 1;
                let dir_taken = dc & COUNTER_MASK > half;
                let taken = e.taken;
                // Choice trains except when it opposed the outcome but the
                // selected bank still got it right; the direction lane
                // always trains.
                let final_correct = dir_taken == taken;
                let choice_opposed = choice_taken != taken;
                let train_choice = !(choice_opposed & final_correct);
                // SWAR lanes: [0] = choice, [1] = selected direction bank.
                let v = u64::from(cc & COUNTER_MASK) | u64::from(dc & COUNTER_MASK) << 8;
                let taken_lanes = u64::from(taken) * 0x0101;
                let enable = u64::from(train_choice) | 0x0100;
                let stepped = swar::step(v, taken_lanes, enable, max_splat);
                choice_s[ci] = pack_entry(VALID | (stepped as u8), tag);
                bank_s[di] = pack_entry(VALID | ((stepped >> 8) as u8), tag);
                history = ((history << 1) | u64::from(taken)) & hist_mask;
                Prediction {
                    taken: dir_taken,
                    collision: choice_collided | dir_collided,
                }
            }));
        }
        self.choice
            .add_batch_stats(events.len() as u64, choice_collisions);
        self.taken_bank
            .add_batch_stats(dir_lookups[1], dir_collisions[1]);
        self.not_taken_bank
            .add_batch_stats(dir_lookups[0], dir_collisions[0]);
        self.history.set_bits(history);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.choice.collisions() + self.taken_bank.collisions() + self.not_taken_bank.collisions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_split_is_half_quarter_quarter() {
        let p = BiMode::new(4096);
        assert_eq!(p.choice.size_bytes(), 2048);
        assert_eq!(p.taken_bank.size_bytes(), 1024);
        assert_eq!(p.not_taken_bank.size_bytes(), 1024);
        assert_eq!(p.size_bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = BiMode::new(3000);
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = BiMode::new(1024);
        let pc = BranchAddr(0x80);
        for _ in 0..20 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn learns_history_patterns() {
        let mut p = BiMode::new(1024);
        let pc = BranchAddr(0x80);
        let pattern = [true, true, false, false];
        let mut correct = 0;
        for i in 0..4000 {
            let outcome = pattern[i % pattern.len()];
            let pred = p.predict(pc);
            if i >= 3000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(
            correct as f64 / 1000.0 > 0.95,
            "accuracy {}",
            correct as f64 / 1000.0
        );
    }

    #[test]
    fn opposite_bias_branches_coexist() {
        // The signature bi-mode win: one mostly-taken and one mostly-not-taken
        // branch that would fight over a shared gshare counter get channeled
        // into different banks.
        let mut p = BiMode::new(256);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x104);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000 {
            let pa = p.predict(a);
            if i >= 500 {
                total += 1;
                if pa.taken {
                    correct += 1;
                }
            }
            p.update(a, true);
            let pb = p.predict(b);
            if i >= 500 {
                total += 1;
                if !pb.taken {
                    correct += 1;
                }
            }
            p.update(b, false);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.97, "bi-mode channeling accuracy {acc}");
    }

    #[test]
    fn choice_update_exception_preserves_channeling() {
        let mut p = BiMode::new(256);
        let pc = BranchAddr(0x40);
        // Train the choice strongly toward taken.
        for _ in 0..8 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        let choice_idx = p.choice_index(pc);
        let strong = p.choice.counter(choice_idx).value();
        // Now feed not-taken outcomes that the taken-bank learns to predict
        // correctly; once it does, the choice must stop being degraded.
        for _ in 0..20 {
            let _ = p.predict(pc);
            p.update(pc, false);
        }
        let after = p.choice.counter(choice_idx).value();
        // The choice was pushed down at most a couple of steps while the
        // direction bank was still wrong, then held.
        assert!(after >= 1, "choice collapsed from {strong} to {after}");
    }

    #[test]
    fn batch_matches_scalar_protocol() {
        // The SWAR batch loop against the predict/update protocol, event for
        // event, across batch sizes covering empty, single-event and
        // multi-event calls.
        let mut state = 0xfeed_face_cafe_beefu64;
        let events: Vec<BranchEvent> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                BranchEvent::new(
                    BranchAddr((state >> 17) % 701 * 4),
                    state & (1 << 40) != 0,
                    0,
                )
            })
            .collect();
        let mut batched = BiMode::new(256);
        let mut scalar = BiMode::new(256);
        let mut out = Vec::new();
        let mut start = 0;
        for (k, size) in [0usize, 1, 7, 256, 3000].iter().cycle().enumerate() {
            if start >= events.len() {
                break;
            }
            let chunk = &events[start..(start + size).min(events.len())];
            start += size;
            out.clear();
            batched.predict_update_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len(), "chunk {k}");
            for (e, got) in chunk.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                assert_eq!(*got, want);
            }
            assert_eq!(batched.total_collisions(), scalar.total_collisions());
            assert_eq!(batched.history.value(), scalar.history.value());
        }
        for (b, s) in [
            (&batched.choice, &scalar.choice),
            (&batched.taken_bank, &scalar.taken_bank),
            (&batched.not_taken_bank, &scalar.not_taken_bank),
        ] {
            assert_eq!(b.lookups(), s.lookups());
            assert_eq!(b.collisions(), s.collisions());
        }
    }

    #[test]
    fn collisions_accumulate_across_banks() {
        let mut p = BiMode::new(64);
        for i in 0..200u64 {
            let pc = BranchAddr(i * 64);
            let _ = p.predict(pc);
            p.update(pc, i % 2 == 0);
        }
        assert!(p.total_collisions() > 0);
    }
}
