//! The gshare predictor.

use crate::history::HistoryRegister;
use crate::index_spec::IndexSpec;
use crate::table::{fold_tag, pack_entry, PredictionTable, COUNTER_MASK, TAG_SHIFT, VALID};
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent};

/// McFarling's gshare: index = branch address ⊕ global history.
///
/// XORing the PC into the history index spreads different branches with the
/// same recent history across the table, capturing some of bimodal's
/// per-branch separation while keeping ghist's correlation power. It remains
/// alias-prone — the base predictor of the paper's Figures 1–6 size sweeps.
///
/// The history length defaults to the full index width; use
/// [`Gshare::with_history_len`] for the shorter tuned histories some
/// configurations prefer (shorter histories trade correlation reach for less
/// aliasing pressure).
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, Gshare};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Gshare::with_history_len(16 * 1024, 12); // 16 KB, 12-bit history
/// let _ = p.predict(BranchAddr(0xbeef0));
/// p.update(BranchAddr(0xbeef0), false);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: PredictionTable,
    history: HistoryRegister,
    history_len: u32,
    latched: Option<Latched<u64>>,
}

impl Gshare {
    /// The default history cap: beyond this length, extra history dilutes
    /// contexts faster than it adds correlation on the SPECINT-like
    /// workloads this crate is calibrated against. The paper makes the same
    /// observation ("the best value of history length varies with hardware
    /// table sizes and with programs") and selected good lengths; a sweep
    /// with [`Gshare::with_history_len`] reproduces the effect.
    pub const DEFAULT_MAX_HISTORY: u32 = 12;

    /// Creates a gshare with history length equal to the index width, capped
    /// at [`Gshare::DEFAULT_MAX_HISTORY`] bits.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two.
    pub fn new(size_bytes: usize) -> Self {
        let table = PredictionTable::two_bit(size_bytes * 4);
        let bits = table.index_bits().min(Self::DEFAULT_MAX_HISTORY);
        Self::build(table, bits)
    }

    /// Creates a gshare with an explicit history length.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two, or if `history_len` is
    /// zero or exceeds the table index width.
    pub fn with_history_len(size_bytes: usize, history_len: u32) -> Self {
        let table = PredictionTable::two_bit(size_bytes * 4);
        assert!(
            history_len >= 1 && history_len <= table.index_bits(),
            "history length {history_len} outside 1..={}",
            table.index_bits()
        );
        Self::build(table, history_len)
    }

    fn build(table: PredictionTable, history_len: u32) -> Self {
        Self {
            history: HistoryRegister::new(history_len),
            history_len,
            table,
            latched: None,
        }
    }

    /// The configured history length in bits.
    pub fn history_len(&self) -> u32 {
        self.history_len
    }

    fn index(&self, pc: BranchAddr) -> u64 {
        self.index_for(pc, self.history.bits(self.history_len))
    }

    /// The table index for `pc` under a given raw history value — the pure
    /// form of the index function, shared by [`DynamicPredictor::predict`]
    /// and [`DynamicPredictor::probe_indices`].
    fn index_for(&self, pc: BranchAddr, history: u64) -> u64 {
        let hist_mask = if self.history_len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.history_len) - 1
        };
        (pc.word_index() ^ (history & hist_mask)) & self.table.index_mask()
    }
}

impl DynamicPredictor for Gshare {
    fn name(&self) -> &'static str {
        "gshare"
    }

    fn size_bytes(&self) -> usize {
        self.table.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let index = self.index(pc);
        let (taken, collision) = self.table.lookup(index, pc);
        self.latched = Some(Latched { pc, ctx: index });
        Prediction { taken, collision }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let index = Latched::take_for(&mut self.latched, pc, "gshare");
        self.table.train(index, taken);
        self.history.push(taken);
        debug_assert_eq!(self.history.len(), self.history_len);
    }

    #[inline]
    fn predict_update(&mut self, pc: BranchAddr, taken: bool) -> Prediction {
        let index = self.index(pc);
        let (predicted, collision) = self.table.lookup_train(index, pc, taken);
        self.history.push(taken);
        Prediction {
            taken: predicted,
            collision,
        }
    }

    /// The batched hot path: the whole `lookup_train` body inlined over the
    /// table's interleaved slots, with the history register, masks and
    /// statistics in locals for the batch. Observable behavior is pinned to the scalar
    /// protocol by `batch_matches_scalar_protocol` below and the lockstep
    /// property tests.
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        let index_mask = self.table.index_mask();
        // Equals the history register's own length mask: `build` sizes the
        // register to exactly `history_len` bits.
        let hist_mask = if self.history_len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.history_len) - 1
        };
        let mut history = self.history.value();
        let mut collisions = 0u64;
        {
            let (slots, max) = self.table.batch_parts();
            let half = max / 2;
            // `extend` over a `TrustedLen` iterator: one reservation for the
            // whole batch, no per-event capacity check.
            out.extend(events.iter().map(|e| {
                let i = ((e.pc.word_index() ^ history) & index_mask) as usize;
                let tag = fold_tag(e.pc);
                let entry = slots[i];
                let c = entry as u8;
                let collided = (c & VALID != 0) & ((entry >> TAG_SHIFT) as u32 != tag);
                collisions += u64::from(collided);
                let v = c & COUNTER_MASK;
                let taken = e.taken;
                let up = u8::from(taken) & u8::from(v < max);
                let down = u8::from(!taken) & u8::from(v > 0);
                slots[i] = pack_entry(VALID | (v + up - down), tag);
                history = ((history << 1) | u64::from(taken)) & hist_mask;
                Prediction {
                    taken: v > half,
                    collision: collided,
                }
            }));
        }
        self.table.add_batch_stats(events.len() as u64, collisions);
        self.history.set_bits(history);
    }

    fn shift_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.table.collisions()
    }

    fn history_bits(&self) -> u32 {
        self.history_len
    }

    fn probe_indices(&self, pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        out.push((0, self.index_for(pc, history)));
        true
    }

    fn index_spec(&self) -> Option<IndexSpec> {
        Some(IndexSpec::from_linear_probe(
            self,
            &[self.table.index_bits()],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut p = Gshare::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..50 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn learns_history_patterns() {
        let mut p = Gshare::new(1024);
        let pc = BranchAddr(0x40);
        let pattern = [true, true, false];
        let mut correct = 0;
        for i in 0..3000 {
            let outcome = pattern[i % 3];
            let pred = p.predict(pc);
            if i >= 2000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(correct as f64 / 1000.0 > 0.99);
    }

    #[test]
    fn pc_separates_branches_with_identical_history() {
        // Same interleaving as the ghist aliasing test; gshare's PC term
        // should place the two branches in different entries most of the
        // time.
        let mut p = Gshare::new(1024);
        let a = BranchAddr(0x100);
        let b = BranchAddr(0x900);
        let mut a_correct = 0;
        let mut b_correct = 0;
        for i in 0..500 {
            let pa = p.predict(a);
            if i >= 100 && pa.taken {
                a_correct += 1;
            }
            p.update(a, true);
            let pb = p.predict(b);
            if i >= 100 && !pb.taken {
                b_correct += 1;
            }
            p.update(b, false);
        }
        assert!(
            a_correct > 390 && b_correct > 390,
            "{a_correct} {b_correct}"
        );
    }

    #[test]
    fn short_history_configuration_is_respected() {
        let p = Gshare::with_history_len(4096, 6);
        assert_eq!(p.history_len(), 6);
        assert_eq!(p.table.index_bits(), 14);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_history_rejected() {
        let _ = Gshare::with_history_len(64, 20); // 256 counters => 8 index bits
    }

    #[test]
    fn probe_indices_match_the_live_index_function() {
        let mut p = Gshare::new(1024);
        for bit in [true, false, true, true, false] {
            p.shift_history(bit);
        }
        let pc = BranchAddr(0x123c);
        let mut probes = Vec::new();
        assert!(p.probe_indices(pc, p.history.value(), &mut probes));
        assert_eq!(probes, vec![(0, p.index(pc))]);
        assert_eq!(p.history_bits(), p.history_len());
    }

    #[test]
    fn batch_matches_scalar_protocol() {
        // The hand-hoisted batch loop against the predict/update protocol,
        // event for event, across batch sizes that cover empty, single-event
        // and multi-event calls.
        let mut state = 0xfeed_face_cafe_beefu64;
        let events: Vec<BranchEvent> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                BranchEvent::new(
                    BranchAddr((state >> 17) % 701 * 4),
                    state & (1 << 40) != 0,
                    0,
                )
            })
            .collect();
        let mut batched = Gshare::new(1024);
        let mut scalar = Gshare::new(1024);
        let mut out = Vec::new();
        let mut start = 0;
        for (k, size) in [0usize, 1, 7, 256, 3000].iter().cycle().enumerate() {
            if start >= events.len() {
                break;
            }
            let chunk = &events[start..(start + size).min(events.len())];
            start += size;
            out.clear();
            batched.predict_update_batch(chunk, &mut out);
            assert_eq!(out.len(), chunk.len(), "chunk {k}");
            for (e, got) in chunk.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                assert_eq!(*got, want);
            }
            assert_eq!(batched.total_collisions(), scalar.total_collisions());
            assert_eq!(batched.history.value(), scalar.history.value());
        }
        assert_eq!(batched.table.lookups(), scalar.table.lookups());
    }

    #[test]
    fn index_mixes_history() {
        let mut p = Gshare::new(64);
        let pc = BranchAddr(0x100);
        let i0 = p.index(pc);
        p.shift_history(true);
        let i1 = p.index(pc);
        assert_ne!(i0, i1, "history must perturb the index");
    }
}
