//! The tournament (McFarling combining) predictor.

use crate::bimodal::Bimodal;
use crate::gshare::Gshare;
use crate::table::PredictionTable;
use crate::traits::{DynamicPredictor, Latched, Prediction};
use sdbp_trace::BranchAddr;

/// McFarling's combining predictor — the scheme the Alpha 21264 shipped a
/// variant of, contemporary with the paper.
///
/// A bimodal and a gshare component predict in parallel; a PC-indexed
/// 2-bit **chooser** selects between them. Both components always train
/// (total update); the chooser trains only when the components disagree,
/// toward whichever was right.
///
/// Storage split of the byte budget: half to the gshare, a quarter to the
/// bimodal, a quarter to the chooser.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{DynamicPredictor, Tournament};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = Tournament::new(4096);
/// assert_eq!(p.size_bytes(), 4096);
/// let _ = p.predict(BranchAddr(0x10));
/// p.update(BranchAddr(0x10), true);
/// ```
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: PredictionTable,
    latched: Option<Latched<Ctx>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    chooser_index: u64,
    bimodal_pred: bool,
    gshare_pred: bool,
    final_pred: bool,
}

impl Tournament {
    /// Creates a tournament predictor with a `size_bytes` counter budget.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is smaller than 4 bytes or not a power of two.
    pub fn new(size_bytes: usize) -> Self {
        assert!(
            size_bytes >= 4 && size_bytes.is_power_of_two(),
            "tournament size {size_bytes} must be a power of two >= 4"
        );
        Self {
            bimodal: Bimodal::new(size_bytes / 4),
            gshare: Gshare::new(size_bytes / 2),
            chooser: PredictionTable::two_bit(size_bytes / 4 * 4),
            latched: None,
        }
    }

    fn chooser_index(&self, pc: BranchAddr) -> u64 {
        pc.word_index() & self.chooser.index_mask()
    }
}

impl DynamicPredictor for Tournament {
    fn name(&self) -> &'static str {
        "tournament"
    }

    fn size_bytes(&self) -> usize {
        self.bimodal.size_bytes() + self.gshare.size_bytes() + self.chooser.size_bytes()
    }

    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        let bimodal = self.bimodal.predict(pc);
        let gshare = self.gshare.predict(pc);
        let chooser_index = self.chooser_index(pc);
        // A taken-leaning chooser counter selects the gshare component.
        let (use_gshare, chooser_collision) = self.chooser.lookup(chooser_index, pc);
        let final_pred = if use_gshare {
            gshare.taken
        } else {
            bimodal.taken
        };
        self.latched = Some(Latched {
            pc,
            ctx: Ctx {
                chooser_index,
                bimodal_pred: bimodal.taken,
                gshare_pred: gshare.taken,
                final_pred,
            },
        });
        Prediction {
            taken: final_pred,
            collision: bimodal.collision || gshare.collision || chooser_collision,
        }
    }

    fn update(&mut self, pc: BranchAddr, taken: bool) {
        let ctx = Latched::take_for(&mut self.latched, pc, "tournament");
        // Total update: both components always train (the gshare also
        // shifts its history).
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
        // The chooser trains only on disagreement, toward the winner.
        if ctx.bimodal_pred != ctx.gshare_pred {
            self.chooser
                .train(ctx.chooser_index, ctx.gshare_pred == taken);
        }
    }

    fn shift_history(&mut self, taken: bool) {
        self.gshare.shift_history(taken);
    }

    fn total_collisions(&self) -> u64 {
        self.bimodal.total_collisions() + self.gshare.total_collisions() + self.chooser.collisions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_split_is_quarter_half_quarter() {
        let p = Tournament::new(8192);
        assert_eq!(p.bimodal.size_bytes(), 2048);
        assert_eq!(p.gshare.size_bytes(), 4096);
        assert_eq!(p.chooser.size_bytes(), 2048);
        assert_eq!(p.size_bytes(), 8192);
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = Tournament::new(1024);
        let pc = BranchAddr(0x40);
        for _ in 0..20 {
            let _ = p.predict(pc);
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
        p.update(pc, true);
    }

    #[test]
    fn chooser_routes_alternation_to_gshare() {
        // Alternating outcomes: bimodal oscillates, gshare learns; the
        // tournament must converge to gshare's (correct) prediction.
        let mut p = Tournament::new(2048);
        let pc = BranchAddr(0x80);
        let mut correct = 0;
        for i in 0..3000 {
            let outcome = i % 2 == 0;
            let pred = p.predict(pc);
            if i >= 2000 && pred.taken == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(
            correct > 950,
            "tournament alternation accuracy {correct}/1000"
        );
    }

    #[test]
    fn chooser_keeps_bimodal_for_noisy_biased_branches() {
        // 88%-taken noise: bimodal is the right component; accuracy should
        // track the bias, not collapse to gshare's diluted view.
        let mut p = Tournament::new(512);
        let pc = BranchAddr(0x80);
        let mut state = 7u64;
        let mut correct = 0;
        let mut measured = 0;
        for i in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let outcome = (state >> 33) % 100 < 88;
            let pred = p.predict(pc);
            if i >= 10_000 {
                measured += 1;
                correct += u64::from(pred.taken == outcome);
            }
            p.update(pc, outcome);
        }
        let acc = correct as f64 / measured as f64;
        assert!(acc > 0.82, "noisy-bias accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_sizes() {
        let _ = Tournament::new(3000);
    }
}
