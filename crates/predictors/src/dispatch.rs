//! Static dispatch over the predictor zoo for the simulation hot path.
//!
//! [`AnyPredictor`] is a closed enum covering the paper's five predictors
//! and the ablation set. The simulator's per-branch inner loop dispatches on
//! the enum discriminant — a predictable branch that monomorphizes into the
//! concrete `predict`/`update` bodies — instead of paying two virtual calls
//! per event through `Box<dyn DynamicPredictor>`. User-defined predictors
//! keep working through the [`AnyPredictor::Custom`] escape hatch, which
//! preserves the boxed-trait path for exactly that variant.

use crate::index_spec::IndexSpec;
use crate::traits::{DynamicPredictor, Prediction};
use crate::{
    Agree, BiMode, Bimodal, EGskew, Ghist, Gselect, Gshare, Local, Perceptron, TageLite,
    Tournament, TwoBcGskew, Yags,
};
use sdbp_trace::{BranchAddr, BranchEvent};

/// A dynamic predictor with enum (static) dispatch on the hot path.
///
/// Construct one from any concrete predictor via `From`/`Into` — plain or
/// boxed values both convert, so existing `Box::new(Gshare::new(..))` call
/// sites keep compiling — or from
/// [`PredictorConfig::build_any`](crate::PredictorConfig::build_any).
/// A `Box<dyn DynamicPredictor>`
/// converts into [`AnyPredictor::Custom`].
///
/// # Examples
///
/// ```
/// use sdbp_predictors::{AnyPredictor, DynamicPredictor, Gshare};
/// use sdbp_trace::BranchAddr;
///
/// let mut p = AnyPredictor::from(Gshare::new(4096));
/// let _ = p.predict(BranchAddr(0x40));
/// p.update(BranchAddr(0x40), true);
/// assert_eq!(p.name(), "gshare");
/// ```
pub enum AnyPredictor {
    /// Per-address 2-bit counters (no history).
    Bimodal(Bimodal),
    /// GAg: global history indexes the counter table directly.
    Ghist(Ghist),
    /// Global history XOR branch address.
    Gshare(Gshare),
    /// Bi-Mode: choice table steering taken/not-taken direction banks.
    BiMode(BiMode),
    /// 2Bc-gskew: bimodal + two skewed global banks + meta chooser.
    TwoBcGskew(TwoBcGskew),
    /// Agree: counters predict agreement with a per-branch bias bit.
    Agree(Agree),
    /// YAGS: choice table with tagged direction exception caches.
    Yags(Yags),
    /// Raw enhanced-gskew majority vote.
    EGskew(EGskew),
    /// 21264-style chooser between bimodal and gshare components.
    Tournament(Tournament),
    /// PAg: per-branch histories indexing a shared pattern table.
    Local(Local),
    /// Concatenated address/history index bits.
    Gselect(Gselect),
    /// Hashed perceptron: signed weight rows over global history.
    Perceptron(Perceptron),
    /// TAGE-lite: tagged geometric-history tables over a bimodal base.
    TageLite(TageLite),
    /// Escape hatch: any user-supplied predictor, virtually dispatched.
    Custom(Box<dyn DynamicPredictor>),
}

/// Expands `$body` once per variant with `$p` bound to the payload.
macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPredictor::Bimodal($p) => $body,
            AnyPredictor::Ghist($p) => $body,
            AnyPredictor::Gshare($p) => $body,
            AnyPredictor::BiMode($p) => $body,
            AnyPredictor::TwoBcGskew($p) => $body,
            AnyPredictor::Agree($p) => $body,
            AnyPredictor::Yags($p) => $body,
            AnyPredictor::EGskew($p) => $body,
            AnyPredictor::Tournament($p) => $body,
            AnyPredictor::Local($p) => $body,
            AnyPredictor::Gselect($p) => $body,
            AnyPredictor::Perceptron($p) => $body,
            AnyPredictor::TageLite($p) => $body,
            AnyPredictor::Custom($p) => $body,
        }
    };
}

impl AnyPredictor {
    /// Unwraps into a boxed trait object (boxing the enum unless it already
    /// holds a [`AnyPredictor::Custom`] box).
    pub fn into_boxed(self) -> Box<dyn DynamicPredictor> {
        match self {
            AnyPredictor::Custom(b) => b,
            other => Box::new(other),
        }
    }
}

impl DynamicPredictor for AnyPredictor {
    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    fn size_bytes(&self) -> usize {
        dispatch!(self, p => p.size_bytes())
    }

    #[inline]
    fn predict(&mut self, pc: BranchAddr) -> Prediction {
        dispatch!(self, p => p.predict(pc))
    }

    #[inline]
    fn update(&mut self, pc: BranchAddr, taken: bool) {
        dispatch!(self, p => p.update(pc, taken))
    }

    /// The simulator's per-event hot path: a *single* dispatch straight into
    /// the concrete fused [`DynamicPredictor::predict_update`], so
    /// single-table schemes keep their one-read-modify-write entry access
    /// and no latched lookup context leaves registers.
    #[inline]
    fn predict_update(&mut self, pc: BranchAddr, taken: bool) -> Prediction {
        dispatch!(self, p => p.predict_update(pc, taken))
    }

    /// One dispatch per *batch*, not per event: the concrete batched loops
    /// (and the default per-event fallback) run with the discriminant check
    /// entirely outside the inner loop.
    #[inline]
    fn predict_update_batch(&mut self, events: &[BranchEvent], out: &mut Vec<Prediction>) {
        dispatch!(self, p => p.predict_update_batch(events, out))
    }

    #[inline]
    fn shift_history(&mut self, taken: bool) {
        dispatch!(self, p => p.shift_history(taken))
    }

    fn total_collisions(&self) -> u64 {
        dispatch!(self, p => p.total_collisions())
    }

    fn history_bits(&self) -> u32 {
        dispatch!(self, p => p.history_bits())
    }

    fn probe_indices(&self, pc: BranchAddr, history: u64, out: &mut Vec<(u32, u64)>) -> bool {
        dispatch!(self, p => p.probe_indices(pc, history, out))
    }

    fn index_spec(&self) -> Option<IndexSpec> {
        dispatch!(self, p => p.index_spec())
    }
}

impl std::fmt::Debug for AnyPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AnyPredictor({}, {} bytes)",
            self.name(),
            self.size_bytes()
        )
    }
}

/// `From` conversions for plain and boxed concrete predictors, so call
/// sites written against `Box<dyn DynamicPredictor>` unbox into static
/// dispatch when the concrete type is known.
macro_rules! from_concrete {
    ($($variant:ident($ty:ty)),* $(,)?) => {$(
        impl From<$ty> for AnyPredictor {
            fn from(p: $ty) -> Self {
                AnyPredictor::$variant(p)
            }
        }

        impl From<Box<$ty>> for AnyPredictor {
            fn from(p: Box<$ty>) -> Self {
                AnyPredictor::$variant(*p)
            }
        }
    )*};
}

from_concrete!(
    Bimodal(Bimodal),
    Ghist(Ghist),
    Gshare(Gshare),
    BiMode(BiMode),
    TwoBcGskew(TwoBcGskew),
    Agree(Agree),
    Yags(Yags),
    EGskew(EGskew),
    Tournament(Tournament),
    Local(Local),
    Gselect(Gselect),
    Perceptron(Perceptron),
    TageLite(TageLite),
);

impl From<Box<dyn DynamicPredictor>> for AnyPredictor {
    fn from(p: Box<dyn DynamicPredictor>) -> Self {
        AnyPredictor::Custom(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PredictorConfig, PredictorKind};

    /// Drives the enum and the raw concrete predictor in lockstep over a
    /// deterministic branch mix; dispatch must be semantics-free.
    #[test]
    fn enum_dispatch_matches_direct_calls() {
        for kind in PredictorKind::ALL {
            let config = PredictorConfig::new(kind, 2048).unwrap();
            let mut direct = config.build();
            let mut via_enum = config.build_any();
            assert_eq!(via_enum.name(), direct.name());
            assert_eq!(via_enum.size_bytes(), direct.size_bytes());
            for i in 0..2000u64 {
                let pc = BranchAddr((i % 37) * 4);
                let taken = (i * 7 + i / 5) % 3 != 0;
                assert_eq!(via_enum.predict(pc), direct.predict(pc), "{kind:?} @{i}");
                via_enum.update(pc, taken);
                direct.update(pc, taken);
            }
            assert_eq!(via_enum.total_collisions(), direct.total_collisions());
        }
    }

    /// The fused hot path must be observably identical to the split
    /// predict/update protocol for every kind — including the ones with a
    /// fused single-RMW override.
    #[test]
    fn fused_predict_update_matches_split_protocol() {
        for kind in PredictorKind::ALL {
            let config = PredictorConfig::new(kind, 2048).unwrap();
            let mut split = config.build_any();
            let mut fused = config.build_any();
            for i in 0..3000u64 {
                let pc = BranchAddr((i % 41) * 4);
                let taken = (i * 11 + i / 7) % 3 != 0;
                let a = split.predict(pc);
                split.update(pc, taken);
                let b = fused.predict_update(pc, taken);
                assert_eq!(a, b, "{kind:?} @{i}");
            }
            assert_eq!(split.total_collisions(), fused.total_collisions());
        }
    }

    /// The batched path must equal the per-event fused path for every kind —
    /// exercising both the hand-hoisted overrides and the default loop.
    #[test]
    fn batched_predict_update_matches_per_event() {
        for kind in PredictorKind::ALL {
            let config = PredictorConfig::new(kind, 2048).unwrap();
            let mut per_event = config.build_any();
            let mut batched = config.build_any();
            let events: Vec<BranchEvent> = (0..3000u64)
                .map(|i| {
                    let pc = BranchAddr((i % 43) * 4);
                    BranchEvent::new(pc, (i * 13 + i / 3) % 3 != 0, 0)
                })
                .collect();
            let mut out = Vec::new();
            for chunk in events.chunks(257) {
                out.clear();
                batched.predict_update_batch(chunk, &mut out);
                for (e, got) in chunk.iter().zip(&out) {
                    let want = per_event.predict_update(e.pc, e.taken);
                    assert_eq!(*got, want, "{kind:?} @{e}");
                }
            }
            assert_eq!(batched.total_collisions(), per_event.total_collisions());
        }
    }

    /// The `probe_indices` out-vector contract, for every kind through the
    /// dispatch layer: append-only (a prior occupant survives), identical
    /// probes on repeat calls, contiguous bank ids from 0 — and the
    /// supported/unsupported answer consistent with the capability source
    /// and with `index_spec` availability.
    #[test]
    fn probe_indices_append_contract_holds_for_every_kind() {
        for kind in PredictorKind::ALL {
            let config = PredictorConfig::new(kind, 4096).unwrap();
            let p = config.build_any();
            let capability = config.index_capability();
            let pc = BranchAddr(0x1b3c);
            let history = 0x2d5;
            let sentinel = (u32::MAX, u64::MAX);
            let mut out = vec![sentinel];
            let supported = p.probe_indices(pc, history, &mut out);
            assert_eq!(supported, capability.is_analyzable(), "{kind}");
            assert_eq!(p.index_spec().is_some(), capability.is_linear(), "{kind}");
            assert_eq!(out[0], sentinel, "{kind}: probe must not clear the buffer");
            if !supported {
                assert_eq!(out.len(), 1, "{kind}: unsupported probes append nothing");
                continue;
            }
            assert!(out.len() > 1, "{kind}: supported probes append");
            for (position, &(bank, _)) in out[1..].iter().enumerate() {
                assert_eq!(bank, position as u32, "{kind}: contiguous bank ids");
            }
            let mut again = Vec::new();
            assert!(p.probe_indices(pc, history, &mut again));
            assert_eq!(&out[1..], &again[..], "{kind}: probing is pure");
        }
    }

    #[test]
    fn boxed_concrete_unboxes_into_a_static_variant() {
        let p: AnyPredictor = Box::new(Gshare::new(1024)).into();
        assert!(matches!(p, AnyPredictor::Gshare(_)));
    }

    #[test]
    fn boxed_dyn_lands_in_custom() {
        let boxed: Box<dyn DynamicPredictor> = Box::new(Gshare::new(1024));
        let p: AnyPredictor = boxed.into();
        assert!(matches!(p, AnyPredictor::Custom(_)));
        assert_eq!(p.name(), "gshare");
        assert_eq!(p.size_bytes(), 1024);
    }

    #[test]
    fn into_boxed_does_not_double_box_custom() {
        let boxed: Box<dyn DynamicPredictor> = Box::new(Bimodal::new(256));
        let p = AnyPredictor::from(boxed).into_boxed();
        assert_eq!(p.name(), "bimodal");
        let q = AnyPredictor::from(Bimodal::new(256)).into_boxed();
        assert_eq!(q.size_bytes(), 256);
    }
}
