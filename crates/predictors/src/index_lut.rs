//! Packed GF(2)-linear index lookup tables for multi-bank batch kernels.
//!
//! Every bank index of the skewed predictors is a GF(2)-linear function of
//! `(pc word bits, history bits)` — bit selects, XOR folds
//! ([`crate::history::fold_bits`]) and the bijective feedback shifts inside
//! [`crate::skew::skew`] are all XOR-compositions. Linearity means the whole
//! per-event index computation factors through byte-granular lookup tables:
//!
//! ```text
//! f(w, h) = f(w₀, 0) ^ f(w₁, 0) ^ … ^ f(0, h₀) ^ f(0, h₁) ^ …
//! ```
//!
//! where `wᵢ`/`hᵢ` are the operands with all but the `i`-th byte zeroed. A
//! predictor packs **all** of its bank indices into one `u64` (16 bits per
//! bank), so the batch hot loop replaces three history folds and two skew
//! hashes per event with a handful of L1-resident table loads and XORs. The
//! tables are built once at construction from the predictor's own scalar
//! index function, so they cannot drift from it; the batch-vs-scalar
//! equivalence tests pin the factorization.

/// Byte-sliced lookup tables for one packed, GF(2)-linear index function
/// `f(pc_word, history) -> packed_indices`.
#[derive(Clone)]
pub(crate) struct PackedIndexLut {
    /// One 256-entry table per byte of the PC word's low `pc_bits` bits.
    pc_tables: Vec<[u64; 256]>,
    /// One 256-entry table per byte of the history register's `hist_bits`.
    hist_tables: Vec<[u64; 256]>,
    /// Mask selecting the PC word bits that can reach any bank index.
    pc_mask: u64,
}

fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

impl PackedIndexLut {
    /// Builds the byte tables for `f`, which must be GF(2)-linear in both
    /// operands (`f(a ^ b, 0) == f(a, 0) ^ f(b, 0)`, same in the second
    /// operand, and `f(0, 0) == 0`) and must ignore PC word bits at or above
    /// `pc_bits` and history bits at or above `hist_bits`.
    pub(crate) fn build(pc_bits: u32, hist_bits: u32, f: impl Fn(u64, u64) -> u64) -> Self {
        let pc_mask = low_mask(pc_bits);
        let hist_mask = low_mask(hist_bits);
        let byte_tables = |bits: u32, mask: u64, of_byte: &dyn Fn(u64) -> u64| {
            (0..bits.div_ceil(8))
                .map(|bp| {
                    let mut table = [0u64; 256];
                    for (v, slot) in table.iter_mut().enumerate() {
                        *slot = of_byte(((v as u64) << (bp * 8)) & mask);
                    }
                    table
                })
                .collect()
        };
        let pc_tables = byte_tables(pc_bits, pc_mask, &|w| f(w, 0));
        let hist_tables = byte_tables(hist_bits, hist_mask, &|h| f(0, h));
        let lut = Self {
            pc_tables,
            hist_tables,
            pc_mask,
        };
        // Spot-check the factorization against the scalar function on a few
        // deterministic pseudo-random operands; a non-linear `f` (or one
        // that reads bits beyond the declared widths) fails fast here
        // instead of corrupting a simulation.
        #[cfg(debug_assertions)]
        {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..8 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let w = state & pc_mask;
                let h = (state >> 17) & hist_mask;
                debug_assert_eq!(
                    lut.packed(w, h),
                    f(w, h),
                    "index function is not GF(2)-linear in its declared bits"
                );
            }
        }
        lut
    }

    /// The packed bank indices for one event: XOR of one table row per
    /// operand byte.
    #[inline]
    pub(crate) fn packed(&self, w: u64, history: u64) -> u64 {
        let mut acc = 0u64;
        let w = w & self.pc_mask;
        for (i, table) in self.pc_tables.iter().enumerate() {
            acc ^= table[((w >> (8 * i as u32)) & 0xff) as usize];
        }
        for (i, table) in self.hist_tables.iter().enumerate() {
            acc ^= table[((history >> (8 * i as u32)) & 0xff) as usize];
        }
        acc
    }
}

impl std::fmt::Debug for PackedIndexLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedIndexLut")
            .field("pc_tables", &self.pc_tables.len())
            .field("hist_tables", &self.hist_tables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::fold_bits;
    use crate::skew::skew;

    #[test]
    fn factors_a_skewed_index_function_exactly() {
        let n = 9u32;
        let mask = (1u64 << n) - 1;
        let f = |w: u64, h: u64| {
            let lo = w & mask;
            let hi = (w >> n) & mask;
            let f0 = fold_bits(h, 4, n);
            let f1 = fold_bits(h, 9, n);
            (w & mask) | skew(1, lo ^ f0, hi, f0, n) << 16 | skew(2, lo ^ f1, hi, f1, n) << 32
        };
        let lut = PackedIndexLut::build(2 * n, 9, f);
        let mut state = 0x0123_4567_89ab_cdefu64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = state & ((1 << (2 * n)) - 1);
            let h = (state >> 40) & ((1 << 9) - 1);
            assert_eq!(lut.packed(w, h), f(w, h));
        }
    }

    #[test]
    fn masks_pc_bits_beyond_the_declared_width() {
        let f = |w: u64, h: u64| (w & 0xff) ^ (h & 0xf) << 4;
        let lut = PackedIndexLut::build(8, 4, f);
        // High PC bits must not perturb the lookup.
        assert_eq!(lut.packed(0xdead_beef_0000_0012, 0x3), f(0x12, 0x3));
    }
}
