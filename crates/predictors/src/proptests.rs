//! Property-based tests over the predictor substrate.
//!
//! These verify structural invariants that hold for *every* scheme on
//! arbitrary branch streams: protocol safety (no panics, deterministic
//! replay), counter/history bounds, hash bijectivity, and collision
//! accounting.

#![cfg(test)]

use crate::counter::SaturatingCounter;
use crate::history::HistoryRegister;
use crate::skew::{h, h_inv, h_inv_pow, h_pow, skew};
use crate::table::{PredictionTable, ReferenceTable};
use crate::{PredictorConfig, PredictorKind};
use proptest::prelude::*;
use sdbp_trace::BranchAddr;

fn arb_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..2048, any::<bool>()), 1..300)
        .prop_map(|v| v.into_iter().map(|(w, t)| (w * 4, t)).collect())
}

proptest! {
    /// Every predictor kind survives arbitrary streams and replays
    /// deterministically.
    #[test]
    fn predictors_are_deterministic_on_arbitrary_streams(
        stream in arb_stream(),
        kind_idx in 0usize..PredictorKind::ALL.len(),
        size_shift in 4u32..10,
    ) {
        let kind = PredictorKind::ALL[kind_idx];
        let size = 1usize << size_shift.max(5); // >= 32 bytes, covers hybrids
        let run = || {
            let mut p = PredictorConfig::new(kind, size).expect("valid").build();
            let mut outcomes = Vec::new();
            for &(pc, taken) in &stream {
                let pred = p.predict(BranchAddr(pc));
                outcomes.push((pred.taken, pred.collision));
                p.update(BranchAddr(pc), taken);
            }
            (outcomes, p.total_collisions())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        prop_assert_eq!(a, b);
        prop_assert_eq!(ca, cb);
    }

    /// Collision counters are monotone and bounded by lookups.
    #[test]
    fn collisions_bounded_by_lookups(stream in arb_stream()) {
        let mut p = PredictorConfig::new(PredictorKind::Gshare, 64)
            .expect("valid")
            .build();
        let mut last = 0;
        for (i, &(pc, taken)) in stream.iter().enumerate() {
            let _ = p.predict(BranchAddr(pc));
            p.update(BranchAddr(pc), taken);
            let now = p.total_collisions();
            prop_assert!(now >= last, "collision counter went backwards");
            prop_assert!(now <= (i as u64 + 1), "more collisions than lookups");
            last = now;
        }
    }

    /// Saturating counters stay in range and predict their MSB.
    #[test]
    fn counter_invariants(bits in 1u8..8, updates in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SaturatingCounter::new(bits, 0);
        let max = (1u8 << bits) - 1;
        for taken in updates {
            c.train(taken);
            prop_assert!(c.value() <= max);
            prop_assert_eq!(c.predict_taken(), c.value() > max / 2);
        }
    }

    /// A counter trained n times in one direction from anywhere saturates
    /// within n >= 2^bits steps and then stays put.
    #[test]
    fn counter_saturates(bits in 1u8..8, start_frac in 0.0f64..1.0) {
        let max = (1u8 << bits) - 1;
        let start = (start_frac * max as f64) as u8;
        let mut c = SaturatingCounter::new(bits, start);
        for _ in 0..=max {
            c.train(true);
        }
        prop_assert_eq!(c.value(), max);
        c.train(true);
        prop_assert_eq!(c.value(), max);
    }

    /// History register: `bits(n)` always returns the newest n outcomes.
    #[test]
    fn history_tracks_newest_bits(
        len in 1u32..64,
        pushes in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut h = HistoryRegister::new(len);
        for &taken in &pushes {
            h.push(taken);
        }
        let n = len.min(pushes.len() as u32);
        let got = h.bits(n);
        for i in 0..n {
            let expected = pushes[pushes.len() - 1 - i as usize];
            prop_assert_eq!((got >> i) & 1 == 1, expected, "bit {} mismatch", i);
        }
    }

    /// Folding never exceeds the fold width and is deterministic.
    #[test]
    fn history_folding_is_bounded(
        len in 1u32..64,
        take_frac in 0.0f64..1.0,
        into in 1u32..20,
        pushes in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let mut h = HistoryRegister::new(len);
        for &taken in &pushes {
            h.push(taken);
        }
        let take = ((take_frac * len as f64) as u32).min(len);
        let folded = h.folded(take, into);
        if into < 64 {
            prop_assert!(folded < (1u64 << into));
        }
        prop_assert_eq!(folded, h.folded(take, into));
    }

    /// The skewing shift is a bijection for every width: h_inv ∘ h = id.
    #[test]
    fn skew_shift_is_bijective(n in 2u32..24, x in any::<u64>()) {
        let mask = (1u64 << n) - 1;
        let x = x & mask;
        prop_assert_eq!(h_inv(h(x, n), n), x);
        prop_assert_eq!(h(h_inv(x, n), n), x);
    }

    /// Powered shifts compose and invert.
    #[test]
    fn skew_powers_invert(n in 2u32..24, k in 0u32..10, x in any::<u64>()) {
        let mask = (1u64 << n) - 1;
        let x = x & mask;
        prop_assert_eq!(h_inv_pow(h_pow(x, n, k), n, k), x);
    }

    /// skew() output always fits in n bits and differs between banks for
    /// most inputs (weak anti-correlation check).
    #[test]
    fn skew_is_masked(n in 2u32..24, v1 in any::<u64>(), v2 in any::<u64>(), v3 in any::<u64>()) {
        for k in 0..4 {
            let out = skew(k, v1, v2, v3, n);
            prop_assert!(out < (1u64 << n));
        }
    }

    /// The bit-packed [`PredictionTable`] and the naive [`ReferenceTable`]
    /// stay in lockstep on arbitrary op sequences: same predictions, same
    /// collision flags, same lookup/collision totals, same modeled size.
    /// Indices are drawn well past the table size to exercise the internal
    /// masking contract.
    #[test]
    fn packed_table_matches_reference(
        entries_shift in 1u32..10,
        bits in 1u8..6,
        init_frac in 0.0f64..1.0,
        ops in proptest::collection::vec(
            (0u8..4, any::<u64>(), 0u64..96, any::<bool>()),
            1..400,
        ),
    ) {
        let entries = 1usize << entries_shift;
        let max = (1u8 << bits) - 1;
        let template = SaturatingCounter::new(bits, (init_frac * max as f64) as u8);
        let mut packed = PredictionTable::new(entries, template);
        let mut reference = ReferenceTable::new(entries, template);
        prop_assert_eq!(packed.entries(), reference.entries());
        prop_assert_eq!(packed.size_bytes(), reference.size_bytes());
        prop_assert_eq!(packed.index_bits(), reference.index_bits());
        for (i, &(op, index, pc_word, taken)) in ops.iter().enumerate() {
            let pc = BranchAddr(pc_word * 4);
            match op {
                0 => {
                    let (p, r) = (packed.lookup(index, pc), reference.lookup(index, pc));
                    prop_assert_eq!(p, r, "lookup diverged at op {}", i);
                }
                1 => {
                    packed.train(index, taken);
                    reference.train(index, taken);
                }
                2 => prop_assert_eq!(
                    packed.peek(index), reference.peek(index),
                    "peek diverged at op {}", i
                ),
                _ => prop_assert_eq!(
                    packed.counter(index).value(),
                    reference.counter(index).value(),
                    "counter diverged at op {}", i
                ),
            }
        }
        prop_assert_eq!(packed.lookups(), reference.lookups());
        prop_assert_eq!(packed.collisions(), reference.collisions());
        // Full-table sweep: every counter cell agrees after the op storm.
        for i in 0..entries as u64 {
            prop_assert_eq!(
                packed.counter(i).value(),
                reference.counter(i).value(),
                "cell {} diverged", i
            );
        }
    }

    /// The soundness anchor of the exact GF(2) analyzer: for every linear
    /// predictor, symbolic [`crate::IndexSpec`] evaluation equals the live
    /// `probe_indices` over arbitrary `(pc, history)` pairs — so whatever
    /// the linear algebra proves about the spec holds for the simulator.
    /// PCs range past every table's modeled span to exercise dead high
    /// bits; histories are raw 64-bit values the predictors must mask.
    #[test]
    fn index_spec_evaluation_matches_probe_indices(
        kind_idx in 0usize..PredictorKind::ALL.len(),
        size_shift in 5u32..16,
        pc_word in 0u64..(1u64 << 32),
        history in any::<u64>(),
    ) {
        let kind = PredictorKind::ALL[kind_idx];
        let config = PredictorConfig::new(kind, 1usize << size_shift).expect("valid");
        let p = config.build();
        match p.index_spec() {
            None => prop_assert!(!config.index_capability().is_linear(), "{}", kind),
            Some(spec) => {
                prop_assert_eq!(spec.history_bits, p.history_bits());
                let pc = BranchAddr(pc_word * 4);
                let mut probed = Vec::new();
                prop_assert!(p.probe_indices(pc, history, &mut probed));
                let mut symbolic = Vec::new();
                spec.evaluate(pc, history, &mut symbolic);
                prop_assert_eq!(
                    probed, symbolic,
                    "{} pc={:#x} history={:#x}", kind, pc_word * 4, history
                );
            }
        }
    }

    /// The batched `predict_update_batch` path — including every SWAR
    /// bank-parallel override — matches the scalar predict/update protocol
    /// event for event on arbitrary streams, arbitrary chunk partitions and
    /// arbitrary sizes, with identical collision totals afterwards. This is
    /// the equivalence oracle the scalar path is retained for.
    #[test]
    fn batched_path_matches_scalar_protocol_for_every_kind(
        stream in arb_stream(),
        kind_idx in 0usize..PredictorKind::ALL.len(),
        size_shift in 5u32..10,
        chunk in 1usize..64,
    ) {
        let kind = PredictorKind::ALL[kind_idx];
        let size = 1usize << size_shift;
        let config = PredictorConfig::new(kind, size).expect("valid");
        let mut batched = config.build();
        let mut scalar = config.build();
        let events: Vec<sdbp_trace::BranchEvent> = stream
            .iter()
            .map(|&(pc, taken)| sdbp_trace::BranchEvent::new(BranchAddr(pc), taken, 0))
            .collect();
        let mut out = Vec::new();
        for slice in events.chunks(chunk) {
            out.clear();
            batched.predict_update_batch(slice, &mut out);
            prop_assert_eq!(out.len(), slice.len());
            for (e, got) in slice.iter().zip(&out) {
                let want = scalar.predict(e.pc);
                scalar.update(e.pc, e.taken);
                prop_assert_eq!(*got, want, "{} @{}", kind, e);
            }
        }
        prop_assert_eq!(batched.total_collisions(), scalar.total_collisions());
    }

    /// `shift_history` between predictions must never corrupt the
    /// predict/update protocol (e.g. static branches interleaved anywhere).
    #[test]
    fn interleaved_history_shifts_are_safe(
        stream in arb_stream(),
        kind_idx in 0usize..PredictorKind::ALL.len(),
    ) {
        let kind = PredictorKind::ALL[kind_idx];
        let mut p = PredictorConfig::new(kind, 256).expect("valid").build();
        for (i, &(pc, taken)) in stream.iter().enumerate() {
            if i % 3 == 0 {
                // A "statically predicted" branch: history only.
                p.shift_history(taken);
            } else {
                let _ = p.predict(BranchAddr(pc));
                p.update(BranchAddr(pc), taken);
            }
        }
    }
}
