//! The diagnostic core: stable codes, severities, spans, and rendering.
//!
//! Modeled on rustc's diagnostics: every finding carries a stable
//! [`Code`] (`SDBP001`…), a [`Severity`], an optional [`Span`] locating the
//! offending field, an optional suggestion, and free-form notes. A
//! [`Diagnostics`] collection renders either as human-readable text or as
//! machine-readable JSON (hand-rolled — this workspace is offline and
//! dependency-free).

use std::fmt;

/// How serious a finding is.
///
/// Errors make a configuration unusable; warnings flag configurations that
/// run but are probably not what was meant; notes are advisory (e.g. the
/// aliasing analyzer's hotspot reports) and never fail a check, even under
/// `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Note,
    /// Suspicious but runnable.
    Warning,
    /// The configuration must not run.
    Error,
}

impl Severity {
    /// The rendered label (`"error"`, `"warning"`, `"note"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A stable diagnostic code, rendered `SDBP<nnn>`.
///
/// Codes are append-only: once published in `docs/diagnostics.md` a number
/// is never reused for a different condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub u16);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SDBP{:03}", self.0)
    }
}

/// Where a finding points: a named origin (a file path, `<args>`, or
/// `<spec>`), the offending field or key, and optionally a 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What is being checked (file path, `<args>`, `<spec>`, …).
    pub origin: String,
    /// The field or key at fault (`"size"`, `"scheme"`, …).
    pub field: String,
    /// 1-based line number, for file-backed origins.
    pub line: Option<usize>,
}

impl Span {
    /// A span over a field with no line information.
    pub fn field(origin: impl Into<String>, field: impl Into<String>) -> Self {
        Self {
            origin: origin.into(),
            field: field.into(),
            line: None,
        }
    }

    /// A span over a field at a 1-based line.
    pub fn line(origin: impl Into<String>, field: impl Into<String>, line: usize) -> Self {
        Self {
            origin: origin.into(),
            field: field.into(),
            line: Some(line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{} ({})", self.origin, line, self.field),
            None => write!(f, "{} ({})", self.origin, self.field),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// How serious it is.
    pub severity: Severity,
    /// What is wrong, in one sentence.
    pub message: String,
    /// Where it is, when known.
    pub span: Option<Span>,
    /// How to fix it, when a concrete fix exists.
    pub suggestion: Option<String>,
    /// Additional context lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    fn new(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Self {
            code,
            severity,
            message: message.into(),
            span: None,
            suggestion: None,
            notes: Vec::new(),
        }
    }

    /// An error-severity finding.
    pub fn error(code: Code, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Error, message)
    }

    /// A warning-severity finding.
    pub fn warning(code: Code, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Warning, message)
    }

    /// A note-severity finding.
    pub fn note(code: Code, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Note, message)
    }

    /// Attaches a span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches a fix suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Appends a context note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// An ordered collection of findings with rendering and exit-status logic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// Appends every finding of another collection.
    pub fn merge(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// The findings, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Whether the check passed: no errors, and no warnings when
    /// `deny_warnings` is set. Notes never fail a check.
    pub fn passes(&self, deny_warnings: bool) -> bool {
        !(self.has_errors() || (deny_warnings && self.warnings() > 0))
    }

    /// Whether the subject is clean: no errors and no warnings (notes are
    /// tolerated).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0 && self.warnings() == 0
    }

    /// A one-line count summary, e.g. `"2 errors, 1 warning"`.
    pub fn summary(&self) -> String {
        fn plural(n: usize, noun: &str) -> String {
            format!("{n} {noun}{}", if n == 1 { "" } else { "s" })
        }
        let mut parts = Vec::new();
        if self.errors() > 0 {
            parts.push(plural(self.errors(), "error"));
        }
        if self.warnings() > 0 {
            parts.push(plural(self.warnings(), "warning"));
        }
        if self.notes() > 0 {
            parts.push(plural(self.notes(), "note"));
        }
        if parts.is_empty() {
            "no findings".to_string()
        } else {
            parts.join(", ")
        }
    }

    /// Renders every finding in the rustc-inspired text layout:
    ///
    /// ```text
    /// error[SDBP002]: table size 3000 is not a power of two
    ///   --> bad.spec:3 (size)
    ///   = help: use 2048 or 4096
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            if let Some(span) = &d.span {
                out.push_str(&format!("  --> {span}\n"));
            }
            if let Some(suggestion) = &d.suggestion {
                out.push_str(&format!("  = help: {suggestion}\n"));
            }
            for note in &d.notes {
                out.push_str(&format!("  = note: {note}\n"));
            }
        }
        out
    }

    /// Renders the collection as a JSON document:
    ///
    /// ```text
    /// {"diagnostics": [...], "errors": N, "warnings": N, "notes": N}
    /// ```
    ///
    /// Each diagnostic object carries `code`, `severity`, `message`, and —
    /// when present — `origin`, `field`, `line`, `suggestion`, and `notes`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":{}",
                d.code,
                d.severity,
                json_string(&d.message)
            ));
            if let Some(span) = &d.span {
                out.push_str(&format!(
                    ",\"origin\":{},\"field\":{}",
                    json_string(&span.origin),
                    json_string(&span.field)
                ));
                if let Some(line) = span.line {
                    out.push_str(&format!(",\"line\":{line}"));
                }
            }
            if let Some(suggestion) = &d.suggestion {
                out.push_str(&format!(",\"suggestion\":{}", json_string(suggestion)));
            }
            if !d.notes.is_empty() {
                out.push_str(",\"notes\":[");
                for (j, note) in d.notes.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(note));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"notes\":{}}}",
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        out
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostics {
        let mut diags = Diagnostics::new();
        diags.push(
            Diagnostic::error(Code(2), "table size 3000 is not a power of two")
                .with_span(Span::line("bad.spec", "size", 3))
                .with_suggestion("use 2048 or 4096"),
        );
        diags.push(
            Diagnostic::warning(
                Code(22),
                "hint for 0x40 targets a branch the profile never saw",
            )
            .with_span(Span::field("<args>", "hints"))
            .with_note("the profile observed 12 branches"),
        );
        diags.push(Diagnostic::note(Code(40), "predicted hotspot at 0x80"));
        diags
    }

    #[test]
    fn codes_render_zero_padded() {
        assert_eq!(Code(2).to_string(), "SDBP002");
        assert_eq!(Code(41).to_string(), "SDBP041");
        assert_eq!(Code(123).to_string(), "SDBP123");
    }

    #[test]
    fn counts_and_pass_logic() {
        let diags = sample();
        assert_eq!(diags.len(), 3);
        assert_eq!(diags.errors(), 1);
        assert_eq!(diags.warnings(), 1);
        assert_eq!(diags.notes(), 1);
        assert!(diags.has_errors());
        assert!(!diags.passes(false));
        assert!(!diags.is_clean());
        assert_eq!(diags.summary(), "1 error, 1 warning, 1 note");

        let mut warn_only = Diagnostics::new();
        warn_only.push(Diagnostic::warning(Code(20), "dup"));
        assert!(warn_only.passes(false));
        assert!(!warn_only.passes(true), "--deny-warnings promotes warnings");

        let mut notes_only = Diagnostics::new();
        notes_only.push(Diagnostic::note(Code(40), "hotspot"));
        assert!(notes_only.passes(true), "notes never fail a check");
        assert!(notes_only.is_clean());

        assert!(Diagnostics::new().passes(true));
        assert_eq!(Diagnostics::new().summary(), "no findings");
    }

    #[test]
    fn text_rendering_snapshot() {
        let rendered = sample().render_text();
        let expected = "\
error[SDBP002]: table size 3000 is not a power of two
  --> bad.spec:3 (size)
  = help: use 2048 or 4096
warning[SDBP022]: hint for 0x40 targets a branch the profile never saw
  --> <args> (hints)
  = note: the profile observed 12 branches
note[SDBP040]: predicted hotspot at 0x80
";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn json_rendering_snapshot() {
        let rendered = sample().to_json();
        let expected = concat!(
            "{\"diagnostics\":[",
            "{\"code\":\"SDBP002\",\"severity\":\"error\",",
            "\"message\":\"table size 3000 is not a power of two\",",
            "\"origin\":\"bad.spec\",\"field\":\"size\",\"line\":3,",
            "\"suggestion\":\"use 2048 or 4096\"},",
            "{\"code\":\"SDBP022\",\"severity\":\"warning\",",
            "\"message\":\"hint for 0x40 targets a branch the profile never saw\",",
            "\"origin\":\"<args>\",\"field\":\"hints\",",
            "\"notes\":[\"the profile observed 12 branches\"]},",
            "{\"code\":\"SDBP040\",\"severity\":\"note\",",
            "\"message\":\"predicted hotspot at 0x80\"}",
            "],\"errors\":1,\"warnings\":1,\"notes\":1}"
        );
        assert_eq!(rendered, expected);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn merge_preserves_order() {
        let mut a = Diagnostics::new();
        a.push(Diagnostic::error(Code(1), "first"));
        let mut b = Diagnostics::new();
        b.push(Diagnostic::note(Code(40), "second"));
        a.merge(b);
        let codes: Vec<Code> = a.iter().map(|d| d.code).collect();
        assert_eq!(codes, [Code(1), Code(40)]);
    }
}
