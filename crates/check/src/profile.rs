//! Profile lints: metadata cross-checks and database stability.
//!
//! Profiles written by `sdbp profile` carry their provenance as `# key
//! value` header comments ([`BiasProfile::from_text`] skips comments, so
//! the header costs nothing downstream). [`parse_profile_text`] recovers
//! that metadata and re-parses the data lines with per-line diagnostics;
//! [`lint_profile_against_spec`] compares the metadata with the spec that
//! wants to consume the profile; [`lint_profile_database`] checks a
//! multi-run database for sites that moved bias between runs — the
//! cross-training hazard of the paper's §5.1.

use crate::codes;
use crate::diag::{Diagnostic, Diagnostics, Span};
use sdbp_core::ExperimentSpec;
use sdbp_profiles::{BiasProfile, ProfileDatabase};
use sdbp_trace::{BranchAddr, SiteStats};

/// Provenance metadata recovered from a profile's header comments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileMetadata {
    /// `# benchmark <name>`.
    pub benchmark: Option<String>,
    /// `# input <train|ref>`.
    pub input: Option<String>,
    /// `# seed <n>`.
    pub seed: Option<u64>,
    /// `# instructions <n>`.
    pub instructions: Option<u64>,
}

/// Parses a profile file: header metadata plus `"<hex pc> <executed>
/// <taken>"` data lines.
///
/// Unlike [`BiasProfile::from_text`], which stops at the first bad line,
/// every malformed line is reported (SDBP035) and the well-formed remainder
/// is still returned. An empty profile is SDBP033.
pub fn parse_profile_text(text: &str, origin: &str) -> (BiasProfile, ProfileMetadata, Diagnostics) {
    let mut diags = Diagnostics::new();
    let mut profile = BiasProfile::new();
    let mut metadata = ProfileMetadata::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some((key, value)) = comment.trim().split_once(char::is_whitespace) {
                let value = value.trim();
                match key {
                    "benchmark" => metadata.benchmark = Some(value.to_string()),
                    "input" => metadata.input = Some(value.to_string()),
                    "seed" => metadata.seed = value.parse().ok(),
                    "instructions" => metadata.instructions = value.parse().ok(),
                    _ => {}
                }
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let pc = parts
            .next()
            .and_then(|p| u64::from_str_radix(p.trim_start_matches("0x"), 16).ok());
        let executed = parts.next().and_then(|p| p.parse::<u64>().ok());
        let taken = parts.next().and_then(|p| p.parse::<u64>().ok());
        match (pc, executed, taken) {
            (Some(pc), Some(executed), Some(taken)) if taken <= executed => {
                profile.insert(BranchAddr(pc), SiteStats { executed, taken });
            }
            (Some(_), Some(executed), Some(taken)) => diags.push(
                Diagnostic::error(
                    codes::PROFILE_PARSE_ERROR,
                    format!("taken count {taken} exceeds executed count {executed}"),
                )
                .with_span(Span::line(origin, "profile", line_no)),
            ),
            _ => diags.push(
                Diagnostic::error(
                    codes::PROFILE_PARSE_ERROR,
                    format!("malformed profile line '{line}'"),
                )
                .with_span(Span::line(origin, "profile", line_no))
                .with_note("expected '<hex pc> <executed> <taken>'"),
            ),
        }
    }
    if profile.is_empty() {
        diags.push(
            Diagnostic::warning(codes::EMPTY_PROFILE, "profile contains no branches")
                .with_span(Span::field(origin, "profile"))
                .with_suggestion("re-profile with a non-zero instruction budget"),
        );
    }
    (profile, metadata, diags)
}

/// Cross-checks a profile's provenance against the spec consuming it:
/// SDBP030 (benchmark mismatch — an error, the hints would describe a
/// different program), SDBP031 (seed mismatch), SDBP032 (budget mismatch).
///
/// Missing metadata is not reported; pre-header profiles stay usable.
pub fn lint_profile_against_spec(
    metadata: &ProfileMetadata,
    spec: &ExperimentSpec,
    origin: &str,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if let Some(benchmark) = &metadata.benchmark {
        if benchmark != spec.benchmark.name() {
            diags.push(
                Diagnostic::error(
                    codes::PROFILE_BENCHMARK_MISMATCH,
                    format!(
                        "profile was collected on {benchmark}, but the spec runs {}",
                        spec.benchmark.name()
                    ),
                )
                .with_span(Span::field(origin, "benchmark"))
                .with_note("hints from another program's branches are meaningless"),
            );
        }
    }
    if let Some(seed) = metadata.seed {
        if seed != spec.seed {
            diags.push(
                Diagnostic::warning(
                    codes::PROFILE_SEED_MISMATCH,
                    format!(
                        "profile was collected under seed {seed}, but the spec uses seed {}",
                        spec.seed
                    ),
                )
                .with_span(Span::field(origin, "seed"))
                .with_note("branch addresses differ across seeds; most hints will be stale"),
            );
        }
    }
    if let Some(instructions) = metadata.instructions {
        let expected = spec.profile_budget();
        if instructions != expected {
            diags.push(
                Diagnostic::warning(
                    codes::PROFILE_BUDGET_MISMATCH,
                    format!(
                        "profile covers {instructions} instructions, but the spec \
                         profiles {expected}"
                    ),
                )
                .with_span(Span::field(origin, "instructions")),
            );
        }
    }
    diags
}

/// Checks a multi-run [`ProfileDatabase`] for branches whose taken-rate
/// moved by more than `max_bias_change` between runs (SDBP034) — the
/// branches the paper's merged/filtered Spike database drops before
/// cross-trained hint selection.
pub fn lint_profile_database(
    db: &ProfileDatabase,
    max_bias_change: f64,
    origin: &str,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if db.num_runs() < 2 {
        return diags;
    }
    let unstable = db.unstable_sites(max_bias_change);
    if unstable.is_empty() {
        return diags;
    }
    let mut sample: Vec<BranchAddr> = unstable.iter().copied().collect();
    sample.sort_unstable();
    let shown: Vec<String> = sample.iter().take(5).map(|pc| pc.to_string()).collect();
    diags.push(
        Diagnostic::warning(
            codes::UNSTABLE_PROFILE_SITES,
            format!(
                "{} branches moved taken-rate by more than {:.0}% between the \
                 database's {} runs (e.g. {})",
                unstable.len(),
                100.0 * max_bias_change,
                db.num_runs(),
                shown.join(", ")
            ),
        )
        .with_span(Span::field(origin, "runs"))
        .with_suggestion("select hints from merged_stable() to drop the movers"),
    );
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::{PredictorConfig, PredictorKind};
    use sdbp_profiles::SelectionScheme;
    use sdbp_workloads::Benchmark;

    fn codes_of(diags: &Diagnostics) -> Vec<u16> {
        diags.iter().map(|d| d.code.0).collect()
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::self_trained(
            Benchmark::Compress,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
            SelectionScheme::None,
        )
        .with_instructions(300_000)
    }

    #[test]
    fn parses_header_and_data() {
        let text = "\
# benchmark compress
# input ref
# seed 2000
# instructions 300000
100 1000 990
104 50 0
";
        let (profile, metadata, diags) = parse_profile_text(text, "<t>");
        assert!(diags.is_empty(), "{}", diags.render_text());
        assert_eq!(profile.len(), 2);
        assert_eq!(metadata.benchmark.as_deref(), Some("compress"));
        assert_eq!(metadata.input.as_deref(), Some("ref"));
        assert_eq!(metadata.seed, Some(2000));
        assert_eq!(metadata.instructions, Some(300_000));
    }

    #[test]
    fn malformed_lines_are_sdbp035_and_do_not_stop_the_parse() {
        let (profile, _, diags) = parse_profile_text("100 1000 990\nzzz\n104 10 20\n", "<t>");
        assert_eq!(codes_of(&diags), [35, 35]);
        assert_eq!(profile.len(), 1, "good lines survive");
    }

    #[test]
    fn empty_profile_is_sdbp033() {
        let (_, _, diags) = parse_profile_text("# benchmark gcc\n", "<t>");
        assert_eq!(codes_of(&diags), [33]);
        assert!(!diags.has_errors());
    }

    #[test]
    fn metadata_mismatches_cross_check_against_the_spec() {
        let metadata = ProfileMetadata {
            benchmark: Some("gcc".to_string()),
            input: Some("ref".to_string()),
            seed: Some(1),
            instructions: Some(42),
        };
        let diags = lint_profile_against_spec(&metadata, &spec(), "<t>");
        assert_eq!(codes_of(&diags), [30, 31, 32]);
        assert_eq!(diags.errors(), 1, "only the benchmark mismatch is fatal");
    }

    #[test]
    fn matching_or_absent_metadata_is_clean() {
        let matching = ProfileMetadata {
            benchmark: Some("compress".to_string()),
            input: Some("ref".to_string()),
            seed: Some(2000),
            instructions: Some(300_000),
        };
        assert!(lint_profile_against_spec(&matching, &spec(), "<t>").is_empty());
        assert!(lint_profile_against_spec(&ProfileMetadata::default(), &spec(), "<t>").is_empty());
    }

    #[test]
    fn unstable_database_sites_are_sdbp034() {
        let mut stable = BiasProfile::new();
        stable.insert(
            BranchAddr(0x100),
            SiteStats {
                executed: 1000,
                taken: 990,
            },
        );
        let mut moved = BiasProfile::new();
        moved.insert(
            BranchAddr(0x100),
            SiteStats {
                executed: 1000,
                taken: 100,
            },
        );
        let mut db = ProfileDatabase::new("compress");
        db.add_run("train", stable.clone());
        db.add_run("ref", moved);
        let diags = lint_profile_database(&db, 0.05, "<t>");
        assert_eq!(codes_of(&diags), [34]);
        assert!(diags.iter().next().unwrap().message.contains("1 branches"));

        let mut consistent = ProfileDatabase::new("compress");
        consistent.add_run("train", stable.clone());
        consistent.add_run("ref", stable);
        assert!(lint_profile_database(&consistent, 0.05, "<t>").is_empty());
    }

    #[test]
    fn single_run_databases_cannot_be_unstable() {
        let mut db = ProfileDatabase::new("compress");
        db.add_run("train", BiasProfile::new());
        assert!(lint_profile_database(&db, 0.05, "<t>").is_empty());
    }
}
