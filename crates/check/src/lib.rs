//! Static analysis and coded diagnostics for experiment configurations.
//!
//! A rustc-style checking engine that validates everything an experiment
//! depends on *before* simulation: specs, hint databases, profiles, and the
//! predictor's aliasing behavior. Every finding carries a stable code
//! (`SDBP001`…), a severity, a span naming its origin, and — where a fix is
//! mechanical — a suggestion. Findings render as rustc-like text or as
//! JSON ([`Diagnostics::render_text`] / [`Diagnostics::to_json`]).
//!
//! The layers:
//!
//! * [`diag`] — the diagnostic core: [`Code`], [`Severity`], [`Span`],
//!   [`Diagnostic`], [`Diagnostics`].
//! * [`codes`] — the stable code registry (`docs/diagnostics.md` catalogs
//!   the same table).
//! * [`spec`] — spec-file parsing and semantic spec lints.
//! * [`hints`] — hint-database consistency and profile cross-checks.
//! * [`profile`] — profile metadata, parse, and stability lints.
//! * [`aliasing`] — the static destructive-aliasing analyzer: evaluates the
//!   predictor's index function over profiled branches and ranks predicted
//!   interference hotspots, cross-checked against simulator measurements.
//! * [`index_analysis`] — the exact GF(2) index-function analysis: proves
//!   collision classes, dead history bits, rank deficiencies, and
//!   all-history aliasing pairs for predictors with affine index functions.
//! * [`trace`] — admission lints for imported branch traces, run by
//!   `sdbp ingest` before an external file becomes a benchmark.
//!
//! # Pre-flight integration
//!
//! [`preflight`] condenses the spec lints into the `Result<(), String>`
//! shape [`sdbp_core::Lab::with_preflight`] and
//! [`sdbp_core::Sweep::with_preflight`] accept; [`preflight_hook`] wraps it
//! as an installable [`PreflightFn`]:
//!
//! ```
//! use sdbp_core::{ExperimentSpec, Lab};
//! use sdbp_predictors::{PredictorConfig, PredictorKind};
//! use sdbp_profiles::SelectionScheme;
//! use sdbp_workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lab = Lab::new().with_preflight(sdbp_check::preflight_hook());
//! let spec = ExperimentSpec::self_trained(
//!     Benchmark::Compress,
//!     PredictorConfig::new(PredictorKind::Gshare, 1024)?,
//!     SelectionScheme::Bias { cutoff: 2.0 }, // out of range
//! );
//! assert!(lab.run(&spec).is_err());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aliasing;
pub mod codes;
pub mod diag;
pub mod hints;
pub mod index_analysis;
pub mod manifest;
pub mod profile;
pub mod spec;
pub mod trace;

pub use aliasing::{analyze_aliasing, lint_aliasing, AliasingOptions, AliasingReport, Hotspot};
pub use codes::{lookup, CodeInfo, REGISTRY};
pub use diag::{Code, Diagnostic, Diagnostics, Severity, Span};
pub use hints::{lint_hints_against_profile, parse_hints_text, HintLintOptions};
pub use index_analysis::{lint_facts, lint_index_analysis, IndexAnalysisOptions};
pub use manifest::lint_manifest_text;
pub use profile::{
    lint_profile_against_spec, lint_profile_database, parse_profile_text, ProfileMetadata,
};
pub use spec::{lint_spec, lint_spec_with_history, parse_spec_text, ParsedSpec, SPEC_KEYS};
pub use trace::{lint_trace_path, lint_trace_scan};

use sdbp_core::{ExperimentSpec, PreflightFn};
use std::sync::Arc;

/// Checks a spec the way a pre-flight hook does: clean (or note-only) specs
/// pass; errors *and warnings* reject, with the rendered diagnostics as the
/// reason.
///
/// Warnings reject here deliberately: a pre-flight hook guards long
/// unattended sweeps, where a dubious cell wastes hours before anyone reads
/// a warning. Interactive flows (`sdbp check`) apply warnings more gently.
///
/// # Errors
///
/// The rendered diagnostic text of every finding.
pub fn preflight(spec: &ExperimentSpec) -> Result<(), String> {
    let diags = lint_spec(spec, "<spec>");
    if diags.is_clean() {
        Ok(())
    } else {
        Err(diags.render_text())
    }
}

/// [`preflight`] as an installable hook for
/// [`Lab::with_preflight`](sdbp_core::Lab::with_preflight) and
/// [`Sweep::with_preflight`](sdbp_core::Sweep::with_preflight).
pub fn preflight_hook() -> PreflightFn {
    Arc::new(preflight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_core::{ExperimentError, Lab, Sweep};
    use sdbp_predictors::{PredictorConfig, PredictorKind};
    use sdbp_profiles::SelectionScheme;
    use sdbp_workloads::Benchmark;

    fn spec(scheme: SelectionScheme) -> ExperimentSpec {
        ExperimentSpec::self_trained(
            Benchmark::Compress,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
            scheme,
        )
        .with_instructions(300_000)
    }

    #[test]
    fn preflight_passes_clean_specs_and_rejects_bad_ones() {
        assert!(preflight(&spec(SelectionScheme::None)).is_ok());
        assert!(preflight(&spec(SelectionScheme::static_95())).is_ok());
        let reason = preflight(&spec(SelectionScheme::Bias { cutoff: 2.0 })).unwrap_err();
        assert!(reason.contains("SDBP007"), "{reason}");
    }

    #[test]
    fn preflight_tolerates_note_only_findings() {
        // EGskew at 8 KB cannot realize its budget exactly — a note, and
        // notes must not reject the paper's own suite configurations.
        let s = ExperimentSpec::self_trained(
            Benchmark::Compress,
            PredictorConfig::new(PredictorKind::EGskew, 8192).unwrap(),
            SelectionScheme::None,
        )
        .with_instructions(300_000);
        assert!(preflight(&s).is_ok());
    }

    #[test]
    fn hook_installs_into_lab_and_sweep() {
        let lab = Lab::new().with_preflight(preflight_hook());
        match lab.run(&spec(SelectionScheme::Bias { cutoff: 2.0 })) {
            Err(ExperimentError::Rejected { reason }) => {
                assert!(reason.contains("SDBP007"), "{reason}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }

        let result = Sweep::new([
            spec(SelectionScheme::None),
            spec(SelectionScheme::Bias { cutoff: 2.0 }),
        ])
        .with_threads(1)
        .with_preflight(preflight_hook())
        .run();
        assert!(result.cells[0].report.is_ok());
        assert!(matches!(
            result.cells[1].report,
            Err(ExperimentError::Rejected { .. })
        ));
    }
}
