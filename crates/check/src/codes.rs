//! The stable diagnostic-code registry.
//!
//! Every lint the crate can emit is declared here once, with its default
//! severity and a one-line summary. `docs/diagnostics.md` catalogs the same
//! codes with examples and fixes; a test asserts the two stay in sync.

use crate::diag::{Code, Severity};

/// SDBP001: the predictor name is not a known scheme.
pub const UNKNOWN_PREDICTOR: Code = Code(1);
/// SDBP002: the table size is not a power of two.
pub const SIZE_NOT_POWER_OF_TWO: Code = Code(2);
/// SDBP003: the table size is below the scheme's minimum.
pub const SIZE_BELOW_MINIMUM: Code = Code(3);
/// SDBP004: the configured byte budget is not exactly realizable.
pub const BUDGET_NOT_REALIZABLE: Code = Code(4);
/// SDBP005: the history length is outside `1..=index_bits`.
pub const HISTORY_LENGTH_INVALID: Code = Code(5);
/// SDBP006: a history length was given for a history-free scheme.
pub const HISTORY_ON_HISTORY_FREE: Code = Code(6);
/// SDBP007: a selection-scheme parameter is out of range.
pub const SCHEME_PARAMETER_OUT_OF_RANGE: Code = Code(7);
/// SDBP008: an instruction budget is zero.
pub const ZERO_INSTRUCTION_BUDGET: Code = Code(8);
/// SDBP009: warm-up consumes the whole measurement budget.
pub const WARMUP_EXCEEDS_BUDGET: Code = Code(9);
/// SDBP010: the profiling budget is dwarfed by the measurement budget.
pub const PROFILE_BUDGET_DWARFED: Code = Code(10);
/// SDBP011: history shifting is configured on a history-free predictor.
pub const SHIFT_POLICY_INEFFECTIVE: Code = Code(11);
/// SDBP012: the selection-scheme name is not recognized.
pub const UNKNOWN_SCHEME: Code = Code(12);
/// SDBP013: the benchmark name is not recognized.
pub const UNKNOWN_BENCHMARK: Code = Code(13);
/// SDBP014: a field value failed to parse.
pub const MALFORMED_FIELD_VALUE: Code = Code(14);
/// SDBP015: a spec key is not recognized.
pub const UNKNOWN_SPEC_FIELD: Code = Code(15);

/// SDBP020: the same hint appears twice.
pub const DUPLICATE_HINT: Code = Code(20);
/// SDBP021: two hints for one branch disagree on direction.
pub const CONFLICTING_HINT: Code = Code(21);
/// SDBP022: a hint targets a branch the profile never observed.
pub const STALE_HINT: Code = Code(22);
/// SDBP023: a hint contradicts the profiled majority direction.
pub const HINT_CONTRADICTS_PROFILE: Code = Code(23);
/// SDBP024: a strongly biased, hot profiled branch has no hint.
pub const HINT_COVERAGE_GAP: Code = Code(24);
/// SDBP025: a hint line failed to parse.
pub const HINT_PARSE_ERROR: Code = Code(25);

/// SDBP030: the profile's benchmark metadata contradicts the spec.
pub const PROFILE_BENCHMARK_MISMATCH: Code = Code(30);
/// SDBP031: the profile's seed metadata contradicts the spec.
pub const PROFILE_SEED_MISMATCH: Code = Code(31);
/// SDBP032: the profile's instruction-budget metadata contradicts the spec.
pub const PROFILE_BUDGET_MISMATCH: Code = Code(32);
/// SDBP033: the profile contains no branches.
pub const EMPTY_PROFILE: Code = Code(33);
/// SDBP034: branches moved bias between the database's runs.
pub const UNSTABLE_PROFILE_SITES: Code = Code(34);
/// SDBP035: a profile line failed to parse.
pub const PROFILE_PARSE_ERROR: Code = Code(35);

/// SDBP040: a predicted destructive-aliasing hotspot.
pub const ALIASING_HOTSPOT: Code = Code(40);
/// SDBP041: the scheme does not expose its index function.
pub const ALIASING_OPAQUE_SCHEME: Code = Code(41);
/// SDBP042: static_collide selected for an analysis-opaque predictor.
pub const COLLIDE_ON_OPAQUE_PREDICTOR: Code = Code(42);

/// SDBP050: a manifest line failed to parse.
pub const MANIFEST_PARSE_ERROR: Code = Code(50);
/// SDBP051: a manifest record disagrees with this build's schema.
pub const MANIFEST_SCHEMA_MISMATCH: Code = Code(51);
/// SDBP052: the same cell index appears in more than one record.
pub const MANIFEST_DUPLICATE_CELL: Code = Code(52);
/// SDBP053: a cell's latest record is a failure.
pub const MANIFEST_CELL_FAILED: Code = Code(53);
/// SDBP054: the manifest ends in a torn (partially written) line.
pub const MANIFEST_TORN_TAIL: Code = Code(54);

/// SDBP060: a table's guaranteed-collision PC classes (kernel of `A`).
pub const GUARANTEED_COLLISION_CLASSES: Code = Code(60);
/// SDBP061: history bits that provably never reach any table index.
pub const DEAD_HISTORY_BITS: Code = Code(61);
/// SDBP062: a table whose index function cannot reach all its entries.
pub const RANK_DEFICIENT_TABLE: Code = Code(62);
/// SDBP063: two profiled branches proven to collide at every history.
pub const PROVEN_ALIASING_PAIR: Code = Code(63);
/// SDBP064: the exact GF(2) analysis does not apply to this scheme.
pub const INDEX_ANALYSIS_UNAVAILABLE: Code = Code(64);

/// SDBP070: an imported trace file cannot be read or its header is invalid.
pub const TRACE_UNREADABLE: Code = Code(70);
/// SDBP071: no importer recognizes the trace file's content.
pub const TRACE_FORMAT_UNKNOWN: Code = Code(71);
/// SDBP072: trace decoding stopped early (truncation or corruption).
pub const TRACE_MALFORMED: Code = Code(72);
/// SDBP073: the trace's conditional-branch density is implausible.
pub const TRACE_IMPLAUSIBLE_DENSITY: Code = Code(73);
/// SDBP074: the trace's outcomes carry no signal.
pub const TRACE_DEGENERATE_OUTCOMES: Code = Code(74);
/// SDBP075: the admission summary for an imported trace.
pub const TRACE_SUMMARY: Code = Code(75);

/// One registry entry.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// The stable code.
    pub code: Code,
    /// Kebab-case lint name.
    pub name: &'static str,
    /// Default severity when emitted.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every code the crate can emit, in numeric order.
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: UNKNOWN_PREDICTOR,
        name: "unknown-predictor",
        severity: Severity::Error,
        summary: "the predictor name is not a known scheme",
    },
    CodeInfo {
        code: SIZE_NOT_POWER_OF_TWO,
        name: "size-not-power-of-two",
        severity: Severity::Error,
        summary: "the table size in bytes is not a power of two",
    },
    CodeInfo {
        code: SIZE_BELOW_MINIMUM,
        name: "size-below-minimum",
        severity: Severity::Error,
        summary: "the table size is below the scheme's minimum",
    },
    CodeInfo {
        code: BUDGET_NOT_REALIZABLE,
        name: "budget-not-realizable",
        severity: Severity::Note,
        summary: "the scheme's bank split cannot realize the byte budget exactly",
    },
    CodeInfo {
        code: HISTORY_LENGTH_INVALID,
        name: "history-length-invalid",
        severity: Severity::Error,
        summary: "the history length is outside 1..=index_bits of the table",
    },
    CodeInfo {
        code: HISTORY_ON_HISTORY_FREE,
        name: "history-on-history-free",
        severity: Severity::Warning,
        summary: "a history length was configured for a scheme that keeps no usable global history",
    },
    CodeInfo {
        code: SCHEME_PARAMETER_OUT_OF_RANGE,
        name: "scheme-parameter-out-of-range",
        severity: Severity::Error,
        summary: "a selection-scheme parameter is outside its meaningful range",
    },
    CodeInfo {
        code: ZERO_INSTRUCTION_BUDGET,
        name: "zero-instruction-budget",
        severity: Severity::Error,
        summary: "a profiling or measurement instruction budget is zero",
    },
    CodeInfo {
        code: WARMUP_EXCEEDS_BUDGET,
        name: "warmup-exceeds-budget",
        severity: Severity::Error,
        summary: "the warm-up window consumes the whole measurement budget",
    },
    CodeInfo {
        code: PROFILE_BUDGET_DWARFED,
        name: "profile-budget-dwarfed",
        severity: Severity::Warning,
        summary: "the profiling budget is less than 2% of the measurement budget",
    },
    CodeInfo {
        code: SHIFT_POLICY_INEFFECTIVE,
        name: "shift-policy-ineffective",
        severity: Severity::Warning,
        summary: "history shifting is configured on a predictor without global history",
    },
    CodeInfo {
        code: UNKNOWN_SCHEME,
        name: "unknown-scheme",
        severity: Severity::Error,
        summary: "the selection-scheme name is not recognized",
    },
    CodeInfo {
        code: UNKNOWN_BENCHMARK,
        name: "unknown-benchmark",
        severity: Severity::Error,
        summary: "the benchmark name is not recognized",
    },
    CodeInfo {
        code: MALFORMED_FIELD_VALUE,
        name: "malformed-field-value",
        severity: Severity::Error,
        summary: "a spec field value failed to parse",
    },
    CodeInfo {
        code: UNKNOWN_SPEC_FIELD,
        name: "unknown-spec-field",
        severity: Severity::Warning,
        summary: "a spec key is not recognized and was ignored",
    },
    CodeInfo {
        code: DUPLICATE_HINT,
        name: "duplicate-hint",
        severity: Severity::Warning,
        summary: "the same branch hint appears more than once",
    },
    CodeInfo {
        code: CONFLICTING_HINT,
        name: "conflicting-hint",
        severity: Severity::Error,
        summary: "two hints for one branch disagree on direction",
    },
    CodeInfo {
        code: STALE_HINT,
        name: "stale-hint",
        severity: Severity::Warning,
        summary: "a hint targets a branch the paired profile never observed",
    },
    CodeInfo {
        code: HINT_CONTRADICTS_PROFILE,
        name: "hint-contradicts-profile",
        severity: Severity::Warning,
        summary: "a hint direction contradicts the profiled majority direction",
    },
    CodeInfo {
        code: HINT_COVERAGE_GAP,
        name: "hint-coverage-gap",
        severity: Severity::Note,
        summary: "a strongly biased, frequently executed branch has no hint decision",
    },
    CodeInfo {
        code: HINT_PARSE_ERROR,
        name: "hint-parse-error",
        severity: Severity::Error,
        summary: "a hint line failed to parse",
    },
    CodeInfo {
        code: PROFILE_BENCHMARK_MISMATCH,
        name: "profile-benchmark-mismatch",
        severity: Severity::Error,
        summary: "the profile was collected on a different benchmark than the spec uses",
    },
    CodeInfo {
        code: PROFILE_SEED_MISMATCH,
        name: "profile-seed-mismatch",
        severity: Severity::Warning,
        summary: "the profile was collected under a different seed than the spec uses",
    },
    CodeInfo {
        code: PROFILE_BUDGET_MISMATCH,
        name: "profile-budget-mismatch",
        severity: Severity::Warning,
        summary: "the profile was collected under a different instruction budget than the spec",
    },
    CodeInfo {
        code: EMPTY_PROFILE,
        name: "empty-profile",
        severity: Severity::Warning,
        summary: "the profile contains no branches",
    },
    CodeInfo {
        code: UNSTABLE_PROFILE_SITES,
        name: "unstable-profile-sites",
        severity: Severity::Warning,
        summary: "branches changed bias between the database's runs",
    },
    CodeInfo {
        code: PROFILE_PARSE_ERROR,
        name: "profile-parse-error",
        severity: Severity::Error,
        summary: "a profile line failed to parse",
    },
    CodeInfo {
        code: ALIASING_HOTSPOT,
        name: "aliasing-hotspot",
        severity: Severity::Note,
        summary: "static analysis predicts this branch is a destructive-aliasing hotspot",
    },
    CodeInfo {
        code: ALIASING_OPAQUE_SCHEME,
        name: "aliasing-opaque-scheme",
        severity: Severity::Note,
        summary: "the scheme does not expose its index function to static analysis",
    },
    CodeInfo {
        code: COLLIDE_ON_OPAQUE_PREDICTOR,
        name: "collide-on-opaque-predictor",
        severity: Severity::Warning,
        summary: "static_collide was requested for a predictor opaque to static analysis",
    },
    CodeInfo {
        code: MANIFEST_PARSE_ERROR,
        name: "manifest-parse-error",
        severity: Severity::Error,
        summary: "a run-manifest line failed to parse",
    },
    CodeInfo {
        code: MANIFEST_SCHEMA_MISMATCH,
        name: "manifest-schema-mismatch",
        severity: Severity::Error,
        summary:
            "a run-manifest record names a benchmark, predictor, or scheme this build does not know",
    },
    CodeInfo {
        code: MANIFEST_DUPLICATE_CELL,
        name: "manifest-duplicate-cell",
        severity: Severity::Warning,
        summary: "the same cell index appears in more than one manifest record",
    },
    CodeInfo {
        code: MANIFEST_CELL_FAILED,
        name: "manifest-cell-failed",
        severity: Severity::Warning,
        summary: "a cell's latest manifest record is a failure",
    },
    CodeInfo {
        code: MANIFEST_TORN_TAIL,
        name: "manifest-torn-tail",
        severity: Severity::Note,
        summary: "the manifest ends in a torn, partially written line (interrupted run)",
    },
    CodeInfo {
        code: GUARANTEED_COLLISION_CLASSES,
        name: "guaranteed-collision-classes",
        severity: Severity::Note,
        summary: "PC classes proven to share one table entry at every history",
    },
    CodeInfo {
        code: DEAD_HISTORY_BITS,
        name: "dead-history-bits",
        severity: Severity::Note,
        summary: "history register bits that provably never reach any table index",
    },
    CodeInfo {
        code: RANK_DEFICIENT_TABLE,
        name: "rank-deficient-table",
        severity: Severity::Note,
        summary: "a table whose index function provably cannot reach all its entries",
    },
    CodeInfo {
        code: PROVEN_ALIASING_PAIR,
        name: "proven-aliasing-pair",
        severity: Severity::Note,
        summary: "two opposing profiled branches proven to collide at every history",
    },
    CodeInfo {
        code: INDEX_ANALYSIS_UNAVAILABLE,
        name: "index-analysis-unavailable",
        severity: Severity::Note,
        summary: "the scheme's index function is not affine, so the exact analysis does not apply",
    },
    CodeInfo {
        code: TRACE_UNREADABLE,
        name: "trace-unreadable",
        severity: Severity::Error,
        summary: "an imported trace file cannot be read or its header is invalid",
    },
    CodeInfo {
        code: TRACE_FORMAT_UNKNOWN,
        name: "trace-format-unknown",
        severity: Severity::Error,
        summary: "no importer recognizes the trace file's content",
    },
    CodeInfo {
        code: TRACE_MALFORMED,
        name: "trace-malformed",
        severity: Severity::Error,
        summary: "trace decoding stopped early: the file is truncated or corrupt",
    },
    CodeInfo {
        code: TRACE_IMPLAUSIBLE_DENSITY,
        name: "trace-implausible-density",
        severity: Severity::Warning,
        summary: "the trace's conditional-branch density is outside the plausible range",
    },
    CodeInfo {
        code: TRACE_DEGENERATE_OUTCOMES,
        name: "trace-degenerate-outcomes",
        severity: Severity::Warning,
        summary: "the trace's outcomes carry no signal (empty, single-site, or one-direction)",
    },
    CodeInfo {
        code: TRACE_SUMMARY,
        name: "trace-summary",
        severity: Severity::Note,
        summary: "the admission summary of an imported trace's scanned statistics",
    },
];

/// Looks up a code's registry entry.
pub fn lookup(code: Code) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|info| info.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(
                pair[0].code < pair[1].code,
                "{} must precede {}",
                pair[0].code,
                pair[1].code
            );
        }
    }

    #[test]
    fn lookup_finds_every_code() {
        for info in REGISTRY {
            let found = lookup(info.code).unwrap();
            assert_eq!(found.name, info.name);
        }
        assert!(lookup(Code(999)).is_none());
    }

    #[test]
    fn docs_catalog_every_code() {
        let doc = include_str!("../../../docs/diagnostics.md");
        for info in REGISTRY {
            let code = format!("{}", info.code);
            assert!(doc.contains(&code), "docs/diagnostics.md is missing {code}");
            assert!(
                doc.contains(info.name),
                "docs/diagnostics.md is missing the name of {code} ({})",
                info.name
            );
        }
    }

    #[test]
    fn names_are_kebab_case() {
        for info in REGISTRY {
            assert!(
                info.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{}",
                info.name
            );
        }
    }
}
