//! Static destructive-aliasing analysis.
//!
//! The paper's central quantity — destructive interference between branches
//! sharing a table entry — is normally measured by simulation. This module
//! *predicts* it from a bias profile alone: it evaluates the predictor's
//! index function (exposed through
//! [`DynamicPredictor::probe_indices`]) over every profiled branch under a
//! sample of global histories, accumulates per-entry taken/not-taken mass,
//! and scores each branch by how much opposing mass it shares entries
//! with. The ranking correlates with the simulator's measured
//! destructive-collision counts (a pinned test cross-checks this), which is
//! what makes `sdbp check --aliasing` useful before committing to a long
//! measurement run.

use crate::codes;
use crate::diag::{Diagnostic, Diagnostics, Span};
use sdbp_predictors::{DynamicPredictor, PredictorConfig};
use sdbp_profiles::BiasProfile;
use sdbp_trace::BranchAddr;
use std::collections::HashMap;

/// Tuning knobs for [`analyze_aliasing`].
#[derive(Debug, Clone, Copy)]
pub struct AliasingOptions {
    /// Histories are enumerated exhaustively up to `2^exhaustive_bits`;
    /// longer histories are sampled.
    pub exhaustive_bits: u32,
    /// Number of sampled history values for long histories.
    pub history_samples: usize,
    /// Number of hotspots reported as SDBP040 notes by [`lint_aliasing`].
    pub top: usize,
}

impl Default for AliasingOptions {
    fn default() -> Self {
        Self {
            exhaustive_bits: 10,
            history_samples: 256,
            top: 10,
        }
    }
}

/// One predicted hotspot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// The branch.
    pub pc: BranchAddr,
    /// Predicted destructive-interference mass (executions expected to meet
    /// an entry trained the opposite way by *other* branches).
    pub score: f64,
    /// Profiled execution count.
    pub executed: u64,
}

/// The analyzer's output.
#[derive(Debug, Clone)]
pub struct AliasingReport {
    /// Branches ranked by descending predicted destructive interference
    /// (ties broken by address). Zero-score branches are omitted.
    pub hotspots: Vec<Hotspot>,
    /// Sum of all hotspot scores.
    pub total_score: f64,
    /// Distinct `(bank, entry)` cells touched.
    pub cells_touched: usize,
    /// Profiled branches analyzed.
    pub branches: usize,
}

/// `splitmix64`, the standard 64-bit mix — deterministic history sampling
/// without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn history_samples(bits: u32, options: &AliasingOptions) -> Vec<u64> {
    if bits == 0 {
        return vec![0];
    }
    if bits <= options.exhaustive_bits {
        return (0..(1u64 << bits)).collect();
    }
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut state = 0x5db9_d00d_2000_u64; // fixed seed: analysis is deterministic
    let mut samples: Vec<u64> = (0..options.history_samples)
        .map(|_| splitmix64(&mut state) & mask)
        .collect();
    samples.sort_unstable();
    samples.dedup();
    samples
}

/// Statically analyzes destructive aliasing of `config` on the branches in
/// `profile`.
///
/// Returns `None` when the scheme does not expose its index function
/// ([`DynamicPredictor::probe_indices`] returns `false`).
///
/// The model: every profiled branch deposits its per-history share of
/// taken/not-taken mass into each `(bank, entry)` cell its index function
/// can reach; a branch's destructive score is its mass in a cell times the
/// fraction of that cell's mass trained the opposite way by *other*
/// branches. Self-interference (a mixed branch fighting itself) is
/// excluded — that is mispredictability, not aliasing.
pub fn analyze_aliasing(
    profile: &BiasProfile,
    config: PredictorConfig,
    options: &AliasingOptions,
) -> Option<AliasingReport> {
    let predictor = config.build();
    let mut scratch = Vec::new();
    // Deterministic order: HashMap iteration must not leak into float sums.
    let mut branches: Vec<(BranchAddr, u64, u64)> = profile
        .iter()
        .filter(|(_, stats)| stats.executed > 0)
        .map(|(pc, stats)| (pc, stats.executed, stats.taken))
        .collect();
    branches.sort_unstable_by_key(|(pc, _, _)| *pc);
    if branches.is_empty() {
        return Some(AliasingReport {
            hotspots: Vec::new(),
            total_score: 0.0,
            cells_touched: 0,
            branches: 0,
        });
    }

    // Probe support check on the first branch.
    scratch.clear();
    if !predictor.probe_indices(branches[0].0, 0, &mut scratch) {
        return None;
    }
    let histories = history_samples(DynamicPredictor::history_bits(&*predictor), options);
    let per_history = 1.0 / histories.len() as f64;

    // Pass 1: accumulate (taken, not-taken) mass per cell.
    let mut cells: HashMap<(u32, u64), [f64; 2]> = HashMap::new();
    for &(pc, executed, taken) in &branches {
        let taken_mass = taken as f64 * per_history;
        let nt_mass = (executed - taken) as f64 * per_history;
        for &history in &histories {
            scratch.clear();
            predictor.probe_indices(pc, history, &mut scratch);
            for &(bank, index) in &scratch {
                let cell = cells.entry((bank, index)).or_default();
                cell[0] += taken_mass;
                cell[1] += nt_mass;
            }
        }
    }

    // Pass 2: per-branch destructive mass against the other branches.
    let mut hotspots = Vec::with_capacity(branches.len());
    let mut total_score = 0.0;
    for &(pc, executed, taken) in &branches {
        let own = [
            taken as f64 * per_history,
            (executed - taken) as f64 * per_history,
        ];
        let mut score = 0.0;
        for &history in &histories {
            scratch.clear();
            predictor.probe_indices(pc, history, &mut scratch);
            for &(bank, index) in &scratch {
                let cell = cells[&(bank, index)];
                let total = cell[0] + cell[1];
                if total <= 0.0 {
                    continue;
                }
                for dir in 0..2 {
                    let opposing = (cell[1 - dir] - own[1 - dir]).max(0.0);
                    score += own[dir] * opposing / total;
                }
            }
        }
        if score > 0.0 {
            total_score += score;
            hotspots.push(Hotspot {
                pc,
                score,
                executed,
            });
        }
    }
    hotspots.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pc.cmp(&b.pc))
    });
    Some(AliasingReport {
        hotspots,
        total_score,
        cells_touched: cells.len(),
        branches: branches.len(),
    })
}

/// Runs the analyzer and renders its findings as diagnostics: SDBP040 notes
/// for the top hotspots, or SDBP041 when the scheme is opaque to analysis.
pub fn lint_aliasing(
    profile: &BiasProfile,
    config: PredictorConfig,
    options: &AliasingOptions,
    origin: &str,
) -> (Option<AliasingReport>, Diagnostics) {
    let mut diags = Diagnostics::new();
    let Some(report) = analyze_aliasing(profile, config, options) else {
        diags.push(
            Diagnostic::note(
                codes::ALIASING_OPAQUE_SCHEME,
                format!(
                    "{} does not expose its index function; aliasing analysis skipped",
                    config.kind()
                ),
            )
            .with_span(Span::field(origin, "predictor")),
        );
        return (None, diags);
    };
    for hotspot in report.hotspots.iter().take(options.top) {
        let share = if report.total_score > 0.0 {
            100.0 * hotspot.score / report.total_score
        } else {
            0.0
        };
        diags.push(
            Diagnostic::note(
                codes::ALIASING_HOTSPOT,
                format!(
                    "branch {} carries {share:.1}% of the predicted destructive \
                     aliasing ({} executions)",
                    hotspot.pc, hotspot.executed
                ),
            )
            .with_span(Span::field(origin, "profile")),
        );
    }
    (Some(report), diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::PredictorKind;
    use sdbp_trace::SiteStats;

    fn profile_of(sites: &[(u64, u64, u64)]) -> BiasProfile {
        let mut profile = BiasProfile::new();
        for &(pc, executed, taken) in sites {
            profile.insert(BranchAddr(pc), SiteStats { executed, taken });
        }
        profile
    }

    fn config(kind: PredictorKind, size: usize) -> PredictorConfig {
        PredictorConfig::new(kind, size).unwrap()
    }

    #[test]
    fn opaque_schemes_return_none() {
        let profile = profile_of(&[(0x100, 100, 100)]);
        for kind in [
            PredictorKind::BiMode,
            PredictorKind::TwoBcGskew,
            PredictorKind::Yags,
        ] {
            assert!(
                analyze_aliasing(&profile, config(kind, 4096), &AliasingOptions::default())
                    .is_none(),
                "{kind} should be opaque"
            );
        }
        let (report, diags) = lint_aliasing(
            &profile,
            config(PredictorKind::BiMode, 4096),
            &AliasingOptions::default(),
            "<t>",
        );
        assert!(report.is_none());
        assert_eq!(diags.iter().map(|d| d.code.0).collect::<Vec<_>>(), [41]);
    }

    #[test]
    fn bimodal_collision_of_opposing_branches_is_detected() {
        // 64-byte bimodal = 256 entries; word indices 256 apart collide.
        let stride = 256u64 * 4;
        let profile = profile_of(&[
            (0x1000, 1000, 1000),       // always taken
            (0x1000 + stride, 1000, 0), // same entry, never taken
            (0x1000 + 8, 1000, 1000),   // private entry
        ]);
        let report = analyze_aliasing(
            &profile,
            config(PredictorKind::Bimodal, 64),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert_eq!(report.branches, 3);
        assert_eq!(report.hotspots.len(), 2, "only the colliding pair scores");
        let pcs: Vec<u64> = report.hotspots.iter().map(|h| h.pc.0).collect();
        assert!(pcs.contains(&0x1000) && pcs.contains(&(0x1000 + stride)));
        // Each branch is half the shared cell's mass, all of it opposing:
        // score = 1000 × (1000/2000) = 500.
        assert!((report.hotspots[0].score - 500.0).abs() < 1e-6);
    }

    #[test]
    fn aligned_branches_do_not_alias_destructively() {
        let profile = profile_of(&[(0x1000, 1000, 1000), (0x1000 + 256 * 4, 1000, 1000)]);
        let report = analyze_aliasing(
            &profile,
            config(PredictorKind::Bimodal, 64),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert!(
            report.hotspots.is_empty(),
            "same-direction sharing is constructive"
        );
        assert_eq!(report.total_score, 0.0);
    }

    #[test]
    fn self_interference_is_excluded() {
        // One mixed branch alone in its entry: no *aliasing* to report.
        let profile = profile_of(&[(0x1000, 1000, 500)]);
        let report = analyze_aliasing(
            &profile,
            config(PredictorKind::Bimodal, 64),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert!(report.hotspots.is_empty());
    }

    #[test]
    fn gshare_congruent_pcs_collide_through_the_xor() {
        // gshare 16 KB: 65536 entries (16 index bits), 12-bit history. PCs
        // congruent modulo the table size XOR to the same entry under
        // *every* history, so the full opposing mass collides — exactly the
        // worst case the paper's per-entry tagging measures dynamically.
        let stride = 65536u64 * 4;
        let sites = [(0x1000u64, 1000u64, 1000u64), (0x1000 + stride, 1000, 0)];
        let report = analyze_aliasing(
            &profile_of(&sites),
            config(PredictorKind::Gshare, 16 * 1024),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert_eq!(report.hotspots.len(), 2);
        assert!(
            (report.hotspots[0].score - 500.0).abs() < 1e-6,
            "{}",
            report.hotspots[0].score
        );
    }

    #[test]
    fn gshare_separates_pcs_beyond_the_history_span() {
        // Branches whose word indices differ above the 12-bit history span
        // occupy disjoint entry blocks: the XOR can never bring them
        // together, however the history evolves.
        let sites = [
            (0x1000u64, 1000u64, 1000u64),
            (0x1000 + (1u64 << 13) * 4, 1000, 0),
        ];
        let report = analyze_aliasing(
            &profile_of(&sites),
            config(PredictorKind::Gshare, 16 * 1024),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert!(report.hotspots.is_empty(), "{:?}", report.hotspots);
        assert!(
            report.cells_touched > 256,
            "history spread covers many cells"
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let profile = profile_of(&[
            (0x1000, 500, 480),
            (0x2004, 300, 10),
            (0x3008, 800, 400),
            (0x400c, 100, 95),
        ]);
        let run = || {
            analyze_aliasing(
                &profile,
                config(PredictorKind::Gshare, 4096),
                &AliasingOptions::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.hotspots, b.hotspots);
        assert_eq!(a.total_score, b.total_score);
    }

    #[test]
    fn history_sampling_enumerates_short_and_samples_long() {
        let options = AliasingOptions::default();
        assert_eq!(history_samples(0, &options), vec![0]);
        assert_eq!(history_samples(3, &options).len(), 8);
        let long = history_samples(20, &options);
        assert!(long.len() > 200 && long.len() <= 256, "{}", long.len());
        assert!(long.iter().all(|h| *h < (1 << 20)));
    }
}
