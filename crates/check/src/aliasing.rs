//! Static destructive-aliasing analysis, rendered as diagnostics.
//!
//! The analyzer itself lives in [`sdbp_profiles::interference`] (where the
//! `Static_Collide` selection scheme also consumes it); this module is the
//! diagnostics surface: [`analyze_aliasing`] runs the ranking under the
//! checker's option shape, and [`lint_aliasing`] renders it as SDBP040
//! hotspot notes or an SDBP041 opaque-scheme note.
//!
//! The ranking correlates with the simulator's measured destructive-collision
//! counts (a pinned test in `tests/aliasing_crosscheck.rs` verifies this),
//! which is what makes `sdbp check --aliasing` useful before committing to a
//! long measurement run.

use crate::codes;
use crate::diag::{Diagnostic, Diagnostics, Span};
use sdbp_predictors::PredictorConfig;
use sdbp_profiles::{rank_interference, BiasProfile, InterferenceOptions};

pub use sdbp_profiles::{InterferenceHotspot as Hotspot, InterferenceRanking as AliasingReport};

/// Tuning knobs for [`analyze_aliasing`]: the analyzer's own options plus
/// the checker's reporting depth.
#[derive(Debug, Clone, Copy)]
pub struct AliasingOptions {
    /// Histories are enumerated exhaustively up to `2^exhaustive_bits`;
    /// longer histories are sampled.
    pub exhaustive_bits: u32,
    /// Number of sampled history values for long histories.
    pub history_samples: usize,
    /// Number of hotspots reported as SDBP040 notes by [`lint_aliasing`].
    pub top: usize,
}

impl Default for AliasingOptions {
    fn default() -> Self {
        let inner = InterferenceOptions::default();
        Self {
            exhaustive_bits: inner.exhaustive_bits,
            history_samples: inner.history_samples,
            top: 10,
        }
    }
}

impl AliasingOptions {
    fn analyzer_options(&self) -> InterferenceOptions {
        InterferenceOptions {
            exhaustive_bits: self.exhaustive_bits,
            history_samples: self.history_samples,
        }
    }
}

/// Statically analyzes destructive aliasing of `config` on the branches in
/// `profile` — [`sdbp_profiles::rank_interference`] under the checker's
/// options.
///
/// Returns `None` when the scheme does not expose its index function.
pub fn analyze_aliasing(
    profile: &BiasProfile,
    config: PredictorConfig,
    options: &AliasingOptions,
) -> Option<AliasingReport> {
    rank_interference(profile, config, &options.analyzer_options())
}

/// Runs the analyzer and renders its findings as diagnostics: SDBP040 notes
/// for the top hotspots, or SDBP041 when the scheme is opaque to analysis.
pub fn lint_aliasing(
    profile: &BiasProfile,
    config: PredictorConfig,
    options: &AliasingOptions,
    origin: &str,
) -> (Option<AliasingReport>, Diagnostics) {
    let mut diags = Diagnostics::new();
    let Some(report) = analyze_aliasing(profile, config, options) else {
        diags.push(
            Diagnostic::note(
                codes::ALIASING_OPAQUE_SCHEME,
                format!(
                    "{} does not expose its index function; aliasing analysis skipped",
                    config.kind()
                ),
            )
            .with_span(Span::field(origin, "predictor")),
        );
        return (None, diags);
    };
    for hotspot in report.hotspots.iter().take(options.top) {
        let share = if report.total_score > 0.0 {
            100.0 * hotspot.score / report.total_score
        } else {
            0.0
        };
        diags.push(
            Diagnostic::note(
                codes::ALIASING_HOTSPOT,
                format!(
                    "branch {} carries {share:.1}% of the predicted destructive \
                     aliasing ({} executions)",
                    hotspot.pc, hotspot.executed
                ),
            )
            .with_span(Span::field(origin, "profile")),
        );
    }
    (Some(report), diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::PredictorKind;
    use sdbp_trace::{BranchAddr, SiteStats};

    fn profile_of(sites: &[(u64, u64, u64)]) -> BiasProfile {
        let mut profile = BiasProfile::new();
        for &(pc, executed, taken) in sites {
            profile.insert(BranchAddr(pc), SiteStats { executed, taken });
        }
        profile
    }

    fn config(kind: PredictorKind, size: usize) -> PredictorConfig {
        PredictorConfig::new(kind, size).unwrap()
    }

    #[test]
    fn opaque_schemes_return_none() {
        let profile = profile_of(&[(0x100, 100, 100)]);
        for kind in [
            PredictorKind::BiMode,
            PredictorKind::TwoBcGskew,
            PredictorKind::Yags,
        ] {
            assert!(
                analyze_aliasing(&profile, config(kind, 4096), &AliasingOptions::default())
                    .is_none(),
                "{kind} should be opaque"
            );
        }
        let (report, diags) = lint_aliasing(
            &profile,
            config(PredictorKind::BiMode, 4096),
            &AliasingOptions::default(),
            "<t>",
        );
        assert!(report.is_none());
        assert_eq!(diags.iter().map(|d| d.code.0).collect::<Vec<_>>(), [41]);
    }

    #[test]
    fn bimodal_collision_of_opposing_branches_is_detected() {
        // 64-byte bimodal = 256 entries; word indices 256 apart collide.
        let stride = 256u64 * 4;
        let profile = profile_of(&[
            (0x1000, 1000, 1000),       // always taken
            (0x1000 + stride, 1000, 0), // same entry, never taken
            (0x1000 + 8, 1000, 1000),   // private entry
        ]);
        let report = analyze_aliasing(
            &profile,
            config(PredictorKind::Bimodal, 64),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert_eq!(report.branches, 3);
        assert_eq!(report.hotspots.len(), 2, "only the colliding pair scores");
        let pcs: Vec<u64> = report.hotspots.iter().map(|h| h.pc.0).collect();
        assert!(pcs.contains(&0x1000) && pcs.contains(&(0x1000 + stride)));
        // Each branch is half the shared cell's mass, all of it opposing:
        // score = 1000 × (1000/2000) = 500.
        assert!((report.hotspots[0].score - 500.0).abs() < 1e-6);
    }

    #[test]
    fn aligned_branches_do_not_alias_destructively() {
        let profile = profile_of(&[(0x1000, 1000, 1000), (0x1000 + 256 * 4, 1000, 1000)]);
        let report = analyze_aliasing(
            &profile,
            config(PredictorKind::Bimodal, 64),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert!(
            report.hotspots.is_empty(),
            "same-direction sharing is constructive"
        );
        assert_eq!(report.total_score, 0.0);
    }

    #[test]
    fn self_interference_is_excluded() {
        // One mixed branch alone in its entry: no *aliasing* to report.
        let profile = profile_of(&[(0x1000, 1000, 500)]);
        let report = analyze_aliasing(
            &profile,
            config(PredictorKind::Bimodal, 64),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert!(report.hotspots.is_empty());
    }

    #[test]
    fn gshare_congruent_pcs_collide_through_the_xor() {
        // gshare 16 KB: 65536 entries (16 index bits), 12-bit history. PCs
        // congruent modulo the table size XOR to the same entry under
        // *every* history, so the full opposing mass collides — exactly the
        // worst case the paper's per-entry tagging measures dynamically.
        let stride = 65536u64 * 4;
        let sites = [(0x1000u64, 1000u64, 1000u64), (0x1000 + stride, 1000, 0)];
        let report = analyze_aliasing(
            &profile_of(&sites),
            config(PredictorKind::Gshare, 16 * 1024),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert_eq!(report.hotspots.len(), 2);
        assert!(
            (report.hotspots[0].score - 500.0).abs() < 1e-6,
            "{}",
            report.hotspots[0].score
        );
    }

    #[test]
    fn gshare_separates_pcs_beyond_the_history_span() {
        // Branches whose word indices differ above the 12-bit history span
        // occupy disjoint entry blocks: the XOR can never bring them
        // together, however the history evolves.
        let sites = [
            (0x1000u64, 1000u64, 1000u64),
            (0x1000 + (1u64 << 13) * 4, 1000, 0),
        ];
        let report = analyze_aliasing(
            &profile_of(&sites),
            config(PredictorKind::Gshare, 16 * 1024),
            &AliasingOptions::default(),
        )
        .unwrap();
        assert!(report.hotspots.is_empty(), "{:?}", report.hotspots);
        assert!(
            report.cells_touched > 256,
            "history spread covers many cells"
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let profile = profile_of(&[
            (0x1000, 500, 480),
            (0x2004, 300, 10),
            (0x3008, 800, 400),
            (0x400c, 100, 95),
        ]);
        let run = || {
            analyze_aliasing(
                &profile,
                config(PredictorKind::Gshare, 4096),
                &AliasingOptions::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.hotspots, b.hotspots);
        assert_eq!(a.total_score, b.total_score);
    }
}
