//! Admission lints for imported branch traces.
//!
//! `sdbp ingest` runs these before registering an external trace as a
//! benchmark: a file that cannot be opened, decoded, or believed should be
//! rejected at the door, not discovered mid-sweep as a silently short or
//! degenerate cell. The lints work from a [`TraceScan`] — one streaming
//! pass over the whole file — so admission cost is one read, bounded
//! memory.

use crate::codes;
use crate::diag::{Diagnostic, Diagnostics, Span};
use sdbp_trace::{scan_path, TraceError, TraceScan};
use std::path::Path;

/// Conditional-branch densities below this many CBRs/KI are suspicious:
/// fewer than one branch per hundred instructions usually means the trace
/// dropped events or counted non-branch instructions into the gaps.
pub const MIN_PLAUSIBLE_CBRS_PER_KI: f64 = 10.0;
/// Densities above this are physically implausible — more than two
/// conditional branches for every five instructions.
pub const MAX_PLAUSIBLE_CBRS_PER_KI: f64 = 400.0;
/// Outcome-balance checks only fire with at least this many events; below
/// it, an extreme taken rate is indistinguishable from a short sample.
const DEGENERATE_MIN_EVENTS: u64 = 1_000;

/// Lints a trace file on disk for admission.
///
/// Opens and scans the file, then applies [`lint_trace_scan`]. Open-time
/// failures become diagnostics rather than a `Result::Err`, so callers get
/// one uniform report:
///
/// * SDBP070 (error) — the file cannot be read or its header is invalid.
/// * SDBP071 (error) — no importer recognizes the content.
pub fn lint_trace_path(path: &Path) -> Diagnostics {
    let origin = path.display().to_string();
    match scan_path(path) {
        Ok(scan) => lint_trace_scan(&scan, &origin),
        Err(TraceError::UnknownFormat { .. }) => {
            let mut diags = Diagnostics::new();
            diags.push(
                Diagnostic::error(
                    codes::TRACE_FORMAT_UNKNOWN,
                    "no importer recognizes this content",
                )
                .with_span(Span::field(origin, "format"))
                .with_suggestion(
                    "expected an sdbt binary trace, an sdbp text trace, or \
                     `perf script --fields ip,brstack` output",
                ),
            );
            diags
        }
        Err(e) => {
            let mut diags = Diagnostics::new();
            diags.push(
                Diagnostic::error(codes::TRACE_UNREADABLE, format!("cannot scan trace: {e}"))
                    .with_span(Span::field(origin, "file")),
            );
            diags
        }
    }
}

/// Lints a completed [`TraceScan`] for admission.
///
/// Emitted codes:
///
/// * SDBP072 (error) — decoding stopped early: the file is truncated or
///   corrupt past the scanned prefix.
/// * SDBP073 (warning) — the conditional-branch density is outside
///   [`MIN_PLAUSIBLE_CBRS_PER_KI`]..=[`MAX_PLAUSIBLE_CBRS_PER_KI`].
/// * SDBP074 (warning) — the outcomes carry no signal: no events, a single
///   static site, or a taken rate pinned at 0 or 1.
/// * SDBP075 (note) — the admission summary (always emitted): event and
///   instruction counts, density, taken rate, sites, and content digest.
pub fn lint_trace_scan(scan: &TraceScan, origin: &str) -> Diagnostics {
    let mut diags = Diagnostics::new();

    if let Some(error) = &scan.error {
        diags.push(
            Diagnostic::error(
                codes::TRACE_MALFORMED,
                format!("decoding stopped after {} events: {error}", scan.events),
            )
            .with_span(Span::field(origin, "events"))
            .with_note("statistics below describe only the valid prefix")
            .with_suggestion("re-export the trace; partial files must not be admitted"),
        );
    }

    let density = scan.cbrs_per_ki();
    if scan.events > 0
        && !(MIN_PLAUSIBLE_CBRS_PER_KI..=MAX_PLAUSIBLE_CBRS_PER_KI).contains(&density)
    {
        let (comparison, cause) = if density < MIN_PLAUSIBLE_CBRS_PER_KI {
            (
                format!("below the plausible floor of {MIN_PLAUSIBLE_CBRS_PER_KI}"),
                "dropped events or inflated instruction gaps",
            )
        } else {
            (
                format!("above the plausible ceiling of {MAX_PLAUSIBLE_CBRS_PER_KI}"),
                "gaps that omit the non-branch instructions between events",
            )
        };
        diags.push(
            Diagnostic::warning(
                codes::TRACE_IMPLAUSIBLE_DENSITY,
                format!("{density:.1} conditional branches per 1000 instructions is {comparison}"),
            )
            .with_span(Span::field(origin, "gap"))
            .with_note(format!("this usually indicates {cause}")),
        );
    }

    let degenerate = if scan.events == 0 {
        Some("the trace contains no branch events".to_string())
    } else if scan.distinct_sites == 1 {
        Some(format!(
            "all {} events come from a single static branch",
            scan.events
        ))
    } else if scan.events >= DEGENERATE_MIN_EVENTS && (scan.taken == 0 || scan.taken == scan.events)
    {
        let direction = if scan.taken == 0 {
            "not-taken"
        } else {
            "taken"
        };
        Some(format!(
            "every one of {} events is {direction}",
            scan.events
        ))
    } else {
        None
    };
    if let Some(message) = degenerate {
        diags.push(
            Diagnostic::warning(codes::TRACE_DEGENERATE_OUTCOMES, message)
                .with_span(Span::field(origin, "outcomes"))
                .with_note(
                    "a stream with no outcome signal cannot exercise a predictor; \
                     check the exporter's branch filter",
                ),
        );
    }

    diags.push(
        Diagnostic::note(
            codes::TRACE_SUMMARY,
            format!(
                "{} ({}): {} events over {} instructions, {:.1} CBRs/KI, \
                 taken rate {:.3}, {} sites, digest {:016x}",
                scan.name,
                scan.format.name(),
                scan.events,
                scan.total_instructions,
                density,
                scan.taken_rate(),
                scan.distinct_sites,
                scan.digest,
            ),
        )
        .with_span(Span::field(origin, "summary")),
    );
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_trace::{write_binary, BranchAddr, BranchEvent, TraceBuilder, TraceFormat};

    fn scan(events: u64, instructions: u64, taken: u64, sites: u64) -> TraceScan {
        TraceScan {
            format: TraceFormat::SdbtBinary,
            name: "sample".into(),
            events,
            total_instructions: instructions,
            taken,
            distinct_sites: sites,
            digest: 0xfeed,
            error: None,
        }
    }

    #[test]
    fn healthy_scans_lint_to_a_single_summary_note() {
        let diags = lint_trace_scan(&scan(10_000, 80_000, 5_500, 420), "t.sdbt");
        assert!(diags.is_clean(), "{}", diags.render_text());
        assert_eq!(diags.notes(), 1);
        let rendered = diags.render_text();
        assert!(rendered.contains("SDBP075"), "{rendered}");
        assert!(rendered.contains("125.0 CBRs/KI"), "{rendered}");
        assert!(rendered.contains("digest 000000000000feed"), "{rendered}");
    }

    #[test]
    fn decode_errors_are_admission_errors() {
        let mut s = scan(500, 4_000, 250, 40);
        s.error = Some("truncated event stream: expected 600 events, found 500".into());
        let diags = lint_trace_scan(&s, "t.sdbt");
        assert_eq!(diags.errors(), 1);
        let rendered = diags.render_text();
        assert!(rendered.contains("SDBP072"), "{rendered}");
        assert!(rendered.contains("after 500 events"), "{rendered}");
    }

    #[test]
    fn implausible_densities_warn_in_both_directions() {
        // 1000 events over 1_000_000 instructions: 1 CBR/KI, far too sparse.
        let sparse = lint_trace_scan(&scan(1_000, 1_000_000, 500, 50), "t.sdbt");
        assert_eq!(sparse.warnings(), 1);
        assert!(sparse.render_text().contains("SDBP073"));
        assert!(sparse.render_text().contains("floor"));

        // 10_000 events over 10_000 instructions: 1000 CBRs/KI, impossible.
        let dense = lint_trace_scan(&scan(10_000, 10_000, 5_000, 50), "t.sdbt");
        assert_eq!(dense.warnings(), 1);
        assert!(dense.render_text().contains("ceiling"));
    }

    #[test]
    fn degenerate_outcome_streams_warn() {
        let empty = lint_trace_scan(&scan(0, 0, 0, 0), "t.sdbt");
        assert_eq!(empty.warnings(), 1);
        assert!(empty.render_text().contains("no branch events"));

        let one_site = lint_trace_scan(&scan(5_000, 40_000, 2_500, 1), "t.sdbt");
        assert!(one_site.render_text().contains("single static branch"));

        let all_taken = lint_trace_scan(&scan(5_000, 40_000, 5_000, 60), "t.sdbt");
        assert!(all_taken
            .render_text()
            .contains("every one of 5000 events is taken"));

        // Short streams are exempt from the balance check (but not the
        // single-site check): 10 taken events could be a legitimate sample.
        let short = lint_trace_scan(&scan(10, 80, 10, 5), "t.sdbt");
        assert!(short.is_clean(), "{}", short.render_text());
    }

    #[test]
    fn unreadable_and_unknown_files_become_diagnostics() {
        let missing = lint_trace_path(Path::new("/nonexistent/trace.sdbt"));
        assert_eq!(missing.errors(), 1);
        assert!(missing.render_text().contains("SDBP070"));

        let dir = tempdir();
        let alien = dir.join("alien.bin");
        std::fs::write(&alien, [0u8, 159, 146, 150, 7, 7, 7, 7]).unwrap();
        let unknown = lint_trace_path(&alien);
        assert_eq!(unknown.errors(), 1);
        let rendered = unknown.render_text();
        assert!(rendered.contains("SDBP071"), "{rendered}");
        assert!(rendered.contains("perf script"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn real_files_round_trip_through_the_path_lint() {
        let mut b = TraceBuilder::named("li.train");
        for i in 0..2_000u64 {
            b.push(BranchEvent::new(
                BranchAddr(0x4000 + (i % 64) * 16),
                i % 3 != 0,
                6,
            ));
        }
        let trace = b.finish();
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &trace).unwrap();

        let dir = tempdir();
        let path = dir.join("li.sdbt");
        std::fs::write(&path, &bytes).unwrap();
        let clean = lint_trace_path(&path);
        assert!(clean.is_clean(), "{}", clean.render_text());
        assert!(clean.render_text().contains("li.train"));

        // Chop the file mid-stream: the path lint must surface SDBP072.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let torn = lint_trace_path(&path);
        assert_eq!(torn.errors(), 1);
        assert!(
            torn.render_text().contains("SDBP072"),
            "{}",
            torn.render_text()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sdbp-check-trace-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
