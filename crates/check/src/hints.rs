//! Hint-database lints: internal consistency and profile cross-checks.
//!
//! [`parse_hints_text`] re-parses the `"<hex pc> T|N"` format line by line
//! (rather than through [`HintDatabase::from_text`], whose last-wins
//! `HashMap` insert silently swallows duplicates) so duplicate and
//! conflicting entries are visible. [`lint_hints_against_profile`] then
//! cross-checks the surviving database against a bias profile: hints for
//! branches the profile never saw, hints that contradict the profiled
//! majority direction, and strongly biased hot branches left without a
//! hint.

use crate::codes;
use crate::diag::{Diagnostic, Diagnostics, Span};
use sdbp_profiles::{BiasProfile, HintDatabase};
use sdbp_trace::BranchAddr;
use std::collections::HashMap;

/// Parses hint text, reporting SDBP020/021/025 for duplicate, conflicting,
/// and malformed lines.
///
/// The returned database matches [`HintDatabase::from_text`]'s last-wins
/// semantics for every line that parses, so downstream consumers see the
/// same hints the simulator would.
pub fn parse_hints_text(text: &str, origin: &str) -> (HintDatabase, Diagnostics) {
    let mut diags = Diagnostics::new();
    let mut db = HintDatabase::new();
    let mut first_seen: HashMap<BranchAddr, (usize, bool)> = HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let pc = parts
            .next()
            .and_then(|p| u64::from_str_radix(p.trim_start_matches("0x"), 16).ok());
        let taken = match parts.next() {
            Some("T") | Some("t") => Some(true),
            Some("N") | Some("n") => Some(false),
            _ => None,
        };
        let (Some(pc), Some(taken)) = (pc, taken) else {
            diags.push(
                Diagnostic::error(
                    codes::HINT_PARSE_ERROR,
                    format!("malformed hint line '{line}'"),
                )
                .with_span(Span::line(origin, "hint", line_no))
                .with_note("expected '<hex pc> T|N'"),
            );
            continue;
        };
        let pc = BranchAddr(pc);
        match first_seen.get(&pc) {
            None => {
                first_seen.insert(pc, (line_no, taken));
            }
            Some((prev_line, prev_taken)) if *prev_taken == taken => {
                diags.push(
                    Diagnostic::warning(
                        codes::DUPLICATE_HINT,
                        format!("duplicate hint for branch {pc} (first at line {prev_line})"),
                    )
                    .with_span(Span::line(origin, "hint", line_no))
                    .with_suggestion("remove the duplicate line"),
                );
            }
            Some((prev_line, _)) => {
                diags.push(
                    Diagnostic::error(
                        codes::CONFLICTING_HINT,
                        format!(
                            "conflicting hints for branch {pc}: line {prev_line} says \
                             {}, line {line_no} says {}",
                            direction(!taken),
                            direction(taken)
                        ),
                    )
                    .with_span(Span::line(origin, "hint", line_no))
                    .with_note("the simulator would silently keep the last one"),
                );
            }
        }
        db.insert(pc, taken);
    }
    (db, diags)
}

fn direction(taken: bool) -> &'static str {
    if taken {
        "taken"
    } else {
        "not-taken"
    }
}

/// Thresholds for the profile cross-checks.
///
/// A hint on a branch whose profiled bias is below
/// [`bias_floor`](Self::bias_floor) is never reported as contradicting (the
/// majority direction of a coin-flip branch is noise); a profiled branch
/// with bias at least [`coverage_bias`](Self::coverage_bias) and at least
/// [`coverage_executions`](Self::coverage_executions) executions but no
/// hint is reported as a coverage gap.
#[derive(Debug, Clone, Copy)]
pub struct HintLintOptions {
    /// Minimum profiled bias for SDBP023 (hint contradicts profile).
    pub bias_floor: f64,
    /// Minimum profiled bias for SDBP024 (coverage gap).
    pub coverage_bias: f64,
    /// Minimum executions for SDBP024.
    pub coverage_executions: u64,
    /// Cap on emitted SDBP024 notes (gaps beyond it are summarized).
    pub max_coverage_notes: usize,
}

impl Default for HintLintOptions {
    fn default() -> Self {
        Self {
            bias_floor: 0.60,
            coverage_bias: 0.99,
            coverage_executions: 1_000,
            max_coverage_notes: 5,
        }
    }
}

/// Cross-checks a hint database against the bias profile it was (or should
/// have been) selected from: SDBP022/023/024.
pub fn lint_hints_against_profile(
    hints: &HintDatabase,
    profile: &BiasProfile,
    origin: &str,
    options: HintLintOptions,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let mut entries: Vec<(BranchAddr, bool)> = hints.iter().collect();
    entries.sort_unstable_by_key(|(pc, _)| *pc);
    for (pc, taken) in entries {
        match profile.site(pc) {
            None => diags.push(
                Diagnostic::warning(
                    codes::STALE_HINT,
                    format!("hint for branch {pc} which the profile never observed"),
                )
                .with_span(Span::field(origin, "hints"))
                .with_note("the branch may have moved; re-profile and re-select"),
            ),
            Some(stats) => {
                if stats.executed > 0
                    && stats.bias() >= options.bias_floor
                    && taken != stats.majority_taken()
                {
                    diags.push(
                        Diagnostic::warning(
                            codes::HINT_CONTRADICTS_PROFILE,
                            format!(
                                "hint predicts {} for branch {pc}, but the profile \
                                 is {:.1}% {}",
                                direction(taken),
                                100.0 * stats.bias(),
                                direction(stats.majority_taken())
                            ),
                        )
                        .with_span(Span::field(origin, "hints"))
                        .with_suggestion(
                            "a static hint against the bias misses every time it fires",
                        ),
                    );
                }
            }
        }
    }

    let mut gaps: Vec<(BranchAddr, u64, f64)> = profile
        .iter()
        .filter(|(pc, stats)| {
            !hints.contains(*pc)
                && stats.executed >= options.coverage_executions
                && stats.bias() >= options.coverage_bias
        })
        .map(|(pc, stats)| (pc, stats.executed, stats.bias()))
        .collect();
    gaps.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total_gaps = gaps.len();
    for (pc, executed, bias) in gaps.into_iter().take(options.max_coverage_notes) {
        diags.push(
            Diagnostic::note(
                codes::HINT_COVERAGE_GAP,
                format!(
                    "branch {pc} executed {executed} times at {:.1}% bias but has no hint",
                    100.0 * bias
                ),
            )
            .with_span(Span::field(origin, "hints")),
        );
    }
    if total_gaps > options.max_coverage_notes {
        diags.push(
            Diagnostic::note(
                codes::HINT_COVERAGE_GAP,
                format!(
                    "{} more strongly biased branches have no hint",
                    total_gaps - options.max_coverage_notes
                ),
            )
            .with_span(Span::field(origin, "hints")),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_trace::SiteStats;

    fn codes_of(diags: &Diagnostics) -> Vec<u16> {
        diags.iter().map(|d| d.code.0).collect()
    }

    fn site(executed: u64, taken: u64) -> SiteStats {
        SiteStats { executed, taken }
    }

    #[test]
    fn clean_hints_parse_silently() {
        let (db, diags) = parse_hints_text("# header\n100 T\n104 N\n", "<t>");
        assert!(diags.is_empty(), "{}", diags.render_text());
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(BranchAddr(0x100)), Some(true));
    }

    #[test]
    fn duplicate_hint_is_sdbp020() {
        let (db, diags) = parse_hints_text("100 T\n100 T\n", "<t>");
        assert_eq!(codes_of(&diags), [20]);
        assert!(!diags.has_errors());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn conflicting_hint_is_sdbp021_and_an_error() {
        let (db, diags) = parse_hints_text("100 T\n104 N\n100 N\n", "<t>");
        assert_eq!(codes_of(&diags), [21]);
        assert!(diags.has_errors());
        let d = diags.iter().next().unwrap();
        assert!(d.message.contains("line 1"), "{}", d.message);
        assert_eq!(d.span.as_ref().unwrap().line, Some(3));
        // Last-wins, matching HintDatabase::from_text.
        assert_eq!(db.get(BranchAddr(0x100)), Some(false));
    }

    #[test]
    fn malformed_line_is_sdbp025() {
        let (db, diags) = parse_hints_text("zzz T\n100 X\n100\n", "<t>");
        assert_eq!(codes_of(&diags), [25, 25, 25]);
        assert!(db.is_empty());
    }

    #[test]
    fn stale_and_contradicting_hints_cross_check() {
        let mut profile = BiasProfile::new();
        profile.insert(BranchAddr(0x100), site(1000, 990)); // strongly taken
        profile.insert(BranchAddr(0x104), site(1000, 500)); // coin flip
        let mut hints = HintDatabase::new();
        hints.insert(BranchAddr(0x100), false); // contradicts
        hints.insert(BranchAddr(0x104), false); // against a coin flip: fine
        hints.insert(BranchAddr(0x200), true); // never profiled
        let diags = lint_hints_against_profile(&hints, &profile, "<t>", HintLintOptions::default());
        assert_eq!(codes_of(&diags), [23, 22]);
        assert!(!diags.has_errors());
    }

    #[test]
    fn coverage_gaps_are_capped_notes() {
        let mut profile = BiasProfile::new();
        for i in 0..8u64 {
            profile.insert(BranchAddr(0x1000 + 4 * i), site(5000, 4999));
        }
        let hints = HintDatabase::new();
        let options = HintLintOptions {
            max_coverage_notes: 3,
            ..HintLintOptions::default()
        };
        let diags = lint_hints_against_profile(&hints, &profile, "<t>", options);
        assert_eq!(codes_of(&diags), [24, 24, 24, 24]);
        assert!(diags.is_clean(), "notes stay clean");
        let last = diags.iter().last().unwrap();
        assert!(last.message.contains("5 more"), "{}", last.message);
    }

    #[test]
    fn hinted_and_weak_branches_are_not_gaps() {
        let mut profile = BiasProfile::new();
        profile.insert(BranchAddr(0x100), site(5000, 4999)); // hinted
        profile.insert(BranchAddr(0x104), site(5000, 3000)); // weak bias
        profile.insert(BranchAddr(0x108), site(10, 10)); // cold
        let mut hints = HintDatabase::new();
        hints.insert(BranchAddr(0x100), true);
        let diags = lint_hints_against_profile(&hints, &profile, "<t>", HintLintOptions::default());
        assert!(diags.is_empty(), "{}", diags.render_text());
    }
}
