//! Spec-level lints: parsing and validating experiment descriptions.
//!
//! Two entry points:
//!
//! * [`parse_spec_text`] parses the `key value` spec-file format (also fed
//!   by `sdbp check`'s inline options) into an [`ExperimentSpec`], emitting
//!   coded diagnostics for unknown names, malformed values, and impossible
//!   predictor configurations — with did-you-mean suggestions.
//! * [`lint_spec`] checks an already-constructed spec for semantic problems:
//!   out-of-range scheme parameters, zero budgets, warm-up swallowing the
//!   run, profiling starvation, ineffective shift policies, and byte budgets
//!   the scheme cannot realize exactly.

use crate::codes;
use crate::diag::{Diagnostic, Diagnostics, Span};
use sdbp_core::{ExperimentSpec, ProfileSource, ShiftPolicy};
use sdbp_predictors::{DynamicPredictor, PredictorConfig, PredictorKind};
use sdbp_profiles::SelectionScheme;
use sdbp_workloads::{Benchmark, InputSet};

/// A spec parsed from text, plus any side declarations that do not live on
/// [`ExperimentSpec`] itself.
#[derive(Debug, Clone, Default)]
pub struct ParsedSpec {
    /// The constructed spec; `None` when errors prevented construction.
    pub spec: Option<ExperimentSpec>,
    /// An explicit `history <bits>` declaration, checked against the
    /// predictor's derived history length by [`lint_spec_with_history`].
    pub declared_history: Option<u32>,
}

/// The keys [`parse_spec_text`] understands.
pub const SPEC_KEYS: &[&str] = &[
    "benchmark",
    "predictor",
    "size",
    "scheme",
    "shift",
    "training",
    "input",
    "seed",
    "instructions",
    "profile_instructions",
    "measure_instructions",
    "warmup",
    "history",
];

/// Edit distance between two ASCII strings (classic two-row Levenshtein).
fn edit_distance(a: &str, b: &str) -> usize {
    let b_len = b.chars().count();
    let mut prev: Vec<usize> = (0..=b_len).collect();
    let mut cur = vec![0usize; b_len + 1];
    for (i, ca) in a.chars().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.chars().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b_len]
}

/// The closest candidate to `input`, if any is close enough to be a
/// plausible typo (distance ≤ ⌈len/3⌉, minimum 2).
pub(crate) fn closest<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let lower = input.to_ascii_lowercase();
    let budget = (lower.len().div_ceil(3)).max(2);
    candidates
        .iter()
        .map(|c| (edit_distance(&lower, c), *c))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

fn suggest(diag: Diagnostic, input: &str, candidates: &[&str]) -> Diagnostic {
    match closest(input, candidates) {
        Some(c) => diag.with_suggestion(format!("did you mean '{c}'?")),
        None => diag,
    }
}

const BENCHMARK_NAMES: &[&str] = &["go", "gcc", "perl", "m88ksim", "compress", "ijpeg"];
const PREDICTOR_NAMES: &[&str] = &[
    "bimodal",
    "ghist",
    "gshare",
    "bi-mode",
    "2bcgskew",
    "agree",
    "yags",
    "e-gskew",
    "tournament",
    "local",
    "gselect",
    "perceptron",
    "tage-lite",
];
const SCHEME_NAMES: &[&str] = &[
    "none",
    "static_95",
    "static_acc",
    "static_col",
    "static_collide",
];
const SHIFT_NAMES: &[&str] = &["no-shift", "shift"];
const TRAINING_NAMES: &[&str] = &["self", "cross", "cross-merged"];
const INPUT_NAMES: &[&str] = &["train", "ref"];

/// Parses the `key value` spec-file format.
///
/// Lines are `key value` pairs; blank lines and `#` comments are skipped.
/// Unset keys take the CLI defaults (gcc, ref, seed 2000, gshare, 8192
/// bytes, scheme none, self-training, no shift, no warm-up, workload-default
/// budgets). `origin` names the source in diagnostic spans (a path, or
/// `<args>` for inline options).
///
/// Parse failures are reported per line; a spec is still constructed from
/// whatever parsed unless the predictor configuration itself is unusable.
pub fn parse_spec_text(text: &str, origin: &str) -> (ParsedSpec, Diagnostics) {
    let mut diags = Diagnostics::new();
    let mut benchmark = Benchmark::Gcc;
    let mut kind = PredictorKind::Gshare;
    let mut kind_set: Option<usize> = None;
    let mut size: usize = 8192;
    let mut size_set: Option<usize> = None;
    let mut scheme = SelectionScheme::None;
    let mut shift = ShiftPolicy::NoShift;
    let mut training = ProfileSource::SelfTrained;
    let mut input = InputSet::Ref;
    let mut seed: u64 = 2000;
    let mut profile_instructions: Option<u64> = None;
    let mut measure_instructions: Option<u64> = None;
    let mut warmup: u64 = 0;
    let mut declared_history: Option<u32> = None;
    let mut config_unusable = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = match line.split_once(char::is_whitespace) {
            Some((k, v)) => (k, v.trim()),
            None => (line, ""),
        };
        let malformed = |field: &str, what: &str| {
            Diagnostic::error(
                codes::MALFORMED_FIELD_VALUE,
                format!("invalid {field} value '{value}': expected {what}"),
            )
            .with_span(Span::line(origin, field.to_string(), line_no))
        };
        match key {
            "benchmark" => match value.parse::<Benchmark>() {
                Ok(b) => benchmark = b,
                Err(_) => diags.push(suggest(
                    Diagnostic::error(
                        codes::UNKNOWN_BENCHMARK,
                        format!("unknown benchmark '{value}'"),
                    )
                    .with_span(Span::line(origin, "benchmark", line_no))
                    .with_note(format!("known benchmarks: {}", BENCHMARK_NAMES.join(", "))),
                    value,
                    BENCHMARK_NAMES,
                )),
            },
            "predictor" => match value.parse::<PredictorKind>() {
                Ok(k) => {
                    kind = k;
                    kind_set = Some(line_no);
                }
                Err(_) => {
                    config_unusable = true;
                    diags.push(suggest(
                        Diagnostic::error(
                            codes::UNKNOWN_PREDICTOR,
                            format!("unknown predictor '{value}'"),
                        )
                        .with_span(Span::line(origin, "predictor", line_no))
                        .with_note(format!("known predictors: {}", PREDICTOR_NAMES.join(", "))),
                        value,
                        PREDICTOR_NAMES,
                    ));
                }
            },
            // Size and scheme go through the shared parsers the CLI uses
            // (sdbp-predictors / sdbp-profiles), so both front ends accept
            // and reject identical syntax.
            "size" => match sdbp_predictors::parse_size_bytes(value) {
                Ok(s) => {
                    size = s;
                    size_set = Some(line_no);
                }
                Err(_) => diags.push(malformed("size", "a size in bytes")),
            },
            "scheme" => match value.parse::<SelectionScheme>() {
                Ok(s) => scheme = s,
                Err(_) => diags.push(suggest(
                    Diagnostic::error(
                        codes::UNKNOWN_SCHEME,
                        format!("unknown selection scheme '{value}'"),
                    )
                    .with_span(Span::line(origin, "scheme", line_no))
                    .with_note(
                        "expected none, static_<pct>, static_acc, static_col, \
                         or static_collide",
                    ),
                    value,
                    SCHEME_NAMES,
                )),
            },
            "shift" => match value {
                "shift" => shift = ShiftPolicy::Shift,
                "no-shift" | "noshift" => shift = ShiftPolicy::NoShift,
                _ => diags.push(suggest(
                    malformed("shift", "shift or no-shift"),
                    value,
                    SHIFT_NAMES,
                )),
            },
            "training" => match value {
                "self" => training = ProfileSource::SelfTrained,
                "cross" => training = ProfileSource::CrossTrained,
                "cross-merged" => {
                    training = ProfileSource::MergedCrossTrained {
                        max_bias_change: 0.05,
                    }
                }
                _ => diags.push(suggest(
                    malformed("training", "self, cross, or cross-merged"),
                    value,
                    TRAINING_NAMES,
                )),
            },
            "input" => match value {
                "train" => input = InputSet::Train,
                "ref" => input = InputSet::Ref,
                _ => diags.push(suggest(
                    malformed("input", "train or ref"),
                    value,
                    INPUT_NAMES,
                )),
            },
            "seed" => match value.parse::<u64>() {
                Ok(s) => seed = s,
                Err(_) => diags.push(malformed("seed", "an unsigned integer")),
            },
            "instructions" => match value.parse::<u64>() {
                Ok(n) => {
                    profile_instructions = Some(n);
                    measure_instructions = Some(n);
                }
                Err(_) => diags.push(malformed("instructions", "an unsigned integer")),
            },
            "profile_instructions" => match value.parse::<u64>() {
                Ok(n) => profile_instructions = Some(n),
                Err(_) => diags.push(malformed("profile_instructions", "an unsigned integer")),
            },
            "measure_instructions" => match value.parse::<u64>() {
                Ok(n) => measure_instructions = Some(n),
                Err(_) => diags.push(malformed("measure_instructions", "an unsigned integer")),
            },
            "warmup" => match value.parse::<u64>() {
                Ok(n) => warmup = n,
                Err(_) => diags.push(malformed("warmup", "an unsigned integer")),
            },
            "history" => match value.parse::<u32>() {
                Ok(h) => declared_history = Some(h),
                Err(_) => diags.push(malformed("history", "a bit count")),
            },
            other => diags.push(suggest(
                Diagnostic::warning(
                    codes::UNKNOWN_SPEC_FIELD,
                    format!("unknown spec field '{other}' ignored"),
                )
                .with_span(Span::line(origin, other.to_string(), line_no)),
                other,
                SPEC_KEYS,
            )),
        }
    }

    let config = match PredictorConfig::new(kind, size) {
        Ok(config) => Some(config),
        Err(_) => {
            let line = size_set.or(kind_set);
            let span = match line {
                Some(n) => Span::line(origin, "size", n),
                None => Span::field(origin, "size"),
            };
            if !size.is_power_of_two() {
                let fix = size.max(1).next_power_of_two();
                diags.push(
                    Diagnostic::error(
                        codes::SIZE_NOT_POWER_OF_TWO,
                        format!("table size {size} bytes is not a power of two"),
                    )
                    .with_span(span)
                    .with_suggestion(format!("round up to {fix} bytes"))
                    .with_note(
                        "counter tables are indexed by bit masks, so budgets \
                         must be powers of two",
                    ),
                );
            } else {
                // Power of two but below the scheme's minimum.
                let min = (1..=64)
                    .map(|b| 1usize << b)
                    .find(|s| PredictorConfig::new(kind, *s).is_ok())
                    .unwrap_or(16);
                diags.push(
                    Diagnostic::error(
                        codes::SIZE_BELOW_MINIMUM,
                        format!("table size {size} bytes is below {kind}'s minimum of {min}"),
                    )
                    .with_span(span)
                    .with_suggestion(format!("use at least {min} bytes")),
                );
            }
            None
        }
    };

    let spec = config.filter(|_| !config_unusable).map(|config| {
        let mut spec = ExperimentSpec::self_trained(benchmark, config, scheme)
            .with_shift(shift)
            .with_profile(training)
            .with_measure_input(input)
            .with_seed(seed)
            .with_warmup(warmup);
        spec.profile_instructions = profile_instructions;
        spec.measure_instructions = measure_instructions;
        spec
    });
    (
        ParsedSpec {
            spec,
            declared_history,
        },
        diags,
    )
}

/// Lints a constructed spec (no `history` declaration).
pub fn lint_spec(spec: &ExperimentSpec, origin: &str) -> Diagnostics {
    lint_spec_with_history(spec, None, origin)
}

/// Lints a constructed spec, cross-checking an explicit `history <bits>`
/// declaration against the predictor the spec would actually build.
pub fn lint_spec_with_history(
    spec: &ExperimentSpec,
    declared_history: Option<u32>,
    origin: &str,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let span = |field: &'static str| Span::field(origin, field);

    // SDBP008: zero budgets.
    if spec.profile_instructions == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::ZERO_INSTRUCTION_BUDGET,
                "profiling budget is zero; no branch would be profiled",
            )
            .with_span(span("profile_instructions")),
        );
    }
    if spec.measure_instructions == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::ZERO_INSTRUCTION_BUDGET,
                "measurement budget is zero; no branch would be measured",
            )
            .with_span(span("measure_instructions")),
        );
    }

    // SDBP009: warm-up swallowing the measured window.
    let measure = spec.measure_budget();
    if measure > 0 && spec.warmup_instructions >= measure {
        diags.push(
            Diagnostic::error(
                codes::WARMUP_EXCEEDS_BUDGET,
                format!(
                    "warm-up of {} instructions consumes the whole measurement budget of {measure}",
                    spec.warmup_instructions
                ),
            )
            .with_span(span("warmup_instructions"))
            .with_suggestion("reduce warmup or raise measure_instructions"),
        );
    }

    // SDBP010: profiling starvation. Hints selected from a profile that
    // covers a sliver of the measured run generalize poorly (the paper's
    // cross-training problem in miniature, but self-inflicted).
    let profile = spec.profile_budget();
    if spec.scheme != sdbp_profiles::SelectionScheme::None
        && profile > 0
        && measure > 0
        && profile.saturating_mul(50) < measure
    {
        diags.push(
            Diagnostic::warning(
                codes::PROFILE_BUDGET_DWARFED,
                format!(
                    "profiling budget of {profile} instructions is under 2% of the \
                     measurement budget of {measure}"
                ),
            )
            .with_span(span("profile_instructions"))
            .with_suggestion("profile at least a few percent of the measured run"),
        );
    }

    // SDBP007: scheme and training parameters out of range.
    match spec.scheme {
        sdbp_profiles::SelectionScheme::None | sdbp_profiles::SelectionScheme::VsAccuracy => {}
        sdbp_profiles::SelectionScheme::Bias { cutoff } => {
            if !(cutoff > 0.0 && cutoff < 1.0) {
                diags.push(
                    Diagnostic::error(
                        codes::SCHEME_PARAMETER_OUT_OF_RANGE,
                        format!("bias cutoff {cutoff} outside the open interval (0, 1)"),
                    )
                    .with_span(span("scheme"))
                    .with_note("the paper's Static_95 uses a cutoff of 0.95"),
                );
            }
        }
        sdbp_profiles::SelectionScheme::Factor { factor } => {
            if !(factor > 0.0 && factor.is_finite()) {
                diags.push(
                    Diagnostic::error(
                        codes::SCHEME_PARAMETER_OUT_OF_RANGE,
                        format!("accuracy factor {factor} must be positive and finite"),
                    )
                    .with_span(span("scheme")),
                );
            }
        }
        sdbp_profiles::SelectionScheme::CollisionAware {
            min_bias,
            min_collision_rate,
        } => {
            if !(min_bias > 0.0 && min_bias < 1.0) {
                diags.push(
                    Diagnostic::error(
                        codes::SCHEME_PARAMETER_OUT_OF_RANGE,
                        format!("minimum bias {min_bias} outside the open interval (0, 1)"),
                    )
                    .with_span(span("scheme")),
                );
            }
            if !(0.0..1.0).contains(&min_collision_rate) {
                diags.push(
                    Diagnostic::error(
                        codes::SCHEME_PARAMETER_OUT_OF_RANGE,
                        format!("minimum collision rate {min_collision_rate} outside [0, 1)"),
                    )
                    .with_span(span("scheme")),
                );
            }
        }
        sdbp_profiles::SelectionScheme::Collide {
            min_bias,
            min_score_rate,
        } => {
            if !(min_bias > 0.0 && min_bias < 1.0) {
                diags.push(
                    Diagnostic::error(
                        codes::SCHEME_PARAMETER_OUT_OF_RANGE,
                        format!("minimum bias {min_bias} outside the open interval (0, 1)"),
                    )
                    .with_span(span("scheme")),
                );
            }
            if !(0.0..1.0).contains(&min_score_rate) {
                diags.push(
                    Diagnostic::error(
                        codes::SCHEME_PARAMETER_OUT_OF_RANGE,
                        format!("minimum score rate {min_score_rate} outside [0, 1)"),
                    )
                    .with_span(span("scheme")),
                );
            }
            // SDBP042: Static_Collide needs the predictor's index function.
            let capability = spec.predictor.index_capability();
            if !capability.is_analyzable() {
                diags.push(
                    Diagnostic::warning(
                        codes::COLLIDE_ON_OPAQUE_PREDICTOR,
                        format!(
                            "static_collide cannot rank interference on {}: its index \
                             function is {capability} to static analysis",
                            spec.predictor.kind()
                        ),
                    )
                    .with_span(span("scheme"))
                    .with_suggestion(
                        "use an analyzable predictor (bimodal, ghist, gshare, gselect, \
                         e-gskew, perceptron, tage-lite), or select with static_col \
                         from a measured accuracy profile",
                    ),
                );
            }
        }
    }
    if let ProfileSource::MergedCrossTrained { max_bias_change } = spec.profile {
        if !(0.0..=1.0).contains(&max_bias_change) {
            diags.push(
                Diagnostic::error(
                    codes::SCHEME_PARAMETER_OUT_OF_RANGE,
                    format!("maximum bias change {max_bias_change} outside [0, 1]"),
                )
                .with_span(span("training"))
                .with_note("the paper's Spike-style merge uses 0.05"),
            );
        }
    }

    // SDBP011: shifting history into a predictor that keeps none.
    if spec.shift == ShiftPolicy::Shift && !spec.predictor.kind().uses_global_history() {
        diags.push(
            Diagnostic::warning(
                codes::SHIFT_POLICY_INEFFECTIVE,
                format!(
                    "shift policy has no effect: {} keeps no global history register",
                    spec.predictor.kind()
                ),
            )
            .with_span(span("shift"))
            .with_suggestion("use no-shift, or a global-history predictor"),
        );
    }

    // SDBP004 + SDBP005/006 need the built predictor.
    let built = spec.predictor.build();
    if built.size_bytes() != spec.predictor.size_bytes() {
        diags.push(
            Diagnostic::note(
                codes::BUDGET_NOT_REALIZABLE,
                format!(
                    "{} realizes {} of the {} configured bytes (bank split \
                     rounds down to powers of two)",
                    spec.predictor.kind(),
                    built.size_bytes(),
                    spec.predictor.size_bytes()
                ),
            )
            .with_span(span("size")),
        );
    }
    if let Some(history) = declared_history {
        if !spec.predictor.kind().uses_global_history() {
            diags.push(
                Diagnostic::warning(
                    codes::HISTORY_ON_HISTORY_FREE,
                    format!(
                        "history length declared for {}, which keeps no global \
                         history register",
                        spec.predictor.kind()
                    ),
                )
                .with_span(span("history")),
            );
        } else {
            let derived = DynamicPredictor::history_bits(&*built);
            if history == 0 || history > 64 {
                diags.push(
                    Diagnostic::error(
                        codes::HISTORY_LENGTH_INVALID,
                        format!("history length {history} outside 1..=64"),
                    )
                    .with_span(span("history")),
                );
            } else if derived != 0 && history != derived {
                diags.push(
                    Diagnostic::error(
                        codes::HISTORY_LENGTH_INVALID,
                        format!(
                            "declared history length {history} does not match the \
                             {derived} bits {} derives from its {} byte budget",
                            spec.predictor.kind(),
                            spec.predictor.size_bytes()
                        ),
                    )
                    .with_span(span("history"))
                    .with_suggestion(format!(
                        "declare history {derived}, or drop the declaration"
                    )),
                );
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes_of(diags: &Diagnostics) -> Vec<u16> {
        diags.iter().map(|d| d.code.0).collect()
    }

    fn paper_spec() -> ExperimentSpec {
        ExperimentSpec::self_trained(
            Benchmark::Compress,
            PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap(),
            SelectionScheme::static_95(),
        )
        .with_instructions(300_000)
    }

    #[test]
    fn clean_spec_produces_no_diagnostics() {
        let diags = lint_spec(&paper_spec(), "<test>");
        assert!(diags.is_clean(), "{}", diags.render_text());
        assert!(diags.is_empty());
    }

    #[test]
    fn parses_a_full_spec_file() {
        let text = "\
# paper configuration
benchmark compress
predictor gshare
size 1024
scheme static_95
shift shift
training cross
input ref
seed 7
instructions 300000
warmup 1000
";
        let (parsed, diags) = parse_spec_text(text, "<test>");
        assert!(diags.is_empty(), "{}", diags.render_text());
        let spec = parsed.spec.unwrap();
        assert_eq!(spec.benchmark, Benchmark::Compress);
        assert_eq!(spec.predictor.kind(), PredictorKind::Gshare);
        assert_eq!(spec.predictor.size_bytes(), 1024);
        assert_eq!(spec.scheme, SelectionScheme::static_95());
        assert_eq!(spec.shift, ShiftPolicy::Shift);
        assert_eq!(spec.profile, ProfileSource::CrossTrained);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.measure_instructions, Some(300_000));
        assert_eq!(spec.warmup_instructions, 1000);
    }

    #[test]
    fn defaults_mirror_the_cli() {
        let (parsed, diags) = parse_spec_text("", "<args>");
        assert!(diags.is_empty());
        let spec = parsed.spec.unwrap();
        assert_eq!(spec.benchmark, Benchmark::Gcc);
        assert_eq!(spec.predictor.kind(), PredictorKind::Gshare);
        assert_eq!(spec.predictor.size_bytes(), 8192);
        assert_eq!(spec.scheme, SelectionScheme::None);
        assert_eq!(spec.seed, 2000);
    }

    #[test]
    fn non_power_of_two_size_is_sdbp002_with_fix() {
        let (parsed, diags) = parse_spec_text("size 3000\n", "<test>");
        assert!(parsed.spec.is_none());
        assert_eq!(codes_of(&diags), [2]);
        let d = diags.iter().next().unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.suggestion.as_deref(), Some("round up to 4096 bytes"));
        assert_eq!(d.span.as_ref().unwrap().line, Some(1));
    }

    #[test]
    fn undersized_hybrid_is_sdbp003() {
        let (parsed, diags) = parse_spec_text("predictor yags\nsize 8\n", "<test>");
        assert!(parsed.spec.is_none());
        assert_eq!(codes_of(&diags), [3]);
        assert!(
            diags
                .iter()
                .next()
                .unwrap()
                .message
                .contains("minimum of 16"),
            "{}",
            diags.render_text()
        );
    }

    #[test]
    fn unknown_names_get_suggestions() {
        let (_, diags) = parse_spec_text(
            "benchmark compres\npredictor gshar\nscheme statik_95\n",
            "<test>",
        );
        assert_eq!(codes_of(&diags), [13, 1, 12]);
        let suggestions: Vec<&str> = diags
            .iter()
            .map(|d| d.suggestion.as_deref().unwrap())
            .collect();
        assert_eq!(
            suggestions,
            [
                "did you mean 'compress'?",
                "did you mean 'gshare'?",
                "did you mean 'static_95'?"
            ]
        );
    }

    #[test]
    fn unknown_key_is_a_warning_not_an_error() {
        let (parsed, diags) = parse_spec_text("benchmork gcc\n", "<test>");
        assert!(parsed.spec.is_some(), "spec still constructed");
        assert_eq!(codes_of(&diags), [15]);
        assert!(!diags.has_errors());
        assert_eq!(
            diags.iter().next().unwrap().suggestion.as_deref(),
            Some("did you mean 'benchmark'?")
        );
    }

    #[test]
    fn malformed_values_are_sdbp014() {
        let (_, diags) = parse_spec_text("seed banana\nsize huge\nwarmup -3\n", "<test>");
        assert_eq!(codes_of(&diags), [14, 14, 14]);
    }

    #[test]
    fn zero_budget_lints_as_sdbp008() {
        let mut spec = paper_spec();
        spec.measure_instructions = Some(0);
        let diags = lint_spec(&spec, "<test>");
        assert_eq!(codes_of(&diags), [8]);
        assert!(diags.has_errors());
    }

    #[test]
    fn warmup_swallowing_the_run_is_sdbp009() {
        let spec = paper_spec().with_warmup(300_000);
        let diags = lint_spec(&spec, "<test>");
        assert_eq!(codes_of(&diags), [9]);
    }

    #[test]
    fn starved_profile_is_sdbp010() {
        let mut spec = paper_spec();
        spec.profile_instructions = Some(1_000);
        spec.measure_instructions = Some(300_000);
        let diags = lint_spec(&spec, "<test>");
        assert_eq!(codes_of(&diags), [10]);
        assert!(!diags.has_errors(), "a warning, not an error");
        // Without hint selection, profiling volume is irrelevant.
        let diags = lint_spec(&spec.with_scheme(SelectionScheme::None), "<test>");
        assert!(diags.is_empty());
    }

    #[test]
    fn out_of_range_scheme_parameters_are_sdbp007() {
        let spec = paper_spec().with_scheme(SelectionScheme::Bias { cutoff: 1.2 });
        assert_eq!(codes_of(&lint_spec(&spec, "<t>")), [7]);
        let spec = paper_spec().with_profile(ProfileSource::MergedCrossTrained {
            max_bias_change: 2.0,
        });
        assert_eq!(codes_of(&lint_spec(&spec, "<t>")), [7]);
    }

    #[test]
    fn collide_on_an_analyzable_predictor_is_clean() {
        for (kind, size) in [
            (PredictorKind::Gshare, 1024),
            (PredictorKind::Perceptron, 4096),
            (PredictorKind::TageLite, 4096),
        ] {
            let spec = ExperimentSpec::self_trained(
                Benchmark::Compress,
                PredictorConfig::new(kind, size).unwrap(),
                SelectionScheme::static_collide(),
            )
            .with_instructions(300_000);
            let diags = lint_spec(&spec, "<t>");
            // Frontier designs emit an SDBP004 realizability note; what
            // matters is that nothing warns or errors — no SDBP042.
            assert!(diags.is_clean(), "{kind}: {}", diags.render_text());
            assert!(
                !codes_of(&diags).contains(&42),
                "{kind}: {}",
                diags.render_text()
            );
        }
    }

    #[test]
    fn collide_on_an_opaque_predictor_is_sdbp042() {
        for kind in [PredictorKind::BiMode, PredictorKind::TwoBcGskew] {
            let spec = ExperimentSpec::self_trained(
                Benchmark::Compress,
                PredictorConfig::new(kind, 4096).unwrap(),
                SelectionScheme::static_collide(),
            )
            .with_instructions(300_000);
            let diags = lint_spec(&spec, "<t>");
            assert_eq!(codes_of(&diags), [42], "{}", diags.render_text());
            assert!(!diags.has_errors(), "a warning, not an error");
            assert!(!diags.passes(true), "fatal under --deny-warnings");
        }
    }

    #[test]
    fn out_of_range_collide_parameters_are_sdbp007() {
        let spec = paper_spec().with_scheme(SelectionScheme::Collide {
            min_bias: 1.2,
            min_score_rate: 1.5,
        });
        assert_eq!(codes_of(&lint_spec(&spec, "<t>")), [7, 7]);
    }

    #[test]
    fn frontier_names_parse_in_spec_files() {
        let (parsed, diags) = parse_spec_text(
            "predictor tage-lite\nsize 4096\nscheme static_collide\n",
            "<t>",
        );
        assert!(diags.is_empty(), "{}", diags.render_text());
        let spec = parsed.spec.unwrap();
        assert_eq!(spec.predictor.kind(), PredictorKind::TageLite);
        assert_eq!(spec.scheme, SelectionScheme::static_collide());
        let (parsed, diags) = parse_spec_text("predictor perceptron\nsize 2048\n", "<t>");
        assert!(diags.is_empty(), "{}", diags.render_text());
        assert_eq!(
            parsed.spec.unwrap().predictor.kind(),
            PredictorKind::Perceptron
        );
    }

    #[test]
    fn handbook_covers_every_predictor_and_scheme() {
        // The predictor handbook must name every dynamic predictor and
        // every selection scheme — a new `PredictorKind` variant or scheme
        // name fails here until docs/predictors.md documents it.
        let doc = include_str!("../../../docs/predictors.md");
        for kind in PredictorKind::ALL {
            let quoted = format!("`{}`", kind.name());
            assert!(
                doc.contains(&quoted),
                "docs/predictors.md is missing predictor {quoted}"
            );
        }
        for scheme in SCHEME_NAMES {
            let quoted = format!("`{scheme}`");
            assert!(
                doc.contains(&quoted),
                "docs/predictors.md is missing scheme {quoted}"
            );
        }
    }

    #[test]
    fn shift_on_bimodal_is_sdbp011() {
        let spec = ExperimentSpec::self_trained(
            Benchmark::Gcc,
            PredictorConfig::new(PredictorKind::Bimodal, 1024).unwrap(),
            SelectionScheme::None,
        )
        .with_shift(ShiftPolicy::Shift);
        let diags = lint_spec(&spec, "<test>");
        assert_eq!(codes_of(&diags), [11]);
        assert!(!diags.has_errors());
    }

    #[test]
    fn unrealizable_budget_is_a_note() {
        let spec = ExperimentSpec::self_trained(
            Benchmark::Gcc,
            PredictorConfig::new(PredictorKind::EGskew, 8192).unwrap(),
            SelectionScheme::None,
        );
        let diags = lint_spec(&spec, "<test>");
        assert_eq!(codes_of(&diags), [4]);
        assert!(diags.is_clean(), "notes keep a spec clean");
        assert!(diags.passes(true), "notes survive --deny-warnings");
    }

    #[test]
    fn history_declaration_checks_against_the_derived_length() {
        let spec = paper_spec().with_scheme(SelectionScheme::None);
        // gshare 1024 B = 4096 entries = 12 index bits of history.
        assert!(lint_spec_with_history(&spec, Some(12), "<t>").is_empty());
        let diags = lint_spec_with_history(&spec, Some(5), "<t>");
        assert_eq!(codes_of(&diags), [5]);
        assert!(diags.iter().next().unwrap().message.contains("12 bits"));
        assert_eq!(
            codes_of(&lint_spec_with_history(&spec, Some(0), "<t>")),
            [5]
        );
        assert_eq!(
            codes_of(&lint_spec_with_history(&spec, Some(65), "<t>")),
            [5]
        );
    }

    #[test]
    fn history_on_bimodal_is_sdbp006() {
        let spec = ExperimentSpec::self_trained(
            Benchmark::Gcc,
            PredictorConfig::new(PredictorKind::Bimodal, 1024).unwrap(),
            SelectionScheme::None,
        );
        let diags = lint_spec_with_history(&spec, Some(8), "<t>");
        assert_eq!(codes_of(&diags), [6]);
        assert!(!diags.has_errors());
    }

    #[test]
    fn history_on_an_opaque_scheme_only_range_checks() {
        let spec = ExperimentSpec::self_trained(
            Benchmark::Gcc,
            PredictorConfig::new(PredictorKind::BiMode, 4096).unwrap(),
            SelectionScheme::None,
        );
        assert!(lint_spec_with_history(&spec, Some(10), "<t>").is_empty());
    }

    #[test]
    fn edit_distance_behaves() {
        assert_eq!(edit_distance("gshare", "gshare"), 0);
        assert_eq!(edit_distance("gshar", "gshare"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(closest("gsahre", PREDICTOR_NAMES), Some("gshare"));
        assert_eq!(closest("zzzzzz", PREDICTOR_NAMES), None);
    }
}
