//! Lints for sweep run manifests (`manifest.jsonl`).
//!
//! A durable grid run leaves behind an append-only manifest of finished
//! cells (see `sdbp-core`'s manifest module). These lints answer the
//! questions an operator has before trusting or resuming one: does every
//! line parse, do the records match this build's schema, did any cell fail,
//! and was the writing run interrupted mid-line?

use crate::codes;
use crate::diag::{Diagnostic, Diagnostics, Span};
use sdbp_artifacts::Json;
use sdbp_core::{ExperimentError, ManifestEntry};
use std::collections::HashMap;

/// Lints the text of a `manifest.jsonl` file.
///
/// Emitted codes:
///
/// * SDBP050 (error) — a line is not valid JSON (other than a torn tail).
/// * SDBP051 (error) — a line is valid JSON but not a record this build
///   understands: missing fields, or unknown benchmark/predictor names.
/// * SDBP052 (warning) — a cell index appears more than once; the later
///   record supersedes the earlier one on resume.
/// * SDBP053 (warning) — a cell's latest record is an error outcome.
/// * SDBP054 (note) — the final line is torn: the writing run was killed
///   mid-append. A resumed sweep drops the torn line and re-runs its cell.
pub fn lint_manifest_text(text: &str, origin: &str) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let last_no = lines.last().map(|(no, _)| *no);

    // Latest record per cell index, with the line it came from.
    let mut latest: HashMap<usize, (usize, ManifestEntry)> = HashMap::new();
    for (no, line) in &lines {
        match ManifestEntry::parse_line(line, *no) {
            Ok(entry) => {
                if let Some((first_no, _)) = latest.get(&entry.cell) {
                    diags.push(
                        Diagnostic::warning(
                            codes::MANIFEST_DUPLICATE_CELL,
                            format!(
                                "cell {} already recorded at line {first_no}; \
                                 this record supersedes it",
                                entry.cell
                            ),
                        )
                        .with_span(Span::line(origin, "cell", *no)),
                    );
                }
                latest.insert(entry.cell, (*no, entry));
            }
            Err(e) => {
                if Json::parse(line).is_ok() {
                    // Structurally sound JSON that this build cannot read
                    // back: schema drift, not file damage.
                    diags.push(
                        Diagnostic::error(codes::MANIFEST_SCHEMA_MISMATCH, e.message)
                            .with_span(Span::line(origin, "record", *no))
                            .with_note(
                                "the manifest was likely written by a different \
                                 build of this workspace",
                            ),
                    );
                } else if Some(*no) == last_no {
                    diags.push(
                        Diagnostic::note(
                            codes::MANIFEST_TORN_TAIL,
                            "the final line is torn (the writing run was killed mid-append)",
                        )
                        .with_span(Span::line(origin, "record", *no))
                        .with_suggestion(
                            "resume with `sdbp grid --store <dir> --resume`; \
                             the torn line is dropped and its cell re-runs",
                        ),
                    );
                } else {
                    diags.push(
                        Diagnostic::error(codes::MANIFEST_PARSE_ERROR, e.message)
                            .with_span(Span::line(origin, "record", *no)),
                    );
                }
            }
        }
    }

    let mut failed: Vec<&(usize, ManifestEntry)> = latest
        .values()
        .filter(|(_, e)| e.outcome.is_err())
        .collect();
    failed.sort_by_key(|(no, _)| *no);
    for (no, entry) in failed {
        let err = entry.outcome.as_ref().unwrap_err();
        let (what, how) = match err {
            ExperimentError::Skipped { .. } => (
                "was never executed",
                "resume the run to execute the remaining cells",
            ),
            _ => ("failed", "fix the cause and re-run without --resume"),
        };
        diags.push(
            Diagnostic::warning(
                codes::MANIFEST_CELL_FAILED,
                format!("cell {} {what}: {err}", entry.cell),
            )
            .with_span(Span::line(origin, "status", *no))
            .with_suggestion(how),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_artifacts::Digest;
    use sdbp_core::ExperimentError;

    fn entry(cell: usize, outcome: Result<(), &str>) -> String {
        let outcome = match outcome {
            Ok(()) => {
                let report = concat!(
                    r#""status":"ok","report":{"benchmark":"gcc","predictor":"gshare","#,
                    r#""size_bytes":8192,"scheme":"none","shift":"no-shift","input":"ref","#,
                    r#""hints":0,"instructions":1000,"branches":100,"mispredictions":5,"#,
                    r#""static_predicted":0,"static_mispredictions":0,"collisions":3,"#,
                    r#""constructive":1,"destructive":2}"#
                );
                report.to_string()
            }
            Err(reason) => {
                format!(r#""status":"error","error":{{"kind":"rejected","message":"{reason}"}}"#)
            }
        };
        format!(
            r#"{{"cell":{cell},"spec":"{}","wall_ms":1,{outcome}}}"#,
            Digest([1, 2])
        )
    }

    #[test]
    fn clean_manifests_lint_clean() {
        let text = format!("{}\n{}\n", entry(0, Ok(())), entry(1, Ok(())));
        let diags = lint_manifest_text(&text, "m.jsonl");
        assert!(diags.is_clean(), "{}", diags.render_text());
    }

    #[test]
    fn torn_tails_note_but_midfile_damage_errors() {
        let torn = format!("{}\n{{\"cell\":1,\"spe", entry(0, Ok(())));
        let diags = lint_manifest_text(&torn, "m.jsonl");
        assert_eq!((diags.errors(), diags.notes()), (0, 1));

        let damaged = format!("{{\"cell\":1,\"spe\n{}\n", entry(0, Ok(())));
        let diags = lint_manifest_text(&damaged, "m.jsonl");
        assert_eq!(diags.errors(), 1);
        assert!(diags.render_text().contains("SDBP050"));
    }

    #[test]
    fn schema_drift_is_distinguished_from_damage() {
        let alien = r#"{"cell":0,"spec":"not-a-digest","wall_ms":1,"status":"ok"}"#;
        let diags = lint_manifest_text(alien, "m.jsonl");
        assert!(diags.render_text().contains("SDBP051"));
        assert_eq!(diags.errors(), 1);
    }

    #[test]
    fn duplicate_and_failed_cells_warn() {
        let text = format!(
            "{}\n{}\n{}\n",
            entry(0, Ok(())),
            entry(0, Ok(())),
            entry(1, Err("spec rejected by preflight"))
        );
        let diags = lint_manifest_text(&text, "m.jsonl");
        assert_eq!(diags.errors(), 0);
        assert_eq!(diags.warnings(), 2);
        let rendered = diags.render_text();
        assert!(rendered.contains("SDBP052"), "{rendered}");
        assert!(rendered.contains("SDBP053"), "{rendered}");
    }

    #[test]
    fn skipped_cells_read_as_unexecuted() {
        let skipped = ManifestEntry {
            cell: 3,
            spec_digest: Digest([9, 9]),
            wall_ms: 0,
            outcome: Err(ExperimentError::Skipped {
                reason: "cell cap of 3 reached before this cell".into(),
            }),
        };
        let diags = lint_manifest_text(&skipped.to_line(), "m.jsonl");
        assert_eq!(diags.warnings(), 1);
        assert!(diags.render_text().contains("never executed"));
    }
}
