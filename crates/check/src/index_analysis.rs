//! Exact GF(2) index-function analysis, rendered as diagnostics.
//!
//! Where [`aliasing`](crate::aliasing) *estimates* interference by probing
//! (or, for linear predictors, computes it exactly per profile), this
//! module reports what can be *proven about the index function itself*:
//! guaranteed-collision PC classes (SDBP060), dead history bits (SDBP061),
//! rank-deficient tables (SDBP062), and — given a bias profile — branch
//! pairs proven to collide with opposing majority directions at every
//! history (SDBP063). Predictors whose index functions are not affine over
//! GF(2) get an SDBP064 note saying which analyses still apply.
//!
//! The math lives in [`sdbp_index_analysis`]; `docs/index-analysis.md`
//! explains the model.

use crate::codes;
use crate::diag::{Diagnostic, Diagnostics, Span};
use sdbp_index_analysis::{analyze, SpecFacts};
use sdbp_predictors::{IndexCapability, PredictorConfig};
use sdbp_profiles::BiasProfile;

/// Tuning knobs for [`lint_index_analysis`].
#[derive(Debug, Clone, Copy)]
pub struct IndexAnalysisOptions {
    /// Maximum number of SDBP063 proven-pair notes reported.
    pub top_pairs: usize,
}

impl Default for IndexAnalysisOptions {
    fn default() -> Self {
        Self { top_pairs: 10 }
    }
}

/// Runs the exact analysis on `config` and renders the proven facts as
/// diagnostics (all note severity — these are findings about the design,
/// not misconfigurations).
///
/// `profile`, when given, additionally drives the SDBP063 proven-pair
/// search: profiled branches are grouped by their exact PC image per bank,
/// and groups mixing opposing majority directions are reported as proven
/// destructive aliasing, ordered by execution mass.
///
/// Returns the derived [`SpecFacts`] for linear predictors, `None` (with an
/// SDBP064 note) otherwise.
pub fn lint_index_analysis(
    profile: Option<&BiasProfile>,
    config: PredictorConfig,
    options: &IndexAnalysisOptions,
    origin: &str,
) -> (Option<SpecFacts>, Diagnostics) {
    let mut diags = Diagnostics::new();
    let span = || Span::field(origin, "predictor");
    let capability = config.index_capability();
    let spec = config.build().index_spec();
    let Some(spec) = spec else {
        let message = match capability {
            IndexCapability::SampledOnly => format!(
                "{} hashes its indices non-linearly; the exact GF(2) analysis \
                 does not apply",
                config.kind()
            ),
            _ => format!(
                "{} does not expose its index function; the exact GF(2) \
                 analysis does not apply",
                config.kind()
            ),
        };
        let mut diag =
            Diagnostic::note(codes::INDEX_ANALYSIS_UNAVAILABLE, message).with_span(span());
        if capability == IndexCapability::SampledOnly {
            diag = diag.with_note(
                "the sampled analysis (`sdbp check --aliasing`) still applies \
                 to this predictor",
            );
        }
        diags.push(diag);
        return (None, diags);
    };
    let facts = analyze(&spec);
    diags.merge(lint_facts(&facts, origin));

    // SDBP063: profile-driven proven pairs — branches with identical PC
    // images in some bank collide at *every* history; opposing majority
    // directions make the sharing destructive by construction.
    if let Some(profile) = profile {
        let mut branches: Vec<(sdbp_trace::BranchAddr, u64, u64)> = profile
            .iter()
            .filter(|(_, stats)| stats.executed > 0)
            .map(|(pc, stats)| (pc, stats.executed, stats.taken))
            .collect();
        branches.sort_unstable_by_key(|(pc, _, _)| *pc);
        // (mass, message) per proven group, heaviest first.
        let mut findings: Vec<(u64, String)> = Vec::new();
        for table in &spec.tables {
            let mut groups: std::collections::HashMap<u64, Vec<usize>> =
                std::collections::HashMap::new();
            for (position, &(pc, _, _)) in branches.iter().enumerate() {
                groups
                    .entry(table.pc_image(pc.word_index()))
                    .or_default()
                    .push(position);
            }
            for members in groups.values() {
                // Heaviest taken-majority and not-taken-majority members.
                let mut best: [Option<(u64, sdbp_trace::BranchAddr)>; 2] = [None, None];
                for &position in members {
                    let (pc, executed, taken) = branches[position];
                    let side = usize::from(taken * 2 < executed);
                    if best[side].is_none_or(|(mass, _)| executed > mass) {
                        best[side] = Some((executed, pc));
                    }
                }
                if let (Some((mass_t, pc_t)), Some((mass_n, pc_n))) = (best[0], best[1]) {
                    findings.push((
                        mass_t + mass_n,
                        format!(
                            "bank {}: {pc_t} (mostly taken, {mass_t} executions) and \
                             {pc_n} (mostly not taken, {mass_n} executions) are \
                             proven to share one entry at every history",
                            table.bank
                        ),
                    ));
                }
            }
        }
        findings.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for (_, message) in findings.into_iter().take(options.top_pairs) {
            diags.push(
                Diagnostic::note(codes::PROVEN_ALIASING_PAIR, message)
                    .with_span(Span::field(origin, "profile"))
                    .with_suggestion(
                        "a static hint for either branch removes the proven aliasing \
                         (scheme static_collide selects these automatically)",
                    ),
            );
        }
    }

    (Some(facts), diags)
}

/// Renders the structural facts of one analyzed spec (SDBP060/061/062) —
/// the profile-free half of [`lint_index_analysis`], usable on facts
/// derived from any [`IndexSpec`](sdbp_predictors::IndexSpec), including
/// hand-built ones.
pub fn lint_facts(facts: &SpecFacts, origin: &str) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let span = || Span::field(origin, "predictor");

    // SDBP060: every table of a real predictor indexes with far fewer bits
    // than the modeled PC width, so A always has a kernel — the note states
    // the proven class structure rather than flagging an anomaly.
    for table in &facts.tables {
        let kernel_dim = facts.modeled_pc_bits - table.pc_rank;
        diags.push(
            Diagnostic::note(
                codes::GUARANTEED_COLLISION_CLASSES,
                format!(
                    "bank {}: branch addresses fall into guaranteed-collision \
                     classes of 2^{kernel_dim} word indices ({} of {} modeled \
                     PC bits reach the {}-bit index)",
                    table.bank, table.pc_rank, facts.modeled_pc_bits, table.index_bits
                ),
            )
            .with_span(span()),
        );
    }

    // SDBP061: register bits shifted but provably never used.
    let dead = facts.dead_history_bits();
    if dead != 0 {
        diags.push(
            Diagnostic::note(
                codes::DEAD_HISTORY_BITS,
                format!(
                    "{} of the {} history bits (mask {dead:#x}) provably never \
                     reach any table index",
                    dead.count_ones(),
                    facts.history_bits
                ),
            )
            .with_span(span())
            .with_suggestion("shorten the history register or rewire the dead bits"),
        );
    }

    // SDBP062: part of the table is provably unreachable.
    for table in &facts.tables {
        if table.joint_rank < table.index_bits {
            diags.push(
                Diagnostic::note(
                    codes::RANK_DEFICIENT_TABLE,
                    format!(
                        "bank {}: only 2^{} of the 2^{} entries are reachable \
                         (rank-deficient index function)",
                        table.bank, table.joint_rank, table.index_bits
                    ),
                )
                .with_span(span()),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::PredictorKind;
    use sdbp_trace::{BranchAddr, SiteStats};

    fn config(kind: PredictorKind, size: usize) -> PredictorConfig {
        PredictorConfig::new(kind, size).unwrap()
    }

    fn codes_of(diags: &Diagnostics) -> Vec<u16> {
        diags.iter().map(|d| d.code.0).collect()
    }

    #[test]
    fn linear_predictor_reports_collision_classes() {
        // gshare 1KB: 12 of 32 modeled PC bits reach the index, so the
        // collision classes have 2^20 members — one SDBP060 note, nothing
        // else without a profile.
        let (facts, diags) = lint_index_analysis(
            None,
            config(PredictorKind::Gshare, 1024),
            &IndexAnalysisOptions::default(),
            "<t>",
        );
        let facts = facts.unwrap();
        assert_eq!(facts.tables[0].pc_rank, 12);
        assert_eq!(codes_of(&diags), [60]);
        assert!(diags.iter().next().unwrap().message.contains("2^20"));
        assert!(diags.is_clean(), "all findings are notes");
        assert!(diags.passes(true), "notes survive --deny-warnings");
    }

    #[test]
    fn egskew_reports_one_class_note_per_bank() {
        let (facts, diags) = lint_index_analysis(
            None,
            config(PredictorKind::EGskew, 4096),
            &IndexAnalysisOptions::default(),
            "<t>",
        );
        assert_eq!(facts.unwrap().tables.len(), 3);
        assert_eq!(codes_of(&diags), [60, 60, 60]);
    }

    #[test]
    fn sampled_only_and_opaque_get_distinct_sdbp064_notes() {
        let (facts, diags) = lint_index_analysis(
            None,
            config(PredictorKind::Perceptron, 4096),
            &IndexAnalysisOptions::default(),
            "<t>",
        );
        assert!(facts.is_none());
        assert_eq!(codes_of(&diags), [64]);
        let d = diags.iter().next().unwrap();
        assert!(d.message.contains("non-linearly"), "{}", d.message);
        assert!(d.notes[0].contains("--aliasing"), "{:?}", d.notes);

        let (facts, diags) = lint_index_analysis(
            None,
            config(PredictorKind::BiMode, 4096),
            &IndexAnalysisOptions::default(),
            "<t>",
        );
        assert!(facts.is_none());
        assert_eq!(codes_of(&diags), [64]);
        let d = diags.iter().next().unwrap();
        assert!(d.message.contains("does not expose"), "{}", d.message);
        assert!(d.notes.is_empty(), "no sampled fallback to point at");
    }

    #[test]
    fn opposing_congruent_branches_are_a_proven_pair() {
        // 64-byte bimodal = 256 entries; word indices 256 apart collide.
        let mut profile = BiasProfile::new();
        let stride = 256u64 * 4;
        profile.insert(
            BranchAddr(0x1000),
            SiteStats {
                executed: 1000,
                taken: 1000,
            },
        );
        profile.insert(
            BranchAddr(0x1000 + stride),
            SiteStats {
                executed: 800,
                taken: 0,
            },
        );
        profile.insert(
            BranchAddr(0x1000 + 8),
            SiteStats {
                executed: 500,
                taken: 500,
            },
        ); // private entry, taken-only: no pair
        let (_, diags) = lint_index_analysis(
            Some(&profile),
            config(PredictorKind::Bimodal, 64),
            &IndexAnalysisOptions::default(),
            "<t>",
        );
        assert_eq!(codes_of(&diags), [60, 63]);
        let pair = diags.iter().last().unwrap();
        assert!(pair.message.contains("0x1000"), "{}", pair.message);
        assert!(pair.message.contains("every history"), "{}", pair.message);
    }

    #[test]
    fn pair_notes_are_capped_and_ordered_by_mass() {
        let mut profile = BiasProfile::new();
        let stride = 256u64 * 4;
        for pair in 0u64..5 {
            let base = 0x1000 + pair * 8;
            let executed = 100 * (pair + 1);
            profile.insert(
                BranchAddr(base),
                SiteStats {
                    executed,
                    taken: executed,
                },
            );
            profile.insert(BranchAddr(base + stride), SiteStats { executed, taken: 0 });
        }
        let (_, diags) = lint_index_analysis(
            Some(&profile),
            config(PredictorKind::Bimodal, 64),
            &IndexAnalysisOptions { top_pairs: 2 },
            "<t>",
        );
        assert_eq!(codes_of(&diags), [60, 63, 63]);
        let messages: Vec<&str> = diags.iter().skip(1).map(|d| d.message.as_str()).collect();
        // Heaviest pair (executed 500 each) first.
        assert!(messages[0].contains("500 executions"), "{}", messages[0]);
        assert!(messages[1].contains("400 executions"), "{}", messages[1]);
    }

    #[test]
    fn synthetic_dead_bits_and_rank_deficiency_render() {
        // A hand-built 2-bit table where history bit 1's column is zero:
        // one dead history bit, and only half the entries reachable.
        use sdbp_predictors::{IndexSpec, TableSpec, MODELED_PC_BITS};
        let spec = IndexSpec {
            history_bits: 2,
            tables: vec![TableSpec {
                bank: 0,
                index_bits: 2,
                constant: 0,
                pc_columns: vec![0; MODELED_PC_BITS as usize],
                hist_columns: vec![0b01, 0b00],
            }],
        };
        let diags = lint_facts(&sdbp_index_analysis::analyze(&spec), "<t>");
        assert_eq!(codes_of(&diags), [60, 61, 62]);
        let rendered = diags.render_text();
        assert!(rendered.contains("mask 0x2"), "{rendered}");
        assert!(rendered.contains("only 2^1 of the 2^2"), "{rendered}");
        assert!(diags.passes(true), "still notes only");
    }

    #[test]
    fn synthetic_rank_deficiency_is_out_of_reach_for_stock_configs() {
        // Every stock linear configuration is full rank with no dead
        // history bits: SDBP061/062 stay silent across the whole sweep.
        for (kind, size) in [
            (PredictorKind::Bimodal, 1024),
            (PredictorKind::Ghist, 1024),
            (PredictorKind::Gshare, 1024),
            (PredictorKind::Gselect, 1024),
            (PredictorKind::EGskew, 4096),
        ] {
            let (_, diags) = lint_index_analysis(
                None,
                config(kind, size),
                &IndexAnalysisOptions::default(),
                "<t>",
            );
            assert!(
                codes_of(&diags).iter().all(|c| *c == 60),
                "{kind}: {}",
                diags.render_text()
            );
        }
    }
}
