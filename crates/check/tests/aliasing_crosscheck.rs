//! Cross-checks the static aliasing analyzer against the simulator.
//!
//! The analyzer predicts destructive interference from a bias profile and
//! the index function alone; the simulator *measures* it with per-entry
//! tags ([`SiteAccuracy::destructive_collisions`]). On a calibrated
//! workload the two must agree on where the hotspots are — that agreement
//! is the analyzer's acceptance test.

use sdbp_check::{analyze_aliasing, AliasingOptions};
use sdbp_predictors::{PredictorConfig, PredictorKind};
use sdbp_profiles::{
    rank_interference, AccuracyProfile, BiasProfile, InterferenceOptions, SelectionScheme,
};
use sdbp_trace::{BranchAddr, BranchSource};
use sdbp_workloads::{Benchmark, InputSet, Workload};
use std::collections::HashSet;

const INSTRUCTIONS: u64 = 300_000;

fn source() -> impl BranchSource {
    Workload::spec95(Benchmark::Compress)
        .generator(InputSet::Ref, 2000)
        .take_instructions(INSTRUCTIONS)
}

/// Top `n` branches by measured destructive collisions, ties by address.
fn measured_top(config: PredictorConfig, n: usize) -> Vec<BranchAddr> {
    let mut predictor = config.build();
    let accuracy = AccuracyProfile::collect(source(), &mut *predictor);
    let mut sites: Vec<(BranchAddr, u64)> = accuracy
        .iter()
        .filter(|(_, s)| s.destructive_collisions > 0)
        .map(|(pc, s)| (pc, s.destructive_collisions))
        .collect();
    sites.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    sites.into_iter().take(n).map(|(pc, _)| pc).collect()
}

/// Top `n` branches by predicted destructive score.
fn predicted_top(config: PredictorConfig, n: usize) -> Vec<BranchAddr> {
    let profile = BiasProfile::from_source(source());
    let report = analyze_aliasing(&profile, config, &AliasingOptions::default())
        .expect("scheme exposes its index function");
    report.hotspots.iter().take(n).map(|h| h.pc).collect()
}

fn overlap(config: PredictorConfig, n: usize) -> usize {
    let measured: HashSet<BranchAddr> = measured_top(config, n).into_iter().collect();
    predicted_top(config, n)
        .iter()
        .filter(|pc| measured.contains(pc))
        .count()
}

#[test]
fn gshare_hotspot_ranking_matches_the_simulator() {
    // Small table on a real workload: heavy, measurable aliasing.
    let config = PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap();
    let agree = overlap(config, 20);
    assert!(
        agree >= 10,
        "static analysis and simulation agree on only {agree}/20 gshare hotspots"
    );
}

#[test]
fn bimodal_hotspot_ranking_matches_the_simulator() {
    let config = PredictorConfig::new(PredictorKind::Bimodal, 256).unwrap();
    let agree = overlap(config, 20);
    assert!(
        agree >= 10,
        "static analysis and simulation agree on only {agree}/20 bimodal hotspots"
    );
}

#[test]
fn static_collide_selection_overlaps_measured_collision_hotspots() {
    // `Static_Collide` consumes the same ranking the analyzer reports; its
    // selected hints must land on the branches the simulator *measures* as
    // destructive-collision hotspots. The overlap count is pinned — the
    // whole pipeline (workload, analyzer, selection) is deterministic, so
    // any drift is a real behavior change.
    let config = PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap();
    let profile = BiasProfile::from_source(source());
    let ranking = rank_interference(&profile, config, &InterferenceOptions::default())
        .expect("gshare exposes its index function");
    let hints = SelectionScheme::static_collide()
        .select_with_interference(&profile, None, Some(&ranking))
        .expect("a ranking was supplied");
    assert!(!hints.is_empty(), "collide selected nothing");
    // Every hint targets a branch the ranking actually scored.
    for (pc, _) in hints.iter() {
        assert!(
            ranking.score_of(pc) > 0.0,
            "hinted branch {pc} has no interference score"
        );
    }
    // Pinned top-20 overlap with the measured destructive ranking.
    let measured = measured_top(config, 20);
    let hinted_hotspots = measured
        .iter()
        .filter(|pc| hints.get(**pc).is_some())
        .count();
    assert_eq!(
        hinted_hotspots,
        14,
        "collide hints {hinted_hotspots}/20 of the measured hotspots ({} hints total)",
        hints.len()
    );
    assert_eq!(hints.len(), 165, "collide hint count drifted");
}

#[test]
fn rankings_are_pinned() {
    // Determinism guard: same seed, same workload, same analysis — the
    // exact hotspot list must never drift across runs or platforms.
    let config = PredictorConfig::new(PredictorKind::Gshare, 1024).unwrap();
    assert_eq!(predicted_top(config, 3), predicted_top(config, 3));
    assert_eq!(measured_top(config, 3), measured_top(config, 3));
}
