//! Profile collectors as streaming [`Pass`]es.
//!
//! [`BiasPass`] and [`AccuracyPass`] are the pass-framework forms of
//! [`BiasProfile::from_source`] and [`AccuracyProfile::collect`]; the
//! classic entry points are now thin wrappers that run one pass through a
//! [`PassRunner`](sdbp_passes::PassRunner). The passes exist so callers can
//! *fuse* profile collection: one traversal of a run can feed the bias pass
//! and any number of accuracy passes (one per predictor configuration)
//! simultaneously — where the sequential API would regenerate or re-read
//! the stream once per profile.

use crate::accuracy::AccuracyProfile;
use crate::bias::BiasProfile;
use sdbp_passes::Pass;
use sdbp_predictors::{DynamicPredictor, Prediction};
use sdbp_trace::BranchEvent;

/// A [`Pass`] accumulating a [`BiasProfile`].
///
/// Chunk-invariant by construction: each event updates its site counters
/// independently.
///
/// ```
/// use sdbp_passes::PassRunner;
/// use sdbp_profiles::BiasPass;
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
///
/// let events = [BranchEvent::new(BranchAddr(0x40), true, 0)];
/// let mut pass = BiasPass::new();
/// PassRunner::new().run(SliceSource::new(&events), &mut [&mut pass]);
/// assert_eq!(pass.into_profile().site(BranchAddr(0x40)).unwrap().taken, 1);
/// ```
#[derive(Debug, Default)]
pub struct BiasPass {
    profile: BiasProfile,
}

impl BiasPass {
    /// A pass starting from an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// The profile collected so far.
    pub fn profile(&self) -> &BiasProfile {
        &self.profile
    }

    /// Consumes the pass, returning the collected profile.
    pub fn into_profile(self) -> BiasProfile {
        self.profile
    }
}

impl Pass for BiasPass {
    fn consume(&mut self, events: &[BranchEvent]) {
        for e in events {
            self.profile.record(e);
        }
    }

    fn name(&self) -> &str {
        "bias-profile"
    }
}

/// A [`Pass`] accumulating an [`AccuracyProfile`] by simulating a borrowed
/// dynamic predictor over the stream.
///
/// The predictor runs exactly as it would in a pure dynamic configuration —
/// every branch is looked up, trained, and shifted into the history —
/// through the batched
/// [`predict_update_batch`](DynamicPredictor::predict_update_batch) kernel,
/// which is pinned bit-identical to the scalar predict/update protocol.
///
/// ```
/// use sdbp_passes::PassRunner;
/// use sdbp_predictors::Bimodal;
/// use sdbp_profiles::AccuracyPass;
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
///
/// let events: Vec<BranchEvent> = (0..100)
///     .map(|i| BranchEvent::new(BranchAddr(0x40), i % 2 == 0, 0))
///     .collect();
/// let mut predictor = Bimodal::new(64);
/// let mut pass = AccuracyPass::new(&mut predictor);
/// PassRunner::new().run(SliceSource::new(&events), &mut [&mut pass]);
/// assert!(pass.into_profile().accuracy(BranchAddr(0x40)).unwrap() < 0.6);
/// ```
pub struct AccuracyPass<'p, P: ?Sized> {
    predictor: &'p mut P,
    profile: AccuracyProfile,
    scratch: Vec<Prediction>,
}

impl<'p, P: DynamicPredictor + ?Sized> AccuracyPass<'p, P> {
    /// A pass simulating `predictor` from its current state.
    pub fn new(predictor: &'p mut P) -> Self {
        Self {
            predictor,
            profile: AccuracyProfile::new(),
            scratch: Vec::new(),
        }
    }

    /// Consumes the pass, returning the collected profile.
    pub fn into_profile(self) -> AccuracyProfile {
        self.profile
    }
}

impl<P: DynamicPredictor + ?Sized> Pass for AccuracyPass<'_, P> {
    fn consume(&mut self, events: &[BranchEvent]) {
        self.scratch.clear();
        self.predictor
            .predict_update_batch(events, &mut self.scratch);
        for (e, pred) in events.iter().zip(&self.scratch) {
            self.profile.record_prediction(e, *pred);
        }
    }

    fn name(&self) -> &str {
        "accuracy-profile"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_passes::PassRunner;
    use sdbp_predictors::{Bimodal, Gshare};
    use sdbp_trace::{BranchAddr, SliceSource};

    fn events(n: usize) -> Vec<BranchEvent> {
        (0..n)
            .map(|i| BranchEvent::new(BranchAddr(0x40 + (i as u64 % 9) * 4), i % 3 != 0, 1))
            .collect()
    }

    #[test]
    fn bias_pass_matches_from_source() {
        let events = events(500);
        let classic = BiasProfile::from_source(SliceSource::new(&events));
        let mut pass = BiasPass::new();
        PassRunner::new()
            .with_chunk(17)
            .run(SliceSource::new(&events), &mut [&mut pass]);
        assert_eq!(*pass.profile(), classic);
        assert_eq!(pass.into_profile(), classic);
    }

    #[test]
    fn accuracy_pass_matches_collect() {
        let events = events(2000);
        let mut fresh = Gshare::new(256);
        let classic = AccuracyProfile::collect(SliceSource::new(&events), &mut fresh);
        let mut predictor = Gshare::new(256);
        let mut pass = AccuracyPass::new(&mut predictor);
        PassRunner::new()
            .with_chunk(33)
            .run(SliceSource::new(&events), &mut [&mut pass]);
        assert_eq!(pass.into_profile(), classic);
    }

    #[test]
    fn fused_profiles_match_sequential_traversals() {
        let events = events(1500);
        let mut bias = BiasPass::new();
        let mut bimodal = Bimodal::new(128);
        let mut gshare = Gshare::new(128);
        let mut acc_a = AccuracyPass::new(&mut bimodal);
        let mut acc_b = AccuracyPass::new(&mut gshare);
        let stats = PassRunner::new().run(
            SliceSource::new(&events),
            &mut [&mut bias, &mut acc_a, &mut acc_b],
        );
        assert_eq!(stats.passes, 3);
        assert_eq!(stats.events, 1500);

        assert_eq!(
            bias.into_profile(),
            BiasProfile::from_source(SliceSource::new(&events))
        );
        assert_eq!(
            acc_a.into_profile(),
            AccuracyProfile::collect(SliceSource::new(&events), &mut Bimodal::new(128))
        );
        assert_eq!(
            acc_b.into_profile(),
            AccuracyProfile::collect(SliceSource::new(&events), &mut Gshare::new(128))
        );
    }

    #[test]
    fn accuracy_pass_works_through_dyn_predictor() {
        let events = events(100);
        let mut boxed: Box<dyn DynamicPredictor> = Box::new(Bimodal::new(64));
        let mut pass = AccuracyPass::new(boxed.as_mut());
        PassRunner::new().run(SliceSource::new(&events), &mut [&mut pass]);
        assert!(!pass.into_profile().is_empty());
    }
}
