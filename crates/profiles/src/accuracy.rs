//! Per-branch dynamic-predictor accuracy profiles.

use sdbp_predictors::{DynamicPredictor, Prediction};
use sdbp_trace::{BranchAddr, BranchEvent, BranchSource};
use std::collections::HashMap;

/// Per-branch prediction accuracy of a specific dynamic predictor.
///
/// The paper's `Static_Acc` scheme needs, for every branch, the accuracy the
/// *target dynamic predictor* achieves on it — obtained by actually
/// simulating the predictor over a profiling run (the paper collected the
/// same data with Atom instrumentation or ProfileMe). A branch whose bias
/// exceeds this accuracy is better served by a static hint.
///
/// # Examples
///
/// ```
/// use sdbp_predictors::Bimodal;
/// use sdbp_profiles::AccuracyProfile;
/// use sdbp_trace::{BranchAddr, BranchEvent, SliceSource};
///
/// let events: Vec<BranchEvent> = (0..100)
///     .map(|i| BranchEvent::new(BranchAddr(0x40), i % 2 == 0, 0))
///     .collect();
/// let mut predictor = Bimodal::new(64);
/// let profile = AccuracyProfile::collect(SliceSource::new(&events), &mut predictor);
/// // A strictly alternating branch defeats a bimodal predictor.
/// assert!(profile.accuracy(BranchAddr(0x40)).unwrap() < 0.6);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccuracyProfile {
    sites: HashMap<BranchAddr, SiteAccuracy>,
}

/// Per-site counters backing [`AccuracyProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteAccuracy {
    /// Times the branch was executed (and predicted).
    pub executed: u64,
    /// Times the dynamic prediction was correct.
    pub correct: u64,
    /// Times a table lookup for this branch aliased with another branch AND
    /// the prediction came out wrong — the branch's involvement in
    /// *destructive* collisions. Feeds the collision-aware selection scheme
    /// (the paper's §5 "we plan to explore this" idea).
    pub destructive_collisions: u64,
}

impl SiteAccuracy {
    /// The accuracy; `0.0` when never executed.
    pub fn rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.correct as f64 / self.executed as f64
        }
    }

    /// Fraction of executions involved in a destructive collision.
    pub fn destructive_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.destructive_collisions as f64 / self.executed as f64
        }
    }
}

impl AccuracyProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates `predictor` over `source`, recording per-branch accuracy.
    ///
    /// The predictor runs exactly as it would in a pure dynamic
    /// configuration: every branch is looked up, trained, and shifted into
    /// the history.
    pub fn collect<S, P>(source: S, predictor: &mut P) -> Self
    where
        S: BranchSource,
        P: DynamicPredictor + ?Sized,
    {
        let mut pass = crate::passes::AccuracyPass::new(predictor);
        sdbp_passes::PassRunner::new().run(source, &mut [&mut pass]);
        pass.into_profile()
    }

    /// Records one predicted branch execution.
    ///
    /// This is the per-event accumulation step behind [`collect`]
    /// (and [`AccuracyPass`](crate::AccuracyPass)): `pred` must be the
    /// prediction the dynamic predictor produced for `event` *before* being
    /// trained on its outcome.
    ///
    /// [`collect`]: AccuracyProfile::collect
    pub fn record_prediction(&mut self, event: &BranchEvent, pred: Prediction) {
        let s = self.sites.entry(event.pc).or_default();
        s.executed += 1;
        s.correct += u64::from(pred.taken == event.taken);
        s.destructive_collisions += u64::from(pred.collision && pred.taken != event.taken);
    }

    /// Accuracy of one branch, if it was observed.
    pub fn accuracy(&self, pc: BranchAddr) -> Option<f64> {
        self.sites.get(&pc).map(|s| s.rate())
    }

    /// Inserts or replaces the counters of one site (used by the artifact
    /// codec and by tests).
    pub fn insert(&mut self, pc: BranchAddr, counters: SiteAccuracy) {
        self.sites.insert(pc, counters);
    }

    /// Raw counters of one branch.
    pub fn site(&self, pc: BranchAddr) -> Option<&SiteAccuracy> {
        self.sites.get(&pc)
    }

    /// Number of distinct branches observed.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over `(pc, counters)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchAddr, &SiteAccuracy)> {
        self.sites.iter().map(|(pc, s)| (*pc, s))
    }

    /// Overall accuracy across all branches.
    pub fn overall(&self) -> f64 {
        let executed: u64 = self.sites.values().map(|s| s.executed).sum();
        if executed == 0 {
            return 0.0;
        }
        let correct: u64 = self.sites.values().map(|s| s.correct).sum();
        correct as f64 / executed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbp_predictors::{Bimodal, Ghist};
    use sdbp_trace::{BranchEvent, SliceSource};

    fn alternating(pc: u64, n: usize) -> Vec<BranchEvent> {
        (0..n)
            .map(|i| BranchEvent::new(BranchAddr(pc), i % 2 == 0, 0))
            .collect()
    }

    fn biased(pc: u64, n: usize) -> Vec<BranchEvent> {
        (0..n)
            .map(|i| BranchEvent::new(BranchAddr(pc), i % 10 != 9, 0))
            .collect()
    }

    #[test]
    fn bimodal_fails_alternation_ghist_nails_it() {
        let events = alternating(0x40, 2000);
        let mut bim = Bimodal::new(256);
        let pa = AccuracyProfile::collect(SliceSource::new(&events), &mut bim);
        assert!(pa.accuracy(BranchAddr(0x40)).unwrap() < 0.6);

        let mut gh = Ghist::new(256);
        let pg = AccuracyProfile::collect(SliceSource::new(&events), &mut gh);
        assert!(pg.accuracy(BranchAddr(0x40)).unwrap() > 0.95);
    }

    #[test]
    fn biased_branch_accuracy_tracks_bias() {
        let events = biased(0x40, 5000);
        let mut bim = Bimodal::new(256);
        let p = AccuracyProfile::collect(SliceSource::new(&events), &mut bim);
        let acc = p.accuracy(BranchAddr(0x40)).unwrap();
        assert!((acc - 0.9).abs() < 0.02, "accuracy {acc}");
    }

    #[test]
    fn overall_weights_by_execution() {
        let mut events = biased(0x40, 900);
        events.extend(alternating(0x80, 100));
        let mut bim = Bimodal::new(1024);
        let p = AccuracyProfile::collect(SliceSource::new(&events), &mut bim);
        assert_eq!(p.len(), 2);
        let overall = p.overall();
        let a = p.accuracy(BranchAddr(0x40)).unwrap();
        let b = p.accuracy(BranchAddr(0x80)).unwrap();
        let expected = (a * 900.0 + b * 100.0) / 1000.0;
        assert!((overall - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_defaults() {
        let p = AccuracyProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.overall(), 0.0);
        assert!(p.accuracy(BranchAddr(0)).is_none());
        assert_eq!(SiteAccuracy::default().rate(), 0.0);
    }

    #[test]
    fn works_through_dyn_trait() {
        let events = biased(0x10, 100);
        let mut boxed: Box<dyn sdbp_predictors::DynamicPredictor> = Box::new(Bimodal::new(64));
        let p = AccuracyProfile::collect(SliceSource::new(&events), boxed.as_mut());
        assert_eq!(p.len(), 1);
    }
}
